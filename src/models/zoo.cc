#include "models/zoo.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise_conv2d.h"
#include "nn/lstm.h"
#include "nn/pool2d.h"
#include "util/logging.h"

namespace fedgpo {
namespace models {

namespace {

constexpr std::size_t kImgExtent = 16;   // MNIST-like geometry
constexpr std::size_t kMnistClasses = 10;
constexpr std::size_t kImageNetClasses = 20;
constexpr std::size_t kSeqLen = 16;
constexpr std::size_t kVocab = 28;       // a-z + space + period

std::unique_ptr<nn::Model>
buildCnnMnist(util::Rng &rng)
{
    // conv3x3(1->8) -> relu -> pool2 -> conv3x3(8->16) -> relu -> pool2
    // -> flatten(16*4*4) -> dense(256->32) -> relu -> dense(32->10)
    auto model = std::make_unique<nn::Model>();
    model->add(std::make_unique<nn::Conv2D>(1, 8, 3, kImgExtent, kImgExtent,
                                            1, 1, rng));
    model->add(std::make_unique<nn::ReLU>());
    model->add(std::make_unique<nn::MaxPool2D>(8, 2, kImgExtent,
                                               kImgExtent));
    model->add(std::make_unique<nn::Conv2D>(8, 16, 3, 8, 8, 1, 1, rng));
    model->add(std::make_unique<nn::ReLU>());
    model->add(std::make_unique<nn::MaxPool2D>(16, 2, 8, 8));
    model->add(std::make_unique<nn::Flatten>());
    model->add(std::make_unique<nn::Dense>(16 * 4 * 4, 32, rng));
    model->add(std::make_unique<nn::ReLU>());
    model->add(std::make_unique<nn::Dense>(32, kMnistClasses, rng));
    return model;
}

std::unique_ptr<nn::Model>
buildLstmShakespeare(util::Rng &rng)
{
    // lstm(V->32, T=16) -> dense(32->V)
    auto model = std::make_unique<nn::Model>();
    model->add(std::make_unique<nn::LSTM>(kVocab, 32, kSeqLen, rng));
    model->add(std::make_unique<nn::Dense>(32, kVocab, rng));
    return model;
}

std::unique_ptr<nn::Model>
buildMobileNetImageNet(util::Rng &rng)
{
    // MobileNet-lite: standard stem conv, then two depthwise-separable
    // blocks, each dw3x3 + pw1x1, with pooling between stages.
    auto model = std::make_unique<nn::Model>();
    model->add(std::make_unique<nn::Conv2D>(3, 8, 3, kImgExtent, kImgExtent,
                                            1, 1, rng));
    model->add(std::make_unique<nn::ReLU>());
    model->add(std::make_unique<nn::DepthwiseConv2D>(8, 3, kImgExtent,
                                                     kImgExtent, 1, 1, rng));
    model->add(std::make_unique<nn::Conv2D>(8, 16, 1, kImgExtent,
                                            kImgExtent, 1, 0, rng));
    model->add(std::make_unique<nn::ReLU>());
    model->add(std::make_unique<nn::MaxPool2D>(16, 2, kImgExtent,
                                               kImgExtent));
    model->add(std::make_unique<nn::DepthwiseConv2D>(16, 3, 8, 8, 1, 1,
                                                     rng));
    model->add(std::make_unique<nn::Conv2D>(16, 32, 1, 8, 8, 1, 0, rng));
    model->add(std::make_unique<nn::ReLU>());
    model->add(std::make_unique<nn::MaxPool2D>(32, 2, 8, 8));
    model->add(std::make_unique<nn::Flatten>());
    model->add(std::make_unique<nn::Dense>(32 * 4 * 4, kImageNetClasses,
                                           rng));
    return model;
}

} // namespace

std::string
workloadName(Workload w)
{
    switch (w) {
      case Workload::CnnMnist:          return "CNN-MNIST";
      case Workload::LstmShakespeare:   return "LSTM-Shakespeare";
      case Workload::MobileNetImageNet: return "MobileNet-ImageNet";
    }
    return "?";
}

std::size_t
numClasses(Workload w)
{
    switch (w) {
      case Workload::CnnMnist:          return kMnistClasses;
      case Workload::LstmShakespeare:   return kVocab;
      case Workload::MobileNetImageNet: return kImageNetClasses;
    }
    return 0;
}

tensor::Shape
sampleShape(Workload w)
{
    switch (w) {
      case Workload::CnnMnist:
        return {1, kImgExtent, kImgExtent};
      case Workload::LstmShakespeare:
        return {kSeqLen, kVocab};
      case Workload::MobileNetImageNet:
        return {3, kImgExtent, kImgExtent};
    }
    return {};
}

std::size_t
lstmSeqLen()
{
    return kSeqLen;
}

std::size_t
lstmVocab()
{
    return kVocab;
}

std::unique_ptr<nn::Model>
buildModel(Workload w, std::uint64_t seed)
{
    util::Rng rng(seed);
    switch (w) {
      case Workload::CnnMnist:          return buildCnnMnist(rng);
      case Workload::LstmShakespeare:   return buildLstmShakespeare(rng);
      case Workload::MobileNetImageNet: return buildMobileNetImageNet(rng);
    }
    util::fatal("buildModel: unknown workload");
}

double
defaultLearningRate(Workload w)
{
    switch (w) {
      case Workload::CnnMnist:          return 0.15;
      case Workload::LstmShakespeare:   return 1.0;
      case Workload::MobileNetImageNet: return 0.12;
    }
    return 0.15;
}

} // namespace models
} // namespace fedgpo
