/**
 * @file
 * The three FL workload models evaluated in the paper (Section 4.2):
 * CNN-MNIST, LSTM-Shakespeare, and MobileNet-ImageNet, scaled to the
 * synthetic dataset geometries this reproduction trains on.
 *
 * Each builder returns a freshly initialized Model; all builders with the
 * same seed produce identical weights, which is what lets the FL server
 * and its clients start from a common w_0.
 */

#ifndef FEDGPO_MODELS_ZOO_H_
#define FEDGPO_MODELS_ZOO_H_

#include <memory>
#include <string>

#include "nn/model.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace fedgpo {
namespace models {

/** The paper's three FL workloads. */
enum class Workload {
    CnnMnist,          //!< CNN on MNIST-like images (image classification)
    LstmShakespeare,   //!< LSTM on Shakespeare-like text (next char)
    MobileNetImageNet, //!< MobileNet-lite on ImageNet-like images
};

/** All workloads, for iteration in benches. */
inline constexpr Workload kAllWorkloads[] = {
    Workload::CnnMnist,
    Workload::LstmShakespeare,
    Workload::MobileNetImageNet,
};

/** Human-readable workload name as the paper spells it. */
std::string workloadName(Workload w);

/** Number of label classes of the workload's dataset. */
std::size_t numClasses(Workload w);

/**
 * Shape of one input sample (without the batch dimension):
 * CnnMnist [1,16,16], LstmShakespeare [T,V], MobileNetImageNet [3,16,16].
 */
tensor::Shape sampleShape(Workload w);

/** Sequence length used by the LSTM workload. */
std::size_t lstmSeqLen();

/** Character vocabulary size of the Shakespeare-like dataset. */
std::size_t lstmVocab();

/**
 * Build a freshly initialized model for the workload.
 *
 * @param w    Which workload.
 * @param seed Weight-initialization seed (same seed => same weights).
 */
std::unique_ptr<nn::Model> buildModel(Workload w, std::uint64_t seed);

/** Client-side SGD learning rate the workload trains well with. */
double defaultLearningRate(Workload w);

} // namespace models
} // namespace fedgpo

#endif // FEDGPO_MODELS_ZOO_H_
