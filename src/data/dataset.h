/**
 * @file
 * In-memory labeled dataset used by the FL clients.
 *
 * Samples live in one contiguous tensor whose first dimension indexes the
 * sample; batch assembly gathers rows by index, so client shards are just
 * index lists into the shared store (no per-client copies of the data).
 */

#ifndef FEDGPO_DATA_DATASET_H_
#define FEDGPO_DATA_DATASET_H_

#include <vector>

#include "tensor/tensor.h"

namespace fedgpo {
namespace data {

/**
 * Dense labeled dataset.
 */
class Dataset
{
  public:
    Dataset() = default;

    /**
     * @param features [N, ...sample dims]
     * @param labels   N class indices
     * @param classes  Number of distinct classes
     */
    Dataset(tensor::Tensor features, std::vector<int> labels,
            std::size_t classes);

    /** Number of samples. */
    std::size_t size() const { return labels_.size(); }

    /** Number of label classes. */
    std::size_t numClasses() const { return classes_; }

    /** Shape of one sample (batch dimension stripped). */
    const tensor::Shape &sampleShape() const { return sample_shape_; }

    /** All labels. */
    const std::vector<int> &labels() const { return labels_; }

    /** Label of sample i. */
    int label(std::size_t i) const { return labels_.at(i); }

    /**
     * Gather the samples at `indices` into a batch tensor shaped
     * [indices.size(), ...sample dims] plus the matching label vector.
     */
    void gather(const std::vector<std::size_t> &indices,
                tensor::Tensor &batch, std::vector<int> &labels) const;

    /** Per-class sample counts for an index subset. */
    std::vector<std::size_t>
    classHistogram(const std::vector<std::size_t> &indices) const;

    /** Number of classes with at least one sample in the subset. */
    std::size_t classesPresent(const std::vector<std::size_t> &indices) const;

  private:
    tensor::Tensor features_;
    std::vector<int> labels_;
    std::size_t classes_ = 0;
    tensor::Shape sample_shape_;
    std::size_t sample_numel_ = 0;
};

} // namespace data
} // namespace fedgpo

#endif // FEDGPO_DATA_DATASET_H_
