#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "models/zoo.h"

namespace fedgpo {
namespace data {

namespace {

/**
 * Smooth a single-channel image in place by repeated 3x3 box blurring;
 * smooth prototypes make classes distinguishable by low-frequency
 * structure the conv layers can pick up.
 */
void
boxBlur(std::vector<float> &img, std::size_t h, std::size_t w,
        int passes)
{
    std::vector<float> tmp(img.size());
    for (int p = 0; p < passes; ++p) {
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                float acc = 0.0f;
                int cnt = 0;
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        long yy = static_cast<long>(y) + dy;
                        long xx = static_cast<long>(x) + dx;
                        if (yy < 0 || yy >= static_cast<long>(h) ||
                            xx < 0 || xx >= static_cast<long>(w)) {
                            continue;
                        }
                        acc += img[yy * w + xx];
                        ++cnt;
                    }
                }
                tmp[y * w + x] = acc / static_cast<float>(cnt);
            }
        }
        img = tmp;
    }
}

Dataset
makeImageDataset(std::size_t n, std::size_t channels, std::size_t extent,
                 std::size_t classes, double noise, util::Rng &rng)
{
    const std::size_t sample_numel = channels * extent * extent;
    // Class prototypes: smooth random fields, renormalized to [0, 1].
    std::vector<std::vector<float>> protos(classes);
    for (auto &proto : protos) {
        proto.resize(sample_numel);
        for (auto &v : proto)
            v = static_cast<float>(rng.uniform());
        for (std::size_t c = 0; c < channels; ++c) {
            std::vector<float> plane(proto.begin() +
                                         static_cast<long>(c * extent *
                                                           extent),
                                     proto.begin() +
                                         static_cast<long>((c + 1) * extent *
                                                           extent));
            boxBlur(plane, extent, extent, 2);
            // Stretch contrast so prototypes stay separable after blur.
            float lo = *std::min_element(plane.begin(), plane.end());
            float hi = *std::max_element(plane.begin(), plane.end());
            float span = std::max(1e-6f, hi - lo);
            for (auto &v : plane)
                v = (v - lo) / span;
            std::copy(plane.begin(), plane.end(),
                      proto.begin() + static_cast<long>(c * extent * extent));
        }
    }

    tensor::Tensor features({n, channels, extent, extent});
    std::vector<int> labels(n);
    float *dst = features.data();
    for (std::size_t i = 0; i < n; ++i) {
        const int y = static_cast<int>(rng.index(classes));
        labels[i] = y;
        const auto &proto = protos[static_cast<std::size_t>(y)];
        // Random +-1 pixel shift applied uniformly to all channels.
        const int sy = rng.uniformInt(-1, 1);
        const int sx = rng.uniformInt(-1, 1);
        float *out = dst + i * sample_numel;
        for (std::size_t c = 0; c < channels; ++c) {
            for (std::size_t py = 0; py < extent; ++py) {
                for (std::size_t px = 0; px < extent; ++px) {
                    long qy = static_cast<long>(py) + sy;
                    long qx = static_cast<long>(px) + sx;
                    qy = std::clamp<long>(qy, 0,
                                          static_cast<long>(extent) - 1);
                    qx = std::clamp<long>(qx, 0,
                                          static_cast<long>(extent) - 1);
                    float v = proto[(c * extent + static_cast<std::size_t>(
                                                      qy)) * extent +
                                    static_cast<std::size_t>(qx)];
                    v += static_cast<float>(rng.gaussian(0.0, noise));
                    out[(c * extent + py) * extent + px] = v;
                }
            }
        }
    }
    return Dataset(std::move(features), std::move(labels), classes);
}

} // namespace

Dataset
makeSyntheticMnist(std::size_t n, util::Rng &rng, double noise)
{
    return makeImageDataset(n, 1, 16, 10, noise, rng);
}

Dataset
makeSyntheticImageNet(std::size_t n, util::Rng &rng, double noise)
{
    return makeImageDataset(n, 3, 16, 20, noise, rng);
}

Dataset
makeSyntheticShakespeare(std::size_t n, util::Rng &rng)
{
    const std::size_t vocab = models::lstmVocab();
    const std::size_t seq = models::lstmSeqLen();

    // Random sparse-ish Markov chain: each symbol strongly prefers a
    // handful of successors, like character bigrams in natural text.
    std::vector<std::vector<double>> trans(vocab,
                                           std::vector<double>(vocab));
    for (std::size_t a = 0; a < vocab; ++a) {
        for (std::size_t b = 0; b < vocab; ++b)
            trans[a][b] = 0.01;
        // A couple of preferred successors carry most of the mass.
        trans[a][rng.index(vocab)] += rng.uniform(3.0, 8.0);
        trans[a][rng.index(vocab)] += rng.uniform(0.5, 2.0);
    }

    // Generate one long stream and cut overlapping windows from it.
    const std::size_t stream_len = n + seq + 1;
    std::vector<int> stream(stream_len);
    stream[0] = static_cast<int>(rng.index(vocab));
    for (std::size_t i = 1; i < stream_len; ++i) {
        stream[i] = static_cast<int>(
            rng.categorical(trans[static_cast<std::size_t>(stream[i - 1])]));
    }

    tensor::Tensor features({n, seq, vocab});
    std::vector<int> labels(n);
    float *dst = features.data();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t t = 0; t < seq; ++t) {
            const int ch = stream[i + t];
            dst[(i * seq + t) * vocab + static_cast<std::size_t>(ch)] = 1.0f;
        }
        labels[i] = stream[i + seq];
    }
    return Dataset(std::move(features), std::move(labels), vocab);
}

} // namespace data
} // namespace fedgpo
