/**
 * @file
 * FL data partitioners: IID and Dirichlet non-IID shard assignment
 * (paper Section 4.2, "Data distribution").
 */

#ifndef FEDGPO_DATA_PARTITION_H_
#define FEDGPO_DATA_PARTITION_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fedgpo {
namespace data {

/** How training data is spread over client devices. */
enum class Distribution {
    IidIdeal,   //!< all classes evenly distributed to every device
    NonIid,     //!< Dirichlet(alpha) label skew per device
};

/** Per-device shard: indices into the shared training Dataset. */
using Partition = std::vector<std::vector<std::size_t>>;

/**
 * Even IID split: samples are shuffled and dealt round-robin, so every
 * device sees (approximately) the global class mixture.
 *
 * @param dataset   Source data.
 * @param n_devices Number of shards.
 * @param rng       Shuffle stream.
 */
Partition iidPartition(const Dataset &dataset, std::size_t n_devices,
                       util::Rng &rng);

/**
 * Dirichlet non-IID split: for each class, the per-device share of that
 * class's samples is drawn from Dirichlet(alpha); alpha = 0.1 (the paper's
 * concentration) yields strongly skewed shards where most devices hold
 * only a few classes.
 *
 * Every device is guaranteed at least `min_per_device` samples (topped up
 * from the largest shards) so no client is left unable to form a batch.
 */
Partition dirichletPartition(const Dataset &dataset, std::size_t n_devices,
                             double alpha, util::Rng &rng,
                             std::size_t min_per_device = 8);

/**
 * Convenience dispatcher over Distribution.
 */
Partition makePartition(const Dataset &dataset, std::size_t n_devices,
                        Distribution dist, util::Rng &rng,
                        double alpha = 0.1);

} // namespace data
} // namespace fedgpo

#endif // FEDGPO_DATA_PARTITION_H_
