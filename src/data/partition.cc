#include "data/partition.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace fedgpo {
namespace data {

Partition
iidPartition(const Dataset &dataset, std::size_t n_devices, util::Rng &rng)
{
    assert(n_devices > 0);
    std::vector<std::size_t> order(dataset.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    Partition shards(n_devices);
    for (std::size_t i = 0; i < order.size(); ++i)
        shards[i % n_devices].push_back(order[i]);
    return shards;
}

Partition
dirichletPartition(const Dataset &dataset, std::size_t n_devices,
                   double alpha, util::Rng &rng,
                   std::size_t min_per_device)
{
    assert(n_devices > 0);
    Partition shards(n_devices);

    // Bucket sample indices by class, shuffled within each class.
    std::vector<std::vector<std::size_t>> by_class(dataset.numClasses());
    for (std::size_t i = 0; i < dataset.size(); ++i)
        by_class[static_cast<std::size_t>(dataset.label(i))].push_back(i);
    for (auto &bucket : by_class)
        rng.shuffle(bucket);

    // For each class, split its samples across devices with Dirichlet
    // proportions.
    for (auto &bucket : by_class) {
        if (bucket.empty())
            continue;
        std::vector<double> props = rng.dirichlet(alpha, n_devices);
        // Convert proportions to cumulative cut points.
        std::size_t assigned = 0;
        for (std::size_t d = 0; d < n_devices; ++d) {
            std::size_t take =
                d + 1 == n_devices
                    ? bucket.size() - assigned
                    : static_cast<std::size_t>(props[d] *
                                               static_cast<double>(
                                                   bucket.size()));
            take = std::min(take, bucket.size() - assigned);
            for (std::size_t i = 0; i < take; ++i)
                shards[d].push_back(bucket[assigned + i]);
            assigned += take;
        }
    }

    // Top up starved devices from the largest shards so every client can
    // form at least one batch.
    for (std::size_t d = 0; d < n_devices; ++d) {
        while (shards[d].size() < min_per_device) {
            auto donor = std::max_element(
                shards.begin(), shards.end(),
                [](const auto &a, const auto &b) {
                    return a.size() < b.size();
                });
            if (donor->size() <= min_per_device)
                break;  // nothing left to redistribute
            shards[d].push_back(donor->back());
            donor->pop_back();
        }
    }
    return shards;
}

Partition
makePartition(const Dataset &dataset, std::size_t n_devices,
              Distribution dist, util::Rng &rng, double alpha)
{
    switch (dist) {
      case Distribution::IidIdeal:
        return iidPartition(dataset, n_devices, rng);
      case Distribution::NonIid:
        return dirichletPartition(dataset, n_devices, alpha, rng);
    }
    return {};
}

} // namespace data
} // namespace fedgpo
