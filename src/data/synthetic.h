/**
 * @file
 * Synthetic-but-learnable stand-ins for the paper's datasets.
 *
 * The paper trains on MNIST, Shakespeare, and ImageNet; none are available
 * offline here, and the phenomena under study (effect of B/E/K, non-IID
 * label skew, convergence dynamics) depend on class structure and
 * learnability rather than on the specific corpus. Each generator produces
 * a dataset the corresponding model architecture genuinely has to learn:
 *
 *  - Images: each class owns a smooth random prototype; samples are the
 *    prototype plus Gaussian pixel noise and a random +-1 pixel shift.
 *  - Text: a character stream from a random order-1 Markov chain over a
 *    28-symbol alphabet; samples are one-hot windows, the label is the
 *    next character (so the label distribution is the chain's stationary
 *    distribution and the task is genuinely sequential).
 */

#ifndef FEDGPO_DATA_SYNTHETIC_H_
#define FEDGPO_DATA_SYNTHETIC_H_

#include "data/dataset.h"
#include "util/rng.h"

namespace fedgpo {
namespace data {

/**
 * MNIST-like dataset: 10 classes of 1x16x16 images.
 *
 * @param n     Number of samples.
 * @param rng   Generator stream; prototypes are derived from it, so two
 *              datasets built from equal-seeded streams share prototypes.
 * @param noise Pixel noise standard deviation (default matches the
 *              difficulty at which the CNN converges in tens of rounds).
 */
Dataset makeSyntheticMnist(std::size_t n, util::Rng &rng,
                           double noise = 0.55);

/**
 * ImageNet-like dataset: 20 classes of 3x16x16 images (harder than the
 * MNIST-like set: more classes, colored prototypes, more noise).
 */
Dataset makeSyntheticImageNet(std::size_t n, util::Rng &rng,
                              double noise = 0.6);

/**
 * Shakespeare-like next-character dataset over a 28-symbol alphabet with
 * sequence length matching the LSTM workload.
 *
 * @param n   Number of (window, next-char) samples.
 * @param rng Generator stream (Markov transition matrix derives from it).
 */
Dataset makeSyntheticShakespeare(std::size_t n, util::Rng &rng);

} // namespace data
} // namespace fedgpo

#endif // FEDGPO_DATA_SYNTHETIC_H_
