#include "data/dataset.h"

#include <cassert>

#include "util/logging.h"

namespace fedgpo {
namespace data {

Dataset::Dataset(tensor::Tensor features, std::vector<int> labels,
                 std::size_t classes)
    : features_(std::move(features)), labels_(std::move(labels)),
      classes_(classes)
{
    if (features_.ndim() < 2)
        util::fatal("Dataset: features must have a batch dimension");
    if (features_.dim(0) != labels_.size())
        util::fatal("Dataset: feature/label count mismatch");
    sample_shape_.assign(features_.shape().begin() + 1,
                         features_.shape().end());
    sample_numel_ = tensor::shapeNumel(sample_shape_);
    for (int y : labels_) {
        assert(y >= 0 && static_cast<std::size_t>(y) < classes_);
        (void)y;
    }
}

void
Dataset::gather(const std::vector<std::size_t> &indices,
                tensor::Tensor &batch, std::vector<int> &labels) const
{
    tensor::Shape shape;
    shape.push_back(indices.size());
    shape.insert(shape.end(), sample_shape_.begin(), sample_shape_.end());
    if (batch.shape() != shape)
        batch = tensor::Tensor(shape);
    labels.resize(indices.size());
    const float *src = features_.data();
    float *dst = batch.data();
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::size_t idx = indices[i];
        assert(idx < size());
        std::copy(src + idx * sample_numel_,
                  src + (idx + 1) * sample_numel_,
                  dst + i * sample_numel_);
        labels[i] = labels_[idx];
    }
}

std::vector<std::size_t>
Dataset::classHistogram(const std::vector<std::size_t> &indices) const
{
    std::vector<std::size_t> hist(classes_, 0);
    for (std::size_t idx : indices)
        ++hist[static_cast<std::size_t>(labels_.at(idx))];
    return hist;
}

std::size_t
Dataset::classesPresent(const std::vector<std::size_t> &indices) const
{
    auto hist = classHistogram(indices);
    std::size_t present = 0;
    for (std::size_t count : hist)
        if (count > 0)
            ++present;
    return present;
}

} // namespace data
} // namespace fedgpo
