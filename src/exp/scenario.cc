#include "exp/scenario.h"

#include <cstdlib>

namespace fedgpo {
namespace exp {

std::string
varianceName(Variance v)
{
    switch (v) {
      case Variance::None:         return "none";
      case Variance::Interference: return "on-device interference";
      case Variance::Network:      return "unstable network";
      case Variance::Both:         return "interference + network";
    }
    return "?";
}

fl::FlConfig
Scenario::toFlConfig() const
{
    fl::FlConfig config;
    config.workload = workload;
    config.n_devices = n_devices;
    config.train_samples = train_samples;
    config.test_samples = test_samples;
    config.distribution = distribution;
    config.interference = variance == Variance::Interference ||
                          variance == Variance::Both;
    config.network_unstable =
        variance == Variance::Network || variance == Variance::Both;
    config.seed = seed;
    return config;
}

bool
fullScale()
{
    const char *env = std::getenv("FEDGPO_BENCH_FULL");
    return env != nullptr && env[0] == '1';
}

Scenario
makeScenario(models::Workload w, Variance v, data::Distribution dist,
             std::uint64_t seed)
{
    Scenario s;
    s.workload = w;
    s.variance = v;
    s.distribution = dist;
    s.seed = seed;
    s.name = models::workloadName(w) + "/" + varianceName(v) + "/" +
             (dist == data::Distribution::IidIdeal ? "IID" : "non-IID");
    if (fullScale()) {
        s.n_devices = 200;
        s.train_samples = 6000;
        s.test_samples = 1000;
        s.rounds = 100;
    }
    return s;
}

} // namespace exp
} // namespace fedgpo
