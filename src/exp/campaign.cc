#include "exp/campaign.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace fedgpo {
namespace exp {

namespace {

/** Fold one round into the campaign summary. */
void
accumulate(CampaignResult &out, const fl::RoundResult &r,
           fl::ConvergenceTracker &tracker)
{
    out.accuracy.push_back(r.test_accuracy);
    out.round_time.push_back(r.round_time);
    out.round_energy.push_back(r.energy_total);
    out.train_loss.push_back(r.train_loss);
    out.dropped.push_back(r.dropped_count);
    out.total_energy += r.energy_total;
    out.total_time += r.round_time;
    for (const auto &p : r.participants) {
        out.energy_by_category[static_cast<std::size_t>(p.category)] +=
            p.cost.e_total;
    }
    const bool was_converged = tracker.converged();
    tracker.add(r.test_accuracy);
    if (!was_converged && tracker.converged()) {
        out.converged_round = tracker.convergedRound();
        out.time_to_convergence = out.total_time;
        out.energy_to_convergence = out.total_energy;
    }
}

void
finalize(CampaignResult &out)
{
    if (!out.accuracy.empty()) {
        out.final_accuracy = out.accuracy.back();
        out.best_accuracy =
            *std::max_element(out.accuracy.begin(), out.accuracy.end());
        out.avg_round_time =
            out.total_time / static_cast<double>(out.round_time.size());
    }
}

} // namespace

double
CampaignResult::ppw() const
{
    const double energy = converged_round > 0 ? energy_to_convergence
                                              : total_energy;
    return energy > 0.0 ? 1.0 / energy : 0.0;
}

double
CampaignResult::timeToAccuracy(double target) const
{
    double time = 0.0;
    for (std::size_t i = 0; i < accuracy.size(); ++i) {
        time += round_time[i];
        if (accuracy[i] >= target)
            return time;
    }
    return total_time;
}

double
CampaignResult::energyToAccuracy(double target) const
{
    double energy = 0.0;
    for (std::size_t i = 0; i < accuracy.size(); ++i) {
        energy += round_energy[i];
        if (accuracy[i] >= target)
            return energy;
    }
    return total_energy;
}

double
CampaignResult::ppwAt(double target) const
{
    const double energy = energyToAccuracy(target);
    return energy > 0.0 ? 1.0 / energy : 0.0;
}

double
CampaignResult::speedupOver(const CampaignResult &baseline) const
{
    const double mine = converged_round > 0 ? time_to_convergence
                                            : total_time;
    const double theirs = baseline.converged_round > 0
                              ? baseline.time_to_convergence
                              : baseline.total_time;
    return mine > 0.0 ? theirs / mine : 0.0;
}

CampaignResult
runCampaign(const Scenario &scenario, optim::ParamOptimizer &policy,
            int rounds)
{
    assert(rounds > 0);
    fl::FlSimulator sim(scenario.toFlConfig());
    fl::ConvergenceTracker tracker;
    CampaignResult out;
    out.policy = policy.name();
    out.scenario = scenario.name;
    for (int r = 0; r < rounds; ++r)
        accumulate(out, sim.runRound(policy), tracker);
    finalize(out);
    return out;
}

CampaignResult
runCampaignWithWarmup(const Scenario &scenario,
                      optim::ParamOptimizer &policy, int warmup_rounds,
                      int rounds)
{
    if (warmup_rounds > 0) {
        Scenario warm = scenario;
        warm.seed = scenario.seed ^ 0xc0ffee;
        fl::FlSimulator sim(warm.toFlConfig());
        for (int r = 0; r < warmup_rounds; ++r)
            sim.runRound(policy);
    }
    return runCampaign(scenario, policy, rounds);
}

CampaignResult
runCampaignFixed(const Scenario &scenario, const fl::GlobalParams &params,
                 int rounds)
{
    assert(rounds > 0);
    fl::FlSimulator sim(scenario.toFlConfig());
    fl::ConvergenceTracker tracker;
    CampaignResult out;
    out.policy = "Fixed " + params.toString();
    out.scenario = scenario.name;
    for (int r = 0; r < rounds; ++r)
        accumulate(out, sim.runRoundWithParams(params), tracker);
    finalize(out);
    return out;
}

fl::GlobalParams
gridSearchBestFixed(const Scenario &scenario,
                    const std::vector<fl::GlobalParams> &grid,
                    int probe_rounds)
{
    assert(!grid.empty());
    fl::GlobalParams best = grid.front();
    double best_score = -1.0;
    for (const auto &params : grid) {
        Scenario probe = scenario;
        probe.seed = scenario.seed ^ 0x5bd1e995;
        CampaignResult r = runCampaignFixed(probe, params, probe_rounds);
        // Score: PPW with an accuracy gate — a config that never learns
        // cannot be "best" however cheap it is.
        const double score = r.ppw() * std::max(r.best_accuracy, 1e-3);
        if (score > best_score) {
            best_score = score;
            best = params;
        }
    }
    util::logInfo("gridSearchBestFixed: " + best.toString());
    return best;
}

std::vector<fl::GlobalParams>
coarseGrid()
{
    std::vector<fl::GlobalParams> grid;
    for (int b : {4, 8, 16})
        for (int e : {5, 10, 20})
            for (int k : {10, 20})
                grid.push_back(fl::GlobalParams{b, e, k});
    return grid;
}

} // namespace exp
} // namespace fedgpo
