#include "exp/campaign.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fl/round/trace_writer.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace fedgpo {
namespace exp {

namespace {

void
finalize(CampaignResult &out)
{
    if (!out.accuracy.empty()) {
        out.final_accuracy = out.accuracy.back();
        out.best_accuracy =
            *std::max_element(out.accuracy.begin(), out.accuracy.end());
        out.avg_round_time =
            out.total_time / static_cast<double>(out.round_time.size());
    }
}

/**
 * JSONL trace writer for this campaign when FEDGPO_TRACE_DIR is set
 * (file name derived from scenario + policy), else null.
 */
std::unique_ptr<fl::round::JsonlTraceWriter>
makeTraceWriter(const std::string &scenario, const std::string &policy)
{
    const char *dir = std::getenv("FEDGPO_TRACE_DIR");
    if (dir == nullptr || *dir == '\0')
        return nullptr;
    std::string stem = scenario + "_" + policy;
    for (char &c : stem) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '-';
    }
    auto writer = std::make_unique<fl::round::JsonlTraceWriter>(
        std::string(dir) + "/" + stem + ".jsonl");
    if (!writer->ok()) {
        util::logWarn("campaign: cannot open trace file under " +
                      std::string(dir));
        return nullptr;
    }
    return writer;
}

/**
 * Drive `rounds` rounds with the campaign trace observer (and optional
 * JSONL writer) attached; shared by the policy-driven and fixed runners.
 */
template <typename RunRound>
CampaignResult
runObserved(const Scenario &scenario, const std::string &policy_name,
            int rounds, fl::FlSimulator &sim, RunRound &&run_round)
{
    assert(rounds > 0);
    fl::ConvergenceTracker tracker;
    CampaignResult out;
    out.policy = policy_name;
    out.scenario = scenario.name;

    CampaignTraceObserver observer(out, tracker);
    sim.addRoundObserver(&observer);
    auto trace = makeTraceWriter(scenario.name, policy_name);
    if (trace)
        sim.addRoundObserver(trace.get());

    // Throttled per-round progress at Info: at most one line every ~2
    // host seconds (plus the final round), so long campaigns stay
    // followable without drowning the log.
    using clock = std::chrono::steady_clock;
    const bool progress = util::logLevel() <= util::LogLevel::Info;
    const auto t_start = clock::now();
    auto t_last = t_start - std::chrono::seconds(10);
    for (int r = 0; r < rounds; ++r) {
        run_round(sim);
        if (!progress)
            continue;
        const auto now = clock::now();
        if (now - t_last < std::chrono::seconds(2) && r + 1 < rounds)
            continue;
        t_last = now;
        const double elapsed_s =
            std::chrono::duration<double>(now - t_start).count();
        const double eta_s = r + 1 < rounds
                                 ? elapsed_s / (r + 1) * (rounds - r - 1)
                                 : 0.0;
        const double acc =
            out.accuracy.empty() ? 0.0 : out.accuracy.back();
        char line[160];
        std::snprintf(line, sizeof line,
                      "campaign %s/%s: round %d/%d acc=%.4f "
                      "elapsed=%.1fs eta=%.1fs",
                      scenario.name.c_str(), policy_name.c_str(), r + 1,
                      rounds, acc, elapsed_s, eta_s);
        util::logInfo(line);
    }

    if (trace)
        sim.removeRoundObserver(trace.get());
    sim.removeRoundObserver(&observer);
    finalize(out);
    obs::finishRun();
    return out;
}

} // namespace

void
CampaignTraceObserver::onRoundEnd(const fl::RoundResult &r)
{
    out_.accuracy.push_back(r.test_accuracy);
    out_.round_time.push_back(r.round_time);
    out_.round_energy.push_back(r.energy_total);
    out_.train_loss.push_back(r.train_loss);
    out_.dropped.push_back(r.droppedCount());
    out_.dropped_straggler.push_back(r.dropped_straggler);
    out_.dropped_diverged.push_back(r.dropped_diverged);
    out_.dropped_offline += r.dropped_offline;
    out_.dropped_crashed += r.dropped_crashed;
    out_.dropped_upload += r.dropped_upload;
    out_.upload_retries += r.upload_retries;
    if (r.aborted)
        ++out_.rounds_aborted;
    out_.bytes_up_total += r.bytes_up_total;
    out_.bytes_down_total += r.bytes_down_total;
    out_.total_energy += r.energy_total;
    out_.total_time += r.round_time;
    for (const auto &p : r.participants) {
        out_.energy_by_category[static_cast<std::size_t>(p.category)] +=
            p.cost.e_total;
    }
    const bool was_converged = tracker_.converged();
    tracker_.add(r.test_accuracy);
    if (!was_converged && tracker_.converged()) {
        out_.converged_round = tracker_.convergedRound();
        out_.time_to_convergence = out_.total_time;
        out_.energy_to_convergence = out_.total_energy;
    }
}

double
CampaignResult::ppw() const
{
    const double energy = converged_round > 0 ? energy_to_convergence
                                              : total_energy;
    return energy > 0.0 ? 1.0 / energy : 0.0;
}

double
CampaignResult::timeToAccuracy(double target) const
{
    double time = 0.0;
    for (std::size_t i = 0; i < accuracy.size(); ++i) {
        time += round_time[i];
        if (accuracy[i] >= target)
            return time;
    }
    return total_time;
}

double
CampaignResult::energyToAccuracy(double target) const
{
    double energy = 0.0;
    for (std::size_t i = 0; i < accuracy.size(); ++i) {
        energy += round_energy[i];
        if (accuracy[i] >= target)
            return energy;
    }
    return total_energy;
}

double
CampaignResult::ppwAt(double target) const
{
    const double energy = energyToAccuracy(target);
    return energy > 0.0 ? 1.0 / energy : 0.0;
}

double
CampaignResult::speedupOver(const CampaignResult &baseline) const
{
    const double mine = converged_round > 0 ? time_to_convergence
                                            : total_time;
    const double theirs = baseline.converged_round > 0
                              ? baseline.time_to_convergence
                              : baseline.total_time;
    return mine > 0.0 ? theirs / mine : 0.0;
}

CampaignResult
runCampaign(const Scenario &scenario, optim::ParamOptimizer &policy,
            int rounds)
{
    fl::FlSimulator sim(scenario.toFlConfig());
    return runObserved(scenario, policy.name(), rounds, sim,
                       [&policy](fl::FlSimulator &s) {
                           s.runRound(policy);
                       });
}

CampaignResult
runCampaignWithWarmup(const Scenario &scenario,
                      optim::ParamOptimizer &policy, int warmup_rounds,
                      int rounds)
{
    if (warmup_rounds > 0) {
        Scenario warm = scenario;
        warm.seed = scenario.seed ^ 0xc0ffee;
        fl::FlSimulator sim(warm.toFlConfig());
        for (int r = 0; r < warmup_rounds; ++r)
            sim.runRound(policy);
    }
    return runCampaign(scenario, policy, rounds);
}

CampaignResult
runCampaignFixed(const Scenario &scenario, const fl::GlobalParams &params,
                 int rounds)
{
    fl::FlSimulator sim(scenario.toFlConfig());
    return runObserved(scenario, "Fixed " + params.toString(), rounds, sim,
                       [&params](fl::FlSimulator &s) {
                           s.runRoundWithParams(params);
                       });
}

fl::GlobalParams
gridSearchBestFixed(const Scenario &scenario,
                    const std::vector<fl::GlobalParams> &grid,
                    int probe_rounds)
{
    assert(!grid.empty());
    fl::GlobalParams best = grid.front();
    double best_score = -1.0;
    for (const auto &params : grid) {
        Scenario probe = scenario;
        probe.seed = scenario.seed ^ 0x5bd1e995;
        CampaignResult r = runCampaignFixed(probe, params, probe_rounds);
        // Score: PPW with an accuracy gate — a config that never learns
        // cannot be "best" however cheap it is.
        const double score = r.ppw() * std::max(r.best_accuracy, 1e-3);
        if (score > best_score) {
            best_score = score;
            best = params;
        }
    }
    util::logInfo("gridSearchBestFixed: " + best.toString());
    return best;
}

std::vector<fl::GlobalParams>
coarseGrid()
{
    std::vector<fl::GlobalParams> grid;
    for (int b : {4, 8, 16})
        for (int e : {5, 10, 20})
            for (int k : {10, 20})
                grid.push_back(fl::GlobalParams{b, e, k});
    return grid;
}

} // namespace exp
} // namespace fedgpo
