/**
 * @file
 * Experiment scenarios: named bundles of FlConfig + campaign length used
 * by the benches and examples, with a quick/full scale switch.
 *
 * The paper's full scale (200 devices, long campaigns) does not fit a
 * single host core when every bench in the suite must run; the default
 * "quick" scale shrinks the fleet and round count while preserving the
 * 15/35/50 tier mix, the K grid, and all variance processes — every
 * reported number is a ratio, so the shape survives the scaling. Set
 * FEDGPO_BENCH_FULL=1 in the environment for paper scale.
 */

#ifndef FEDGPO_EXP_SCENARIO_H_
#define FEDGPO_EXP_SCENARIO_H_

#include <string>

#include "fl/simulator.h"

namespace fedgpo {
namespace exp {

/** Runtime-variance regimes studied in the paper. */
enum class Variance {
    None,          //!< no co-runners, stable network
    Interference,  //!< co-running applications on a random device subset
    Network,       //!< unstable wireless network
    Both,          //!< interference + unstable network
};

/** Human-readable variance label. */
std::string varianceName(Variance v);

/**
 * A fully specified experiment scenario.
 */
struct Scenario
{
    std::string name = "default";
    models::Workload workload = models::Workload::CnnMnist;
    Variance variance = Variance::None;
    data::Distribution distribution = data::Distribution::IidIdeal;
    int rounds = 25;
    std::uint64_t seed = 42;

    /** Scale knobs (overridden by full-scale mode). */
    std::size_t n_devices = 40;
    std::size_t train_samples = 1200;
    std::size_t test_samples = 300;

    /** Materialize the simulator configuration. */
    fl::FlConfig toFlConfig() const;
};

/** True when FEDGPO_BENCH_FULL=1 is set in the environment. */
bool fullScale();

/**
 * Standard scenario for a workload, scaled per fullScale():
 * quick = 40 devices / 25 rounds, full = 200 devices / 100 rounds.
 */
Scenario makeScenario(models::Workload w, Variance v,
                      data::Distribution dist, std::uint64_t seed = 42);

} // namespace exp
} // namespace fedgpo

#endif // FEDGPO_EXP_SCENARIO_H_
