/**
 * @file
 * Campaign runner: executes a full FL run (one scenario, one policy) and
 * summarizes it into the quantities the paper plots — PPW, convergence
 * round/time, average round time, accuracy — plus the raw per-round
 * traces for the figure benches.
 */

#ifndef FEDGPO_EXP_CAMPAIGN_H_
#define FEDGPO_EXP_CAMPAIGN_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "fl/convergence.h"
#include "fl/round/observer.h"
#include "optim/optimizer.h"

namespace fedgpo {
namespace exp {

/**
 * Summary of one campaign.
 */
struct CampaignResult
{
    std::string policy;
    std::string scenario;

    // Per-round traces (accumulated by a fl::round::RoundObserver over
    // the engine's event stream).
    std::vector<double> accuracy;
    std::vector<double> round_time;
    std::vector<double> round_energy;
    std::vector<double> train_loss;
    std::vector<std::size_t> dropped;           //!< total drops per round
    std::vector<std::size_t> dropped_straggler; //!< deadline drops
    std::vector<std::size_t> dropped_diverged;  //!< non-finite rejections

    // Fault-injection aggregates (all zero with faults off).
    std::size_t dropped_offline = 0; //!< devices offline at selection
    std::size_t dropped_crashed = 0; //!< mid-training crashes
    std::size_t dropped_upload = 0;  //!< uploads lost after retries
    std::size_t upload_retries = 0;  //!< retransmissions performed
    std::size_t rounds_aborted = 0;  //!< rounds that missed quorum

    // Communication totals (modeled wire bytes, exact integers).
    std::uint64_t bytes_up_total = 0;
    std::uint64_t bytes_down_total = 0;

    // Aggregates.
    double total_energy = 0.0;      //!< J over the whole campaign
    double total_time = 0.0;        //!< simulated s over the campaign
    double avg_round_time = 0.0;
    double final_accuracy = 0.0;
    double best_accuracy = 0.0;
    int converged_round = -1;       //!< settle criterion (1-based), -1 if
                                    //!< never
    double time_to_convergence = 0.0;   //!< s until converged_round
    double energy_to_convergence = 0.0; //!< J until converged_round

    // Per-category energy, for the Fig. 5 per-device breakdown.
    std::array<double, 3> energy_by_category = {0.0, 0.0, 0.0};

    /**
     * Global PPW proxy: useful progress per Joule. Convergence energy is
     * used when the run converged, total energy otherwise (a run that
     * never converges scores the worst of both worlds, as in the paper's
     * straggler-degraded baselines).
     */
    double ppw() const;

    /** Convergence-time speedup of this run relative to a baseline. */
    double speedupOver(const CampaignResult &baseline) const;

    /**
     * Simulated seconds until the accuracy trace first reaches `target`;
     * the full campaign time when it never does (the fair worst case for
     * baselines whose accuracy degrades, per Section 5.2).
     */
    double timeToAccuracy(double target) const;

    /** Joules until the accuracy trace first reaches `target` (ditto). */
    double energyToAccuracy(double target) const;

    /**
     * Energy-to-target PPW: 1 / energyToAccuracy(target). This is the
     * comparison metric of the figure benches — performance per watt at
     * matched model quality, exactly the paper's "PPW normalized to
     * Fixed (Best)" once divided by the baseline's value.
     */
    double ppwAt(double target) const;
};

/**
 * Round observer that folds the engine's event stream into a
 * CampaignResult as rounds complete — the single instrumentation path
 * shared by the campaign runners, the figure benches, and examples
 * (no post-hoc copying out of RoundResult).
 */
class CampaignTraceObserver : public fl::round::RoundObserver
{
  public:
    /** Both references must outlive the observer's registration. */
    CampaignTraceObserver(CampaignResult &out,
                          fl::ConvergenceTracker &tracker)
        : out_(out), tracker_(tracker)
    {
    }

    void onRoundEnd(const fl::RoundResult &result) override;

  private:
    CampaignResult &out_;
    fl::ConvergenceTracker &tracker_;
};

/**
 * Run `rounds` aggregation rounds of the scenario under the policy.
 *
 * When the FEDGPO_TRACE_DIR environment variable is set, every campaign
 * additionally streams a per-round JSONL trace
 * (fl::round::JsonlTraceWriter) into that directory, named
 * `<scenario>_<policy>.jsonl`.
 */
CampaignResult runCampaign(const Scenario &scenario,
                           optim::ParamOptimizer &policy, int rounds);

/**
 * Warm-start a learning policy, then measure it: the policy first drives
 * `warmup_rounds` on a differently-seeded copy of the scenario (training
 * its internal state — Q-tables, GP posterior, EG weights...), after
 * which a fresh simulator instance is measured for `rounds`.
 *
 * This mirrors the paper's evaluation regime: FedGPO's numbers are
 * steady-state numbers ("the reward converges after 30-40 aggregation
 * rounds... after the convergence FedGPO selects more efficient global
 * parameters"), and the Fixed (Best) baseline likewise receives its
 * offline grid search before measurement.
 */
CampaignResult runCampaignWithWarmup(const Scenario &scenario,
                                     optim::ParamOptimizer &policy,
                                     int warmup_rounds, int rounds);

/**
 * Run a campaign with a fixed (B, E, K) — the Fixed baseline and the
 * grid-sweep benches.
 */
CampaignResult runCampaignFixed(const Scenario &scenario,
                                const fl::GlobalParams &params, int rounds);

/**
 * Grid-search for the most energy-efficient fixed configuration —
 * produces the paper's "Fixed (Best)" baseline. Short probe campaigns
 * score each grid point by PPW.
 *
 * @param scenario     Scenario to probe (its seed is varied per probe).
 * @param grid         Candidate configurations.
 * @param probe_rounds Rounds per probe campaign.
 */
fl::GlobalParams gridSearchBestFixed(const Scenario &scenario,
                                     const std::vector<fl::GlobalParams> &grid,
                                     int probe_rounds);

/**
 * The coarse grid used for Fixed (Best) probing (paper Figs. 1/2/7 show
 * the interesting region): B in {4,8,16}, E in {5,10,20}, K in {10,20}.
 */
std::vector<fl::GlobalParams> coarseGrid();

} // namespace exp
} // namespace fedgpo

#endif // FEDGPO_EXP_CAMPAIGN_H_
