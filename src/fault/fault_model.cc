#include "fault/fault_model.h"

#include <algorithm>
#include <string>

#include "util/logging.h"
#include "util/rng.h"

namespace fedgpo {
namespace fault {

namespace {

void
checkRate(double rate, const char *name)
{
    if (rate < 0.0 || rate > 1.0) {
        util::fatal("FaultConfig: " + std::string(name) +
                    " must be in [0, 1], got " + std::to_string(rate));
    }
}

} // namespace

void
FaultConfig::validate() const
{
    checkRate(offline_rate, "offline_rate");
    checkRate(crash_rate, "crash_rate");
    checkRate(upload_failure_rate, "upload_failure_rate");
    checkRate(quorum_fraction, "quorum_fraction");
    if (max_upload_retries < 0)
        util::fatal("FaultConfig: max_upload_retries must be >= 0, got " +
                    std::to_string(max_upload_retries));
    if (backoff_base_s < 0.0 || backoff_cap_s < 0.0)
        util::fatal("FaultConfig: backoff times must be >= 0");
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Offline:
        return "offline";
      case FaultKind::Crash:
        return "crash";
      case FaultKind::UploadRetry:
        return "upload_retry";
      case FaultKind::UploadExhausted:
        return "upload_exhausted";
    }
    return "unknown";
}

FaultModel::FaultModel(const FaultConfig &config, std::uint64_t seed)
    : config_(config), seed_(seed)
{
    config_.validate();
}

FaultDraw
FaultModel::draw(int round, std::size_t client_id) const
{
    // Fresh chain Rng(seed') -> split(round) -> split(client): the
    // stream is a pure function of (seed, round, client), mirroring
    // FlSimulator::trainRng, so fault outcomes never depend on thread
    // count or on draws consumed by any other subsystem. The xor
    // constant keeps the root distinct from the training-stream root.
    util::Rng root(seed_ ^ 0x4641554c54ULL); // "FAULT"
    util::Rng round_stream = root.split(static_cast<std::uint64_t>(round));
    util::Rng rng = round_stream.split(client_id);

    // Fixed draw order within the stream: offline, crash, crash point,
    // upload attempts. Later draws are consumed even when an earlier
    // event makes them moot, so enabling one fault process never
    // re-randomizes another.
    FaultDraw out;
    out.offline = rng.bernoulli(config_.offline_rate);
    out.crash = rng.bernoulli(config_.crash_rate);
    // Crash point: never at the very start (some work always completed
    // before the crash is observable) nor the very end.
    out.crash_fraction = rng.uniform(0.05, 0.95);
    if (config_.upload_failure_rate > 0.0) {
        // Count consecutive failed attempts; bounded by the retry
        // budget plus one so the draw terminates even at rate 1.
        const int attempts = config_.max_upload_retries + 1;
        while (out.upload_failures < attempts &&
               rng.bernoulli(config_.upload_failure_rate)) {
            ++out.upload_failures;
        }
    }
    return out;
}

double
FaultModel::backoff(const FaultConfig &config, int retry)
{
    double interval = config.backoff_base_s;
    for (int i = 0; i < retry; ++i) {
        interval *= 2.0;
        if (interval >= config.backoff_cap_s)
            break;
    }
    return std::min(interval, config.backoff_cap_s);
}

} // namespace fault
} // namespace fedgpo
