/**
 * @file
 * Deterministic fault injection for the round pipeline.
 *
 * Real fleets lose participants: devices are offline when the server
 * tries to reach them, crash mid-training (app killed, battery died,
 * thermal shutdown), or fail transient uplink transfers on a flaky
 * wireless link. AutoFL (Kim & Wu, arXiv:2107.08147) models failed and
 * dropped participants as a first-class source of runtime variance;
 * this subsystem injects exactly those events into the simulator so the
 * global-parameter policies face the dropout regimes they would see in
 * production.
 *
 * Determinism follows the training-RNG discipline (see DESIGN.md,
 * "Runtime & threading model"): every per-(round, client) fault draw
 * comes from its own `Rng(seed') -> split(round) -> split(client)`
 * stream, a pure function of (seed, round, client). Fault outcomes are
 * therefore bit-identical for any worker-thread count and independent
 * of how many draws any other stream consumed.
 */

#ifndef FEDGPO_FAULT_FAULT_MODEL_H_
#define FEDGPO_FAULT_FAULT_MODEL_H_

#include <cstdint>

namespace fedgpo {
namespace fault {

/**
 * Fault-injection knobs. All rates default to zero, which makes the
 * model inert: with a default FaultConfig the round pipeline is
 * bit-identical to a build without the fault subsystem (asserted by
 * tests/round_golden_test.cc).
 */
struct FaultConfig
{
    /** P(device unreachable at selection time), per (round, client). */
    double offline_rate = 0.0;

    /** P(device crashes mid-training), per (round, client). */
    double crash_rate = 0.0;

    /** P(one upload attempt fails transiently), per attempt. */
    double upload_failure_rate = 0.0;

    /**
     * Upload retries after the first failed attempt before the server
     * gives up on the client (DropReason::UploadFailed).
     */
    int max_upload_retries = 3;

    /** First retry backoff (seconds); doubles per retry. */
    double backoff_base_s = 0.5;

    /** Cap on a single backoff interval (seconds). */
    double backoff_cap_s = 8.0;

    /**
     * Quorum gate: abort the round (global weights untouched) when the
     * kept updates fall below this fraction of the round's requested
     * cohort size K. 0 disables the gate.
     */
    double quorum_fraction = 0.0;

    /** True when any fault process can fire. */
    bool active() const
    {
        return offline_rate > 0.0 || crash_rate > 0.0 ||
               upload_failure_rate > 0.0;
    }

    /** Reject out-of-range knobs with util::fatal. */
    void validate() const;
};

/** Kind of an injected fault event (observer and trace vocabulary). */
enum class FaultKind
{
    Offline,         //!< device unreachable at selection
    Crash,           //!< device died mid-training
    UploadRetry,     //!< one transient upload failure (will retry)
    UploadExhausted, //!< retries exhausted; update lost
};

/** Short stable label ("offline", "crash", ...). */
const char *faultKindName(FaultKind kind);

/**
 * The fault outcome drawn for one (round, client) pair. All component
 * draws come from the pair's private stream in a fixed order, so one
 * outcome never perturbs another.
 */
struct FaultDraw
{
    bool offline = false;

    bool crash = false;

    /** Completed-work fraction at the crash point, in (0, 1). */
    double crash_fraction = 1.0;

    /**
     * Consecutive failed upload attempts before the first success,
     * counted without cap; the RecoveryPolicy clamps it against its
     * retry budget.
     */
    int upload_failures = 0;
};

/**
 * Seeded fault-event source. Stateless between draws: draw(round,
 * client) is a pure function, so it can be consulted from any thread
 * (the engine only consults it on the caller thread).
 */
class FaultModel
{
  public:
    /**
     * @param config Rates and retry policy knobs (validated here).
     * @param seed   Root simulator seed; the model derives its own
     *               stream family from it.
     */
    FaultModel(const FaultConfig &config, std::uint64_t seed);

    /** True when any fault process can fire. */
    bool active() const { return config_.active(); }

    const FaultConfig &config() const { return config_; }

    /** The fault outcome for one (round, client) pair. */
    FaultDraw draw(int round, std::size_t client_id) const;

    /**
     * Capped exponential backoff before retry `retry` (0-based):
     * min(backoff_base_s * 2^retry, backoff_cap_s).
     */
    static double backoff(const FaultConfig &config, int retry);

  private:
    FaultConfig config_;
    std::uint64_t seed_;
};

} // namespace fault
} // namespace fedgpo

#endif // FEDGPO_FAULT_FAULT_MODEL_H_
