#include "device/device_profile.h"

#include <cassert>

namespace fedgpo {
namespace device {

namespace {

// Table 3 (EC2 emulation) + Table 4 (measured phones). Idle power is a
// calibration constant in the range reported for screen-off idle phones.
const std::array<DeviceProfile, kNumCategories> kProfiles = {{
    {Category::High, "Mi8Pro", "m4.large", 153.6, 8.0,
     5.5, 2.8, 23, 7, 2.8, 0.7, 0.30},
    {Category::Mid, "GalaxyS10e", "t3a.medium", 80.0, 4.0,
     5.6, 2.4, 21, 9, 2.7, 0.7, 0.25},
    {Category::Low, "MotoXForce", "t2.small", 52.8, 2.0,
     3.6, 2.0, 15, 6, 1.9, 0.6, 0.20},
}};

} // namespace

std::string
categoryName(Category c)
{
    switch (c) {
      case Category::High: return "H";
      case Category::Mid:  return "M";
      case Category::Low:  return "L";
    }
    return "?";
}

const DeviceProfile &
profileFor(Category c)
{
    return kProfiles[static_cast<std::size_t>(c)];
}

std::vector<Category>
fleetComposition(std::size_t n)
{
    assert(n > 0);
    // 30/70/100 of 200 => 15% H, 35% M, 50% L.
    std::vector<Category> fleet(n);
    const std::size_t n_high = (n * 15 + 50) / 100;
    const std::size_t n_mid = (n * 35 + 50) / 100;
    for (std::size_t i = 0; i < n; ++i) {
        if (i < n_high)
            fleet[i] = Category::High;
        else if (i < n_high + n_mid)
            fleet[i] = Category::Mid;
        else
            fleet[i] = Category::Low;
    }
    return fleet;
}

} // namespace device
} // namespace fedgpo
