/**
 * @file
 * Utilization-based CPU/GPU power model (paper Eq. 2) and the V/F-step
 * power curves it draws from.
 *
 * The paper measures P_busy at each voltage/frequency step with a Monsoon
 * meter; here the curve is the standard DVFS cubic P = P_idle +
 * (P_peak - P_idle) * (f / f_max)^3, sampled at the tier's published
 * number of V/F steps (Table 4). Compute energy for an interval is
 * E = sum_f P_busy^f * t_busy^f + P_idle * t_idle, per processing unit.
 */

#ifndef FEDGPO_DEVICE_POWER_MODEL_H_
#define FEDGPO_DEVICE_POWER_MODEL_H_

#include <cstddef>

#include "device/device_profile.h"

namespace fedgpo {
namespace device {

/** Which processing unit a power query refers to. */
enum class Unit { Cpu, Gpu };

/**
 * Per-tier power curves and Eq. 2 energy accounting.
 */
class PowerModel
{
  public:
    /** Construct for a given tier. */
    explicit PowerModel(const DeviceProfile &profile);

    /** Number of V/F steps of the unit (Table 4). */
    int steps(Unit unit) const;

    /**
     * Normalized frequency of step s (s in [0, steps-1]), linear ladder
     * from f_min = f_max / steps up to f_max.
     */
    double stepFrequencyFraction(Unit unit, int step) const;

    /**
     * Busy power of the unit at V/F step `step` (W). Monotonic in step;
     * the top step dissipates the tier's published peak power.
     */
    double busyPower(Unit unit, int step) const;

    /** Device idle power (W). */
    double idlePower() const { return profile_.idle_w; }

    /**
     * Eq. 2 for one unit: energy over an interval split into busy time at
     * one step plus idle time.
     */
    double unitEnergy(Unit unit, int step, double t_busy,
                      double t_idle) const;

    /**
     * Total compute power while training: CPU and GPU both busy at their
     * top steps, derated by the training duty cycle of each unit
     * (on-device training is GPU-heavy with CPU feeding it).
     */
    double trainingPower() const;

    /** Eq. 2 summed over units for a training interval of t seconds. */
    double trainingEnergy(double t) const;

    /**
     * Power while a finished participant waits for the round's stragglers:
     * the FL runtime holds a wakelock and keeps the connection warm, so
     * the device sits well above deep idle. This is the "redundant energy
     * consumption" the paper's Fig. 5 shows adaptive parameters removing.
     */
    double waitPower() const;

    /** Eq. 4: idle energy for a device sitting out a round of t seconds. */
    double idleEnergy(double t) const { return profile_.idle_w * t; }

  private:
    const DeviceProfile &profile_;
};

} // namespace device
} // namespace fedgpo

#endif // FEDGPO_DEVICE_POWER_MODEL_H_
