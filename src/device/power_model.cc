#include "device/power_model.h"

#include <cassert>
#include <cmath>

namespace fedgpo {
namespace device {

namespace {

// Training duty cycles: on-device DNN training keeps the GPU nearly
// saturated with the CPU at a partial load preparing batches.
constexpr double kCpuTrainingDuty = 0.6;
constexpr double kGpuTrainingDuty = 0.95;

} // namespace

PowerModel::PowerModel(const DeviceProfile &profile)
    : profile_(profile)
{
}

int
PowerModel::steps(Unit unit) const
{
    return unit == Unit::Cpu ? profile_.cpu_vf_steps : profile_.gpu_vf_steps;
}

double
PowerModel::stepFrequencyFraction(Unit unit, int step) const
{
    const int n = steps(unit);
    assert(step >= 0 && step < n);
    return static_cast<double>(step + 1) / static_cast<double>(n);
}

double
PowerModel::busyPower(Unit unit, int step) const
{
    const double peak =
        unit == Unit::Cpu ? profile_.cpu_peak_w : profile_.gpu_peak_w;
    // Idle floor split between the two units proportionally to peak.
    const double floor = profile_.idle_w * peak /
                         (profile_.cpu_peak_w + profile_.gpu_peak_w);
    const double f = stepFrequencyFraction(unit, step);
    return floor + (peak - floor) * f * f * f;
}

double
PowerModel::unitEnergy(Unit unit, int step, double t_busy,
                       double t_idle) const
{
    assert(t_busy >= 0.0 && t_idle >= 0.0);
    const double peak =
        unit == Unit::Cpu ? profile_.cpu_peak_w : profile_.gpu_peak_w;
    const double floor = profile_.idle_w * peak /
                         (profile_.cpu_peak_w + profile_.gpu_peak_w);
    return busyPower(unit, step) * t_busy + floor * t_idle;
}

double
PowerModel::trainingPower() const
{
    const int cpu_top = profile_.cpu_vf_steps - 1;
    const int gpu_top = profile_.gpu_vf_steps - 1;
    return kCpuTrainingDuty * busyPower(Unit::Cpu, cpu_top) +
           kGpuTrainingDuty * busyPower(Unit::Gpu, gpu_top);
}

double
PowerModel::trainingEnergy(double t) const
{
    return trainingPower() * t;
}

double
PowerModel::waitPower() const
{
    // Wakelock + warm radio + resident runtime: a fixed fraction of the
    // training power above deep idle.
    return profile_.idle_w + 0.5 * (trainingPower() - profile_.idle_w);
}

} // namespace device
} // namespace fedgpo
