/**
 * @file
 * Device performance categories and their profiles (paper Tables 3 and 4).
 *
 * The paper emulates three smartphone tiers with EC2 instances of
 * equivalent GFLOPS/RAM and calibrates power with Monsoon measurements of
 * three real phones. Both tables are encoded here verbatim; the rest of
 * the device model derives per-round time and energy from these constants.
 */

#ifndef FEDGPO_DEVICE_DEVICE_PROFILE_H_
#define FEDGPO_DEVICE_DEVICE_PROFILE_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace fedgpo {
namespace device {

/** Smartphone performance tier (paper: H / M / L). */
enum class Category { High = 0, Mid = 1, Low = 2 };

/** Number of tiers. */
inline constexpr std::size_t kNumCategories = 3;

/** All tiers, for iteration. */
inline constexpr Category kAllCategories[] = {Category::High, Category::Mid,
                                              Category::Low};

/** One-letter tier label as the paper prints it. */
std::string categoryName(Category c);

/**
 * Static per-tier hardware profile (Tables 3 and 4 merged).
 */
struct DeviceProfile
{
    Category category;
    const char *phone;       //!< measured phone (Table 4)
    const char *ec2;         //!< emulation instance (Table 3)
    double gflops;           //!< theoretical GFLOPS (Table 3)
    double ram_gb;           //!< RAM capacity (Table 3)
    double cpu_peak_w;       //!< CPU peak power (Table 4)
    double gpu_peak_w;       //!< GPU peak power (Table 4)
    int cpu_vf_steps;        //!< CPU voltage/frequency steps (Table 4)
    int gpu_vf_steps;        //!< GPU voltage/frequency steps (Table 4)
    double cpu_max_ghz;      //!< CPU max clock (Table 4)
    double gpu_max_ghz;      //!< GPU max clock (Table 4)
    double idle_w;           //!< device idle power (calibration constant)
};

/** Immutable profile for a tier. */
const DeviceProfile &profileFor(Category c);

/**
 * Paper fleet composition: of 200 devices, 30 are H, 70 are M, 100 are L
 * (from the in-the-field performance distribution of [70]). Returns the
 * tier of each device index for a fleet of `n` devices, preserving the
 * 15/35/50 percent mix at any scale.
 */
std::vector<Category> fleetComposition(std::size_t n);

/** Aggregation server profile (c5d.24xlarge, Table 3 text). */
struct ServerProfile
{
    double gflops = 448.0;
    double ram_gb = 32.0;
};

} // namespace device
} // namespace fedgpo

#endif // FEDGPO_DEVICE_DEVICE_PROFILE_H_
