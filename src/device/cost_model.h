/**
 * @file
 * Per-client round cost model: wall-clock time and energy of one local
 * training pass plus the model exchange, combining the tier profile
 * (Tables 3-4), the power model (Eq. 2), the network model (Eq. 3), and
 * the interference state.
 *
 * Calibration. The NN library trains deliberately tiny models so that
 * real gradient descent over hundreds of FL rounds fits the host budget;
 * the *simulated* device cost must nevertheless correspond to the paper's
 * full-size workloads (28x28 MNIST CNN, full Shakespeare LSTM, real
 * MobileNet). Each workload therefore carries a flops/bytes scale factor
 * mapping the tiny proxy model onto its full-size counterpart's compute
 * and payload. The scale factors change absolute seconds/Joules only;
 * every comparison the benches report is a ratio, which the factors
 * cancel out of.
 */

#ifndef FEDGPO_DEVICE_COST_MODEL_H_
#define FEDGPO_DEVICE_COST_MODEL_H_

#include <cstdint>

#include "device/device_profile.h"
#include "device/interference.h"
#include "device/network_model.h"
#include "models/zoo.h"

namespace fedgpo {
namespace device {

/**
 * Workload-specific calibration constants.
 */
struct WorkloadCost
{
    double flops_scale;       //!< proxy-model FLOPs -> full-model FLOPs
    double bytes_scale;       //!< proxy payload -> full payload
    double act_mb_per_sample; //!< activation memory per in-flight sample
    double mem_intensity;     //!< 0..1, extra sensitivity to memory
                              //!< contention (RC layers are high)
};

/** Calibrated cost constants for a paper workload. */
const WorkloadCost &costFor(models::Workload w);

/**
 * Description of the local work one client performs in one round.
 */
struct LocalWorkSpec
{
    std::uint64_t train_flops_per_sample = 0; //!< proxy model, fwd+bwd
    std::size_t samples = 0;                  //!< local shard size
    int batch = 8;                            //!< B
    int epochs = 1;                           //!< E
    std::size_t param_bytes = 0;              //!< proxy payload (one way)
    /**
     * Uplink payload in proxy bytes after update encoding; 0 (the
     * default) means an uncompressed upload of param_bytes. The download
     * is always the full model (the server ships raw weights).
     */
    std::uint64_t upload_bytes = 0;
};

/**
 * Cost of a client's participation in one round.
 */
struct RoundCost
{
    double t_comp = 0.0;  //!< local training time (s)
    double t_comm = 0.0;  //!< download + upload time (s)
    double t_comm_down = 0.0; //!< global-model download time (s)
    double t_comm_up = 0.0;   //!< encoded-update upload time (s)
    double t_round = 0.0; //!< t_comp + t_comm
    double e_comp = 0.0;  //!< Eq. 2 energy (J)
    double e_comm = 0.0;  //!< Eq. 3 energy (J)
    double e_wait = 0.0;  //!< straggler-wait energy (set by the simulator
                          //!< once the round's gating time is known)
    double e_total = 0.0; //!< participant energy, Eq. 5 first case
};

/**
 * Effective sustained training throughput (FLOP/s) of a device given the
 * batch size and interference — the core of the straggler model:
 * small batches underutilize the hardware, co-runners steal cycles, and
 * memory pressure (large B, or RC-heavy models on small-RAM tiers) causes
 * superlinear slowdown.
 */
double effectiveFlops(const DeviceProfile &dev, const WorkloadCost &cost,
                      int batch, std::size_t param_bytes,
                      const InterferenceState &interference);

/**
 * Full per-round cost of a participating client (Eq. 2 + Eq. 3).
 */
RoundCost clientRoundCost(const DeviceProfile &dev, const WorkloadCost &cost,
                          const LocalWorkSpec &work,
                          const InterferenceState &interference,
                          const NetworkState &network);

/**
 * Time and energy of one transmission attempt.
 */
struct TxCost
{
    double time = 0.0;   //!< airtime (s)
    double energy = 0.0; //!< radio energy (J)
};

/**
 * Cost of one one-way upload of `payload_bytes` proxy bytes under the
 * client's current network state — Eq. 3 applied to the (possibly
 * codec-encoded) upload payload alone. The caller supplies the actual
 * payload; an uncompressed upload passes the model's param_bytes. This
 * is what a failed upload burns, and what every retry re-burns; the
 * RecoveryPolicy charges it per retransmission.
 */
TxCost uploadCost(const WorkloadCost &cost, std::size_t payload_bytes,
                  const NetworkState &network);

} // namespace device
} // namespace fedgpo

#endif // FEDGPO_DEVICE_COST_MODEL_H_
