/**
 * @file
 * Wireless network model: Gaussian bandwidth variability and
 * signal-strength-dependent transmission power (paper Eq. 3 and Section
 * 4.2 "Runtime variance").
 *
 * The paper generates random bandwidth following a Gaussian distribution
 * (citing [12, 30]) and notes that transmission latency and energy grow
 * exponentially at weak signal strength. Both behaviours are implemented
 * here: bandwidth is drawn per device per round from N(mean, sd) (clamped
 * to a physical range), signal strength is derived from bandwidth, and
 * P_TX rises exponentially as the signal weakens.
 */

#ifndef FEDGPO_DEVICE_NETWORK_MODEL_H_
#define FEDGPO_DEVICE_NETWORK_MODEL_H_

#include "util/rng.h"

namespace fedgpo {
namespace device {

/** Per-device per-round network condition. */
struct NetworkState
{
    double bandwidth_mbps = 80.0;  //!< effective link bandwidth
    double signal = 0.8;           //!< normalized signal strength [0, 1]
};

/** Threshold below which the paper's S_Network state is "bad" (Table 1). */
inline constexpr double kBadNetworkMbps = 40.0;

/**
 * Stochastic bandwidth process.
 */
class NetworkModel
{
  public:
    /**
     * @param unstable True for the paper's "unstable network" scenario
     *                 (lower mean, much higher variance).
     */
    explicit NetworkModel(bool unstable);

    /** Draw the network condition for one device for one round. */
    NetworkState sample(util::Rng &rng) const;

    /** Mean bandwidth of the configured regime (Mbps). */
    double meanBandwidth() const { return mean_; }

    /**
     * Transmission power at a given signal strength (Eq. 3's P_TX^S):
     * P_TX = base * exp(k * (1 - S)); weak signal costs exponentially
     * more energy per second of airtime.
     */
    static double txPower(double signal);

    /**
     * Transmission time for a payload (Eq. 3's t_TX).
     * @param bytes          Payload size.
     * @param bandwidth_mbps Link bandwidth.
     */
    static double txTime(double bytes, double bandwidth_mbps);

  private:
    bool unstable_;
    double mean_;
    double sd_;
};

} // namespace device
} // namespace fedgpo

#endif // FEDGPO_DEVICE_NETWORK_MODEL_H_
