#include "device/network_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fedgpo {
namespace device {

namespace {

constexpr double kStableMean = 85.0;
constexpr double kStableSd = 12.0;
constexpr double kUnstableMean = 45.0;
constexpr double kUnstableSd = 30.0;
constexpr double kMinMbps = 3.0;
constexpr double kMaxMbps = 150.0;

constexpr double kTxBaseW = 0.8;   //!< TX power at full signal
constexpr double kTxExpK = 1.8;    //!< exponential weak-signal penalty

} // namespace

NetworkModel::NetworkModel(bool unstable)
    : unstable_(unstable),
      mean_(unstable ? kUnstableMean : kStableMean),
      sd_(unstable ? kUnstableSd : kStableSd)
{
}

NetworkState
NetworkModel::sample(util::Rng &rng) const
{
    NetworkState state;
    state.bandwidth_mbps =
        std::clamp(rng.gaussian(mean_, sd_), kMinMbps, kMaxMbps);
    // Signal strength tracks bandwidth: a saturated link implies strong
    // signal, a starved one implies weak signal (or congestion, which
    // costs similar retransmission energy).
    state.signal = std::clamp(state.bandwidth_mbps / 100.0, 0.05, 1.0);
    return state;
}

double
NetworkModel::txPower(double signal)
{
    assert(signal > 0.0 && signal <= 1.0);
    return kTxBaseW * std::exp(kTxExpK * (1.0 - signal));
}

double
NetworkModel::txTime(double bytes, double bandwidth_mbps)
{
    assert(bytes >= 0.0 && bandwidth_mbps > 0.0);
    return bytes * 8.0 / (bandwidth_mbps * 1e6);
}

} // namespace device
} // namespace fedgpo
