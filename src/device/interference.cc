#include "device/interference.h"

#include <algorithm>

namespace fedgpo {
namespace device {

namespace {

// Web-browsing-like load envelope (from the mobile-interference
// characterizations the paper cites: bursty CPU in the 20-90% range,
// resident memory 10-70%).
constexpr double kCpuLo = 0.2, kCpuHi = 0.9;
constexpr double kMemLo = 0.1, kMemHi = 0.7;
constexpr double kAr1 = 0.7;           //!< load persistence across rounds
constexpr double kEpisodeFlip = 0.15;  //!< chance the on/off state flips

} // namespace

InterferenceProcess::InterferenceProcess(bool enabled, double prob_active)
    : enabled_(enabled), prob_active_(prob_active)
{
}

InterferenceState
InterferenceProcess::step(util::Rng &rng)
{
    if (!enabled_) {
        state_ = InterferenceState{};
        return state_;
    }
    // Sticky on/off episodes: a browsing session lasts several rounds.
    if (first_) {
        episode_active_ = rng.bernoulli(prob_active_);
        first_ = false;
    } else if (rng.bernoulli(kEpisodeFlip))
        episode_active_ = rng.bernoulli(prob_active_);
    if (!episode_active_) {
        state_ = InterferenceState{};
        return state_;
    }
    auto evolve = [&](double prev, double lo, double hi) {
        const double target = rng.uniform(lo, hi);
        double next = prev <= 0.0 ? target : kAr1 * prev +
                                                 (1.0 - kAr1) * target;
        return std::clamp(next, 0.0, 1.0);
    };
    state_.co_cpu = evolve(state_.co_cpu, kCpuLo, kCpuHi);
    state_.co_mem = evolve(state_.co_mem, kMemLo, kMemHi);
    return state_;
}

} // namespace device
} // namespace fedgpo
