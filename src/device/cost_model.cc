#include "device/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "device/power_model.h"

namespace fedgpo {
namespace device {

namespace {

// Fraction of theoretical peak GFLOPS that on-device training sustains.
constexpr double kTrainUtil = 0.15;
// Batch-size half-saturation point of hardware utilization.
constexpr double kBatchHalf = 3.0;
// Sensitivity of compute throughput to co-runner CPU / memory load.
// Weaker tiers (fewer cores, smaller caches, less RAM) lose a larger
// fraction of their throughput to the same co-runner (paper Section 2.2:
// "the impact of interference depends on the capabilities of each
// device... it exacerbates the inter-device performance gaps").
constexpr double kCpuInterf = 0.35;
constexpr double kMemInterf = 0.2;
// Fraction of device RAM available to the FL runtime.
constexpr double kRamFrac = 0.12;
// Model working set: weights + gradients + optimizer state.
constexpr double kModelMemCopies = 3.0;

const WorkloadCost kCnnCost = {1000.0, 400.0, 3.0, 0.25};
const WorkloadCost kLstmCost = {800.0, 250.0, 9.0, 0.9};
const WorkloadCost kMobileNetCost = {700.0, 370.0, 5.0, 0.45};

} // namespace

const WorkloadCost &
costFor(models::Workload w)
{
    switch (w) {
      case models::Workload::CnnMnist:          return kCnnCost;
      case models::Workload::LstmShakespeare:   return kLstmCost;
      case models::Workload::MobileNetImageNet: return kMobileNetCost;
    }
    return kCnnCost;
}

double
effectiveFlops(const DeviceProfile &dev, const WorkloadCost &cost,
               int batch, std::size_t param_bytes,
               const InterferenceState &interference)
{
    assert(batch >= 1);
    const double b = static_cast<double>(batch);
    const double batch_util = b / (b + kBatchHalf);
    // Tier sensitivity: a device with half the RAM (proxy for overall
    // headroom) loses ~sqrt(2) times more throughput to a co-runner.
    const double tier_factor = std::sqrt(8.0 / dev.ram_gb);
    const double cpu_share = std::max(
        0.25, 1.0 - kCpuInterf * tier_factor * interference.co_cpu);
    const double mem_share = std::max(
        0.35, 1.0 - kMemInterf * tier_factor * (0.5 + cost.mem_intensity) *
                        interference.co_mem);

    // Memory pressure: working set vs RAM available to FL.
    const double model_mb = static_cast<double>(param_bytes) *
                            cost.bytes_scale * kModelMemCopies / 1e6;
    const double ws_mb = model_mb + b * cost.act_mb_per_sample *
                                        (1.0 + cost.mem_intensity);
    const double avail_mb = dev.ram_gb * 1024.0 * kRamFrac *
                            (1.0 - 0.5 * interference.co_mem);
    double mem_penalty = 1.0;
    if (ws_mb > avail_mb)
        mem_penalty = std::pow(ws_mb / avail_mb, 1.5);

    const double eff = dev.gflops * 1e9 * kTrainUtil * batch_util *
                       cpu_share * mem_share / mem_penalty;
    return std::max(eff, 1e6);  // never fully stalls
}

RoundCost
clientRoundCost(const DeviceProfile &dev, const WorkloadCost &cost,
                const LocalWorkSpec &work,
                const InterferenceState &interference,
                const NetworkState &network)
{
    assert(work.samples > 0 && work.epochs >= 1 && work.batch >= 1);
    RoundCost out;

    const double flops = static_cast<double>(work.train_flops_per_sample) *
                         cost.flops_scale *
                         static_cast<double>(work.samples) *
                         static_cast<double>(work.epochs);
    out.t_comp = flops / effectiveFlops(dev, cost, work.batch,
                                        work.param_bytes, interference);

    // Download of the global model plus upload of the (possibly
    // codec-encoded) update. The two directions are modeled separately;
    // with an uncompressed upload (upload_bytes == 0 or == param_bytes)
    // the sum is bit-identical to the former single 2x-payload formula,
    // because txTime is linear and doubling is exact in floating point.
    const double down_bytes =
        static_cast<double>(work.param_bytes) * cost.bytes_scale;
    const std::uint64_t up_payload =
        work.upload_bytes != 0
            ? work.upload_bytes
            : static_cast<std::uint64_t>(work.param_bytes);
    const double up_bytes =
        static_cast<double>(up_payload) * cost.bytes_scale;
    out.t_comm_down =
        NetworkModel::txTime(down_bytes, network.bandwidth_mbps);
    out.t_comm_up = NetworkModel::txTime(up_bytes, network.bandwidth_mbps);
    out.t_comm = out.t_comm_down + out.t_comm_up;
    out.t_round = out.t_comp + out.t_comm;

    PowerModel power(dev);
    out.e_comp = power.trainingPower() * out.t_comp;
    out.e_comm = NetworkModel::txPower(network.signal) * out.t_comm;
    out.e_total = out.e_comp + out.e_comm;
    return out;
}

TxCost
uploadCost(const WorkloadCost &cost, std::size_t payload_bytes,
           const NetworkState &network)
{
    TxCost out;
    const double bytes =
        static_cast<double>(payload_bytes) * cost.bytes_scale;
    out.time = NetworkModel::txTime(bytes, network.bandwidth_mbps);
    out.energy = NetworkModel::txPower(network.signal) * out.time;
    return out;
}

} // namespace device
} // namespace fedgpo
