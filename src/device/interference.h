/**
 * @file
 * On-device interference process: a synthetic co-running application with
 * the CPU/memory footprint of mobile web browsing (paper Section 4.2).
 *
 * The paper runs a synthetic co-runner on a random subset of devices; its
 * load is persistent across rounds the way a user's browsing session is,
 * so the process here is an AR(1) random walk gated by an on/off state
 * with sticky transitions.
 */

#ifndef FEDGPO_DEVICE_INTERFERENCE_H_
#define FEDGPO_DEVICE_INTERFERENCE_H_

#include "util/rng.h"

namespace fedgpo {
namespace device {

/** Co-running application load visible to the FL runtime. */
struct InterferenceState
{
    double co_cpu = 0.0;  //!< co-runner CPU utilization [0, 1]
    double co_mem = 0.0;  //!< co-runner memory usage fraction [0, 1]

    bool active() const { return co_cpu > 0.0 || co_mem > 0.0; }
};

/**
 * Per-device stochastic interference generator.
 */
class InterferenceProcess
{
  public:
    /**
     * @param enabled     False disables interference entirely (the "no
     *                    runtime variance" scenario).
     * @param prob_active Probability a device has a co-runner in a given
     *                    activity episode (paper: random subset of devices).
     */
    explicit InterferenceProcess(bool enabled, double prob_active = 0.5);

    /** Advance one round and return the new state. */
    InterferenceState step(util::Rng &rng);

    /** Last state returned by step(). */
    const InterferenceState &state() const { return state_; }

  private:
    bool enabled_;
    double prob_active_;
    bool episode_active_ = false;
    bool first_ = true;
    InterferenceState state_;
};

} // namespace device
} // namespace fedgpo

#endif // FEDGPO_DEVICE_INTERFERENCE_H_
