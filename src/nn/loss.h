/**
 * @file
 * Softmax cross-entropy loss for classification heads.
 */

#ifndef FEDGPO_NN_LOSS_H_
#define FEDGPO_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fedgpo {
namespace nn {

/**
 * Numerically stable softmax + cross-entropy over integer class labels.
 */
class SoftmaxCrossEntropy
{
  public:
    /**
     * Compute mean loss over the batch.
     *
     * @param logits [n, classes]
     * @param labels n class indices in [0, classes)
     * @return Mean negative log-likelihood.
     */
    double forward(const tensor::Tensor &logits,
                   const std::vector<int> &labels);

    /**
     * Gradient of the mean loss w.r.t. the logits of the preceding
     * forward() call: (softmax - onehot) / n.
     */
    const tensor::Tensor &backward();

    /** Softmax probabilities from the last forward() call ([n, classes]). */
    const tensor::Tensor &probs() const { return probs_; }

    /** Count of argmax-correct predictions in the last forward() batch. */
    std::size_t correct() const { return correct_; }

  private:
    tensor::Tensor probs_;
    tensor::Tensor grad_;
    std::vector<int> labels_;
    std::size_t correct_ = 0;
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_LOSS_H_
