/**
 * @file
 * 2-d max pooling over NCHW batches.
 */

#ifndef FEDGPO_NN_POOL2D_H_
#define FEDGPO_NN_POOL2D_H_

#include "nn/layer.h"

namespace fedgpo {
namespace nn {

/**
 * Non-overlapping max pooling (kernel == stride).
 *
 * Input  [n, c, h, w] with h, w divisible by k.
 * Output [n, c, h/k, w/k]
 */
class MaxPool2D : public Layer
{
  public:
    /**
     * @param c    Channel count.
     * @param k    Pool window and stride.
     * @param h, w Input spatial extents (must be divisible by k).
     */
    MaxPool2D(std::size_t c, std::size_t k, std::size_t h, std::size_t w);

    std::string name() const override;
    LayerKind kind() const override { return LayerKind::Pool; }
    const Tensor &forward(const Tensor &in, bool train) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::uint64_t flopsPerSample() const override;

    std::size_t outHeight() const { return oh_; }
    std::size_t outWidth() const { return ow_; }

  private:
    std::size_t c_, k_, h_, w_, oh_, ow_;
    Tensor out_buf_;
    Tensor grad_in_;
    std::vector<std::size_t> argmax_;  //!< flat input index per output elem
    std::size_t cached_n_ = 0;
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_POOL2D_H_
