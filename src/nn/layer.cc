#include "nn/layer.h"

namespace fedgpo {
namespace nn {

void
Layer::zeroGrad()
{
    for (Tensor *g : grads())
        g->zero();
}

std::size_t
Layer::paramCount()
{
    std::size_t n = 0;
    for (Tensor *p : params())
        n += p->numel();
    return n;
}

} // namespace nn
} // namespace fedgpo
