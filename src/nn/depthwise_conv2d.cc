#include "nn/depthwise_conv2d.h"

#include <cassert>

#include "nn/init.h"
#include "tensor/ops.h"

namespace fedgpo {
namespace nn {

DepthwiseConv2D::DepthwiseConv2D(std::size_t c, std::size_t k,
                                 std::size_t h, std::size_t w,
                                 std::size_t stride, std::size_t pad,
                                 util::Rng &rng)
    : c_(c), k_(k), in_h_(h), in_w_(w), stride_(stride), pad_(pad),
      oh_(tensor::convOutExtent(h, k, stride, pad)),
      ow_(tensor::convOutExtent(w, k, stride, pad)),
      weights_({c, k, k}), b_({c}), dw_({c, k, k}), db_({c})
{
    heNormal(weights_, k * k, rng);
}

std::string
DepthwiseConv2D::name() const
{
    return "dwconv" + std::to_string(k_) + "x" + std::to_string(k_) + "(" +
           std::to_string(c_) + ")";
}

const Tensor &
DepthwiseConv2D::forward(const Tensor &in, bool train)
{
    (void)train;
    assert(in.ndim() == 4);
    assert(in.dim(1) == c_ && in.dim(2) == in_h_ && in.dim(3) == in_w_);
    const std::size_t n = in.dim(0);
    cached_in_ = &in;
    if (out_buf_.ndim() != 4 || out_buf_.dim(0) != n)
        out_buf_ = Tensor({n, c_, oh_, ow_});
    const float *pi = in.data();
    const float *pw = weights_.data();
    const float *pb = b_.data();
    float *po = out_buf_.data();
    for (std::size_t img = 0; img < n; ++img) {
        for (std::size_t ch = 0; ch < c_; ++ch) {
            const float *x = pi + (img * c_ + ch) * in_h_ * in_w_;
            const float *f = pw + ch * k_ * k_;
            float *y = po + (img * c_ + ch) * oh_ * ow_;
            for (std::size_t oy = 0; oy < oh_; ++oy) {
                for (std::size_t ox = 0; ox < ow_; ++ox) {
                    float acc = pb[ch];
                    for (std::size_t ky = 0; ky < k_; ++ky) {
                        const long iy =
                            static_cast<long>(oy * stride_ + ky) -
                            static_cast<long>(pad_);
                        if (iy < 0 || iy >= static_cast<long>(in_h_))
                            continue;
                        for (std::size_t kx = 0; kx < k_; ++kx) {
                            const long ix =
                                static_cast<long>(ox * stride_ + kx) -
                                static_cast<long>(pad_);
                            if (ix < 0 || ix >= static_cast<long>(in_w_))
                                continue;
                            acc += f[ky * k_ + kx] * x[iy * in_w_ + ix];
                        }
                    }
                    y[oy * ow_ + ox] = acc;
                }
            }
        }
    }
    return out_buf_;
}

const Tensor &
DepthwiseConv2D::backward(const Tensor &grad_out)
{
    assert(cached_in_ != nullptr);
    const Tensor &in = *cached_in_;
    const std::size_t n = in.dim(0);
    assert(grad_out.ndim() == 4 && grad_out.dim(0) == n);
    assert(grad_out.dim(1) == c_);
    if (grad_in_.ndim() != 4 || grad_in_.dim(0) != n)
        grad_in_ = Tensor({n, c_, in_h_, in_w_});
    grad_in_.zero();
    const float *pi = in.data();
    const float *pw = weights_.data();
    const float *pg = grad_out.data();
    float *pdw = dw_.data();
    float *pdb = db_.data();
    float *pdi = grad_in_.data();
    for (std::size_t img = 0; img < n; ++img) {
        for (std::size_t ch = 0; ch < c_; ++ch) {
            const float *x = pi + (img * c_ + ch) * in_h_ * in_w_;
            const float *f = pw + ch * k_ * k_;
            const float *dy = pg + (img * c_ + ch) * oh_ * ow_;
            float *df = pdw + ch * k_ * k_;
            float *dx = pdi + (img * c_ + ch) * in_h_ * in_w_;
            for (std::size_t oy = 0; oy < oh_; ++oy) {
                for (std::size_t ox = 0; ox < ow_; ++ox) {
                    // No zero-skip here: g == 0 must still multiply the
                    // inputs so 0 * Inf / 0 * NaN propagates NaN into the
                    // gradients instead of silently masking divergence.
                    const float g = dy[oy * ow_ + ox];
                    pdb[ch] += g;
                    for (std::size_t ky = 0; ky < k_; ++ky) {
                        const long iy =
                            static_cast<long>(oy * stride_ + ky) -
                            static_cast<long>(pad_);
                        if (iy < 0 || iy >= static_cast<long>(in_h_))
                            continue;
                        for (std::size_t kx = 0; kx < k_; ++kx) {
                            const long ix =
                                static_cast<long>(ox * stride_ + kx) -
                                static_cast<long>(pad_);
                            if (ix < 0 || ix >= static_cast<long>(in_w_))
                                continue;
                            df[ky * k_ + kx] += g * x[iy * in_w_ + ix];
                            dx[iy * in_w_ + ix] += g * f[ky * k_ + kx];
                        }
                    }
                }
            }
        }
    }
    return grad_in_;
}

std::uint64_t
DepthwiseConv2D::flopsPerSample() const
{
    const std::uint64_t macs =
        static_cast<std::uint64_t>(oh_) * ow_ * c_ * k_ * k_;
    return 2ULL * macs + static_cast<std::uint64_t>(oh_) * ow_ * c_;
}

} // namespace nn
} // namespace fedgpo
