#include "nn/loss.h"

#include <cassert>
#include <cmath>

namespace fedgpo {
namespace nn {

double
SoftmaxCrossEntropy::forward(const tensor::Tensor &logits,
                             const std::vector<int> &labels)
{
    assert(logits.ndim() == 2);
    const std::size_t n = logits.dim(0);
    const std::size_t c = logits.dim(1);
    assert(labels.size() == n);
    labels_ = labels;
    if (probs_.shape() != logits.shape())
        probs_ = tensor::Tensor(logits.shape());
    const float *pl = logits.data();
    float *pp = probs_.data();
    double loss = 0.0;
    correct_ = 0;
    for (std::size_t r = 0; r < n; ++r) {
        const float *row = pl + r * c;
        float *prow = pp + r * c;
        float max_v = row[0];
        std::size_t argmax = 0;
        for (std::size_t j = 1; j < c; ++j) {
            if (row[j] > max_v) {
                max_v = row[j];
                argmax = j;
            }
        }
        double denom = 0.0;
        for (std::size_t j = 0; j < c; ++j) {
            prow[j] = std::exp(row[j] - max_v);
            denom += prow[j];
        }
        for (std::size_t j = 0; j < c; ++j)
            prow[j] = static_cast<float>(prow[j] / denom);
        const int y = labels[r];
        assert(y >= 0 && static_cast<std::size_t>(y) < c);
        loss -= std::log(std::max(1e-12, static_cast<double>(prow[y])));
        if (argmax == static_cast<std::size_t>(y))
            ++correct_;
    }
    return loss / static_cast<double>(n);
}

const tensor::Tensor &
SoftmaxCrossEntropy::backward()
{
    const std::size_t n = probs_.dim(0);
    const std::size_t c = probs_.dim(1);
    if (grad_.shape() != probs_.shape())
        grad_ = tensor::Tensor(probs_.shape());
    const float *pp = probs_.data();
    float *pg = grad_.data();
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t j = 0; j < c; ++j)
            pg[r * c + j] = pp[r * c + j] * inv_n;
        pg[r * c + static_cast<std::size_t>(labels_[r])] -= inv_n;
    }
    return grad_;
}

} // namespace nn
} // namespace fedgpo
