#include "nn/lstm.h"

#include <cassert>
#include <cmath>

#include "nn/init.h"
#include "tensor/ops.h"

namespace fedgpo {
namespace nn {

namespace {

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

LSTM::LSTM(std::size_t in, std::size_t hidden, std::size_t steps,
           util::Rng &rng)
    : in_(in), hidden_(hidden), steps_(steps),
      wx_({in, 4 * hidden}), wh_({hidden, 4 * hidden}), b_({4 * hidden}),
      dwx_({in, 4 * hidden}), dwh_({hidden, 4 * hidden}), db_({4 * hidden})
{
    xavierUniform(wx_, in, 4 * hidden, rng);
    xavierUniform(wh_, hidden, 4 * hidden, rng);
    // Forget-gate bias at 1 keeps early gradients flowing.
    for (std::size_t j = hidden_; j < 2 * hidden_; ++j)
        b_[j] = 1.0f;
}

std::string
LSTM::name() const
{
    return "lstm(" + std::to_string(in_) + "->" + std::to_string(hidden_) +
           ",T=" + std::to_string(steps_) + ")";
}

const Tensor &
LSTM::forward(const Tensor &in, bool train)
{
    (void)train;
    assert(in.ndim() == 3);
    assert(in.dim(1) == steps_ && in.dim(2) == in_);
    const std::size_t n = in.dim(0);
    cached_n_ = n;
    const std::size_t h4 = 4 * hidden_;

    if (alloc_n_ != n) {
        // First call, or the batch shape changed: (re)build the step
        // caches. Subsequent same-shape calls reuse every buffer.
        xs_.assign(steps_, Tensor({n, in_}));
        hs_.assign(steps_ + 1, Tensor({n, hidden_}));
        cs_.assign(steps_ + 1, Tensor({n, hidden_}));
        gates_.assign(steps_, Tensor({n, h4}));
        tanh_c_.assign(steps_, Tensor({n, hidden_}));
        alloc_n_ = n;
    } else {
        // Only the initial states carry values between calls; everything
        // else is fully overwritten below.
        hs_[0].zero();
        cs_[0].zero();
    }

    for (std::size_t t = 0; t < steps_; ++t) {
        // Slice x_t out of the [n, T, in] batch.
        for (std::size_t r = 0; r < n; ++r) {
            const float *src = in.data() + (r * steps_ + t) * in_;
            float *dst = xs_[t].data() + r * in_;
            std::copy(src, src + in_, dst);
        }
        tensor::matmul(xs_[t], wx_, pre_x_);
        tensor::matmul(hs_[t], wh_, pre_h_);
        float *pg = gates_[t].data();
        const float *px = pre_x_.data();
        const float *ph = pre_h_.data();
        const float *pb = b_.data();
        const float *pc_prev = cs_[t].data();
        float *pc = cs_[t + 1].data();
        float *phn = hs_[t + 1].data();
        float *ptc = tanh_c_[t].data();
        for (std::size_t r = 0; r < n; ++r) {
            const std::size_t row = r * h4;
            for (std::size_t j = 0; j < h4; ++j) {
                float pre = px[row + j] + ph[row + j] + pb[j];
                // Gate order i, f, g, o along the packed axis.
                if (j >= 2 * hidden_ && j < 3 * hidden_)
                    pg[row + j] = std::tanh(pre);
                else
                    pg[row + j] = sigmoid(pre);
            }
            const float *gi = pg + row;
            const float *gf = gi + hidden_;
            const float *gg = gf + hidden_;
            const float *go = gg + hidden_;
            for (std::size_t j = 0; j < hidden_; ++j) {
                float c = gf[j] * pc_prev[r * hidden_ + j] + gi[j] * gg[j];
                pc[r * hidden_ + j] = c;
                float tc = std::tanh(c);
                ptc[r * hidden_ + j] = tc;
                phn[r * hidden_ + j] = go[j] * tc;
            }
        }
    }
    out_buf_ = hs_[steps_];
    return out_buf_;
}

const Tensor &
LSTM::backward(const Tensor &grad_out)
{
    const std::size_t n = cached_n_;
    assert(n > 0);
    assert(grad_out.ndim() == 2 && grad_out.dim(0) == n);
    assert(grad_out.dim(1) == hidden_);
    const std::size_t h4 = 4 * hidden_;

    if (grad_in_.ndim() != 3 || grad_in_.dim(0) != n)
        grad_in_ = Tensor({n, steps_, in_});
    grad_in_.zero();

    if (dh_.ndim() != 2 || dh_.dim(0) != n) {
        dh_ = Tensor({n, hidden_});
        dc_ = Tensor({n, hidden_});
        dpre_ = Tensor({n, h4});
    } else {
        dc_.zero();
        // dpre_ is fully overwritten each timestep before it is read.
    }
    std::copy(grad_out.data(), grad_out.data() + n * hidden_, dh_.data());

    for (std::size_t t = steps_; t-- > 0;) {
        const float *pg = gates_[t].data();
        const float *ptc = tanh_c_[t].data();
        const float *pc_prev = cs_[t].data();
        const float *pdh = dh_.data();
        float *pdc = dc_.data();
        float *pdp = dpre_.data();
        for (std::size_t r = 0; r < n; ++r) {
            const std::size_t row = r * h4;
            const float *gi = pg + row;
            const float *gf = gi + hidden_;
            const float *gg = gf + hidden_;
            const float *go = gg + hidden_;
            float *dpi = pdp + row;
            float *dpf = dpi + hidden_;
            float *dpg = dpf + hidden_;
            float *dpo = dpg + hidden_;
            for (std::size_t j = 0; j < hidden_; ++j) {
                const std::size_t idx = r * hidden_ + j;
                const float tc = ptc[idx];
                const float dho = pdh[idx];
                // h = o * tanh(c)
                const float d_o = dho * tc;
                float d_c = pdc[idx] + dho * go[j] * (1.0f - tc * tc);
                const float d_i = d_c * gg[j];
                const float d_f = d_c * pc_prev[idx];
                const float d_g = d_c * gi[j];
                // Gradient through the gate nonlinearities.
                dpi[j] = d_i * gi[j] * (1.0f - gi[j]);
                dpf[j] = d_f * gf[j] * (1.0f - gf[j]);
                dpg[j] = d_g * (1.0f - gg[j] * gg[j]);
                dpo[j] = d_o * go[j] * (1.0f - go[j]);
                // Carry the cell gradient to t-1.
                pdc[idx] = d_c * gf[j];
            }
        }
        // Parameter gradients, each into its own stable-shape scratch so
        // no buffer is reshaped (reallocated) between the three GEMMs.
        tensor::matmulTransA(xs_[t], dpre_, dwx_step_);
        dwx_ += dwx_step_;
        tensor::matmulTransA(hs_[t], dpre_, dwh_step_);
        dwh_ += dwh_step_;
        float *pdb = db_.data();
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t j = 0; j < h4; ++j)
                pdb[j] += pdp[r * h4 + j];
        // Input gradient slice.
        tensor::matmulTransB(dpre_, wx_, dx_step_);  // [n, in]
        for (std::size_t r = 0; r < n; ++r) {
            float *dst = grad_in_.data() + (r * steps_ + t) * in_;
            const float *src = dx_step_.data() + r * in_;
            for (std::size_t j = 0; j < in_; ++j)
                dst[j] += src[j];
        }
        // Hidden gradient to t-1.
        tensor::matmulTransB(dpre_, wh_, dh_);
    }
    return grad_in_;
}

std::uint64_t
LSTM::flopsPerSample() const
{
    // Per step: x Wx (2*in*4H) + h Wh (2*H*4H) + ~12 elementwise FLOPs per
    // hidden unit for gate math.
    const std::uint64_t per_step =
        2ULL * in_ * 4 * hidden_ + 2ULL * hidden_ * 4 * hidden_ +
        12ULL * hidden_;
    return per_step * steps_;
}

} // namespace nn
} // namespace fedgpo
