/**
 * @file
 * Depthwise 2-d convolution — the building block of MobileNet's
 * depthwise-separable convolutions (one filter per input channel, no
 * cross-channel mixing).
 */

#ifndef FEDGPO_NN_DEPTHWISE_CONV2D_H_
#define FEDGPO_NN_DEPTHWISE_CONV2D_H_

#include "nn/layer.h"
#include "util/rng.h"

namespace fedgpo {
namespace nn {

/**
 * Depthwise convolution with square kernels and channel multiplier 1.
 *
 * Input  [n, c, h, w]
 * Output [n, c, oh, ow]
 */
class DepthwiseConv2D : public Layer
{
  public:
    /**
     * @param c      Channel count (input == output).
     * @param k      Square kernel extent.
     * @param h, w   Input spatial extents.
     * @param stride Stride in both dimensions.
     * @param pad    Zero padding on all sides.
     * @param rng    Initialization stream (He normal).
     */
    DepthwiseConv2D(std::size_t c, std::size_t k, std::size_t h,
                    std::size_t w, std::size_t stride, std::size_t pad,
                    util::Rng &rng);

    std::string name() const override;
    LayerKind kind() const override { return LayerKind::Conv; }
    const Tensor &forward(const Tensor &in, bool train) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::vector<Tensor *> params() override { return {&weights_, &b_}; }
    std::vector<Tensor *> grads() override { return {&dw_, &db_}; }
    std::uint64_t flopsPerSample() const override;

    std::size_t outHeight() const { return oh_; }
    std::size_t outWidth() const { return ow_; }

  private:
    std::size_t c_, k_, in_h_, in_w_, stride_, pad_;
    std::size_t oh_, ow_;
    Tensor weights_; //!< [c, k, k]
    Tensor b_;   //!< [c]
    Tensor dw_;
    Tensor db_;
    Tensor out_buf_;
    Tensor grad_in_;
    const Tensor *cached_in_ = nullptr;
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_DEPTHWISE_CONV2D_H_
