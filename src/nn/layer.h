/**
 * @file
 * Layer interface of the from-scratch NN training library.
 *
 * Contract: forward(x) returns a reference to an internal output buffer
 * and caches what backward needs; backward(dy) must be called with the
 * gradient w.r.t. that output while the input passed to the immediately
 * preceding forward is still alive and unmodified. Model enforces this by
 * owning the full activation chain. Layers own their parameters and the
 * matching gradient buffers; gradients accumulate across backward calls
 * until zeroGrad().
 */

#ifndef FEDGPO_NN_LAYER_H_
#define FEDGPO_NN_LAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedgpo {
namespace nn {

using tensor::Tensor;

/**
 * Coarse layer taxonomy.
 *
 * FedGPO's state features count convolutional, fully-connected, and
 * recurrent layers (paper Table 1), so the kind is part of the public
 * layer interface rather than an implementation detail.
 */
enum class LayerKind {
    Conv,        //!< Standard or depthwise convolution
    Dense,       //!< Fully-connected
    Recurrent,   //!< LSTM / RNN
    Activation,  //!< Elementwise nonlinearity
    Pool,        //!< Spatial pooling
    Reshape,     //!< Flatten and friends (no math)
};

/**
 * Abstract differentiable layer.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Short human-readable name, e.g. "conv3x3(1->8)". */
    virtual std::string name() const = 0;

    /** Taxonomic kind (see LayerKind). */
    virtual LayerKind kind() const = 0;

    /**
     * Run the layer on a batch and return its output.
     *
     * The returned reference points at a buffer owned by the layer and is
     * valid until the next forward() call on this layer.
     *
     * @param in    Input batch; first dimension is the batch size.
     * @param train True during training (enables any train-only behavior).
     */
    virtual const Tensor &forward(const Tensor &in, bool train) = 0;

    /**
     * Backpropagate through the layer.
     *
     * Accumulates parameter gradients and returns the gradient w.r.t. the
     * input of the preceding forward() call. The returned reference is
     * owned by the layer and valid until the next backward() call.
     */
    virtual const Tensor &backward(const Tensor &grad_out) = 0;

    /** Mutable views of the parameter tensors (possibly empty). */
    virtual std::vector<Tensor *> params() { return {}; }

    /** Gradient tensors, parallel to params(). */
    virtual std::vector<Tensor *> grads() { return {}; }

    /** Zero all gradient buffers. */
    void zeroGrad();

    /** Total number of scalar parameters. */
    std::size_t paramCount();

    /**
     * Analytic forward FLOPs for a single sample (multiply and add counted
     * separately, the convention of the paper's GFLOPS tables). Layers with
     * no arithmetic return 0.
     */
    virtual std::uint64_t flopsPerSample() const = 0;
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_LAYER_H_
