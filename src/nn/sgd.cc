#include "nn/sgd.h"

#include <cassert>
#include <cmath>

#include "obs/metrics.h"

namespace fedgpo {
namespace nn {

Sgd::Sgd(double lr, double momentum, double clip_norm)
    : lr_(lr), momentum_(momentum), clip_norm_(clip_norm)
{
}

void
Sgd::step(Model &model)
{
    obs::ScopedTimer timer(obs::spanIf(obs::Level::Profile, "model.update"));
    auto params = model.params();
    auto grads = model.grads();
    assert(params.size() == grads.size());
    if (clip_norm_ > 0.0) {
        double norm2 = 0.0;
        for (Tensor *g : grads)
            norm2 += g->squaredNorm();
        const double norm = std::sqrt(norm2);
        if (norm > clip_norm_) {
            const float scale = static_cast<float>(clip_norm_ / norm);
            for (Tensor *g : grads)
                *g *= scale;
        }
    }
    const float lr = static_cast<float>(lr_);
    if (momentum_ == 0.0) {
        for (std::size_t i = 0; i < params.size(); ++i)
            params[i]->addScaled(*grads[i], -lr);
        return;
    }
    const float mu = static_cast<float>(momentum_);
    if (velocity_.size() != params.size()) {
        velocity_.clear();
        for (Tensor *p : params)
            velocity_.emplace_back(p->shape());
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
        Tensor &v = velocity_[i];
        assert(v.shape() == params[i]->shape());
        v *= mu;
        v.addScaled(*grads[i], 1.0f);
        params[i]->addScaled(v, -lr);
    }
}

} // namespace nn
} // namespace fedgpo
