/**
 * @file
 * Single-layer LSTM over fixed-length sequences with full BPTT.
 *
 * The layer consumes a whole sequence batch [n, T, in] and emits the final
 * hidden state [n, hidden] — the configuration used for next-character
 * prediction (LSTM-Shakespeare in the paper): the classifier head sits on
 * the last hidden state.
 */

#ifndef FEDGPO_NN_LSTM_H_
#define FEDGPO_NN_LSTM_H_

#include "nn/layer.h"
#include "util/rng.h"

namespace fedgpo {
namespace nn {

/**
 * LSTM with gate order (i, f, g, o) packed along the last weight axis.
 */
class LSTM : public Layer
{
  public:
    /**
     * @param in     Input feature width per timestep.
     * @param hidden Hidden/cell state width.
     * @param steps  Sequence length T (fixed at construction).
     * @param rng    Initialization stream (Xavier uniform; forget-gate bias
     *               initialized to 1, the usual trick for trainability).
     */
    LSTM(std::size_t in, std::size_t hidden, std::size_t steps,
         util::Rng &rng);

    std::string name() const override;
    LayerKind kind() const override { return LayerKind::Recurrent; }
    const Tensor &forward(const Tensor &in, bool train) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::vector<Tensor *> params() override { return {&wx_, &wh_, &b_}; }
    std::vector<Tensor *> grads() override { return {&dwx_, &dwh_, &db_}; }
    std::uint64_t flopsPerSample() const override;

    std::size_t hiddenSize() const { return hidden_; }
    std::size_t steps() const { return steps_; }

  private:
    std::size_t in_, hidden_, steps_;
    Tensor wx_;  //!< [in, 4*hidden]
    Tensor wh_;  //!< [hidden, 4*hidden]
    Tensor b_;   //!< [4*hidden]
    Tensor dwx_, dwh_, db_;

    // Forward caches. Allocated once per batch shape and reused across
    // calls: when the batch size is unchanged only h_0/c_0 are re-zeroed
    // (everything else is fully overwritten each forward), so steady-state
    // training steps are allocation-free.
    std::vector<Tensor> xs_;      //!< per-step inputs [n, in]
    std::vector<Tensor> hs_;      //!< h_0..h_T, each [n, hidden]
    std::vector<Tensor> cs_;      //!< c_0..c_T
    std::vector<Tensor> gates_;   //!< post-activation gates per step [n,4H]
    std::vector<Tensor> tanh_c_;  //!< tanh(c_t) per step
    Tensor pre_x_, pre_h_;        //!< per-step GEMM outputs [n, 4H]
    Tensor out_buf_;
    Tensor grad_in_;
    // Backward scratch, persistent so steady-state BPTT is allocation-free
    // (one stable-shape buffer per matmul output instead of reshaping a
    // shared temporary every timestep).
    Tensor dh_;        //!< running hidden gradient [n, hidden]
    Tensor dc_;        //!< running cell gradient [n, hidden]
    Tensor dpre_;      //!< pre-activation gate gradient [n, 4H]
    Tensor dwx_step_;  //!< [in, 4H]
    Tensor dwh_step_;  //!< [hidden, 4H]
    Tensor dx_step_;   //!< [n, in]
    std::size_t cached_n_ = 0;
    std::size_t alloc_n_ = 0;     //!< batch size the caches were built for
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_LSTM_H_
