/**
 * @file
 * Stochastic gradient descent with optional momentum — the client-side
 * optimizer prescribed by FedAvg (paper Algorithm 1: w <- w - eta * grad).
 */

#ifndef FEDGPO_NN_SGD_H_
#define FEDGPO_NN_SGD_H_

#include <vector>

#include "nn/model.h"

namespace fedgpo {
namespace nn {

/**
 * Plain/momentum SGD over a Model's parameters.
 */
class Sgd
{
  public:
    /**
     * @param lr        Learning rate eta.
     * @param momentum  Momentum coefficient (0 = plain SGD).
     * @param clip_norm Global gradient-norm clip (0 disables). Clipping
     *                  keeps aggressive (small-B, high-lr) client configs
     *                  from diverging — without it a single exploding
     *                  client can poison the FedAvg aggregate.
     */
    explicit Sgd(double lr, double momentum = 0.0, double clip_norm = 0.0);

    /** Apply one update using the model's accumulated gradients. */
    void step(Model &model);

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

  private:
    double lr_;
    double momentum_;
    double clip_norm_;
    std::vector<Tensor> velocity_;
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_SGD_H_
