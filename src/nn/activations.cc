#include "nn/activations.h"

#include <cassert>
#include <cmath>

namespace fedgpo {
namespace nn {

const Tensor &
ReLU::forward(const Tensor &in, bool train)
{
    (void)train;
    if (out_buf_.shape() != in.shape())
        out_buf_ = Tensor(in.shape());
    cached_batch_ = in.ndim() > 0 ? in.dim(0) : 1;
    const float *pi = in.data();
    float *po = out_buf_.data();
    for (std::size_t i = 0; i < in.numel(); ++i)
        po[i] = pi[i] > 0.0f ? pi[i] : 0.0f;
    return out_buf_;
}

const Tensor &
ReLU::backward(const Tensor &grad_out)
{
    assert(grad_out.shape() == out_buf_.shape());
    if (grad_in_.shape() != grad_out.shape())
        grad_in_ = Tensor(grad_out.shape());
    const float *po = out_buf_.data();
    const float *pg = grad_out.data();
    float *pd = grad_in_.data();
    for (std::size_t i = 0; i < grad_out.numel(); ++i)
        pd[i] = po[i] > 0.0f ? pg[i] : 0.0f;
    return grad_in_;
}

std::uint64_t
ReLU::flopsPerSample() const
{
    if (out_buf_.numel() == 0 || cached_batch_ == 0)
        return 0;
    return out_buf_.numel() / cached_batch_;
}

const Tensor &
Tanh::forward(const Tensor &in, bool train)
{
    (void)train;
    if (out_buf_.shape() != in.shape())
        out_buf_ = Tensor(in.shape());
    cached_batch_ = in.ndim() > 0 ? in.dim(0) : 1;
    const float *pi = in.data();
    float *po = out_buf_.data();
    for (std::size_t i = 0; i < in.numel(); ++i)
        po[i] = std::tanh(pi[i]);
    return out_buf_;
}

const Tensor &
Tanh::backward(const Tensor &grad_out)
{
    assert(grad_out.shape() == out_buf_.shape());
    if (grad_in_.shape() != grad_out.shape())
        grad_in_ = Tensor(grad_out.shape());
    const float *po = out_buf_.data();
    const float *pg = grad_out.data();
    float *pd = grad_in_.data();
    for (std::size_t i = 0; i < grad_out.numel(); ++i)
        pd[i] = pg[i] * (1.0f - po[i] * po[i]);
    return grad_in_;
}

std::uint64_t
Tanh::flopsPerSample() const
{
    if (out_buf_.numel() == 0 || cached_batch_ == 0)
        return 0;
    // tanh is several FLOPs; count 4 per element as a conventional cost.
    return 4ULL * (out_buf_.numel() / cached_batch_);
}

const Tensor &
Flatten::forward(const Tensor &in, bool train)
{
    (void)train;
    assert(in.ndim() >= 1);
    cached_shape_ = in.shape();
    const std::size_t n = in.dim(0);
    const std::size_t rest = in.numel() / n;
    out_buf_ = Tensor({n, rest},
                      std::vector<float>(in.data(), in.data() + in.numel()));
    return out_buf_;
}

const Tensor &
Flatten::backward(const Tensor &grad_out)
{
    assert(grad_out.numel() == tensor::shapeNumel(cached_shape_));
    grad_in_ = Tensor(cached_shape_,
                      std::vector<float>(grad_out.data(),
                                         grad_out.data() + grad_out.numel()));
    return grad_in_;
}

} // namespace nn
} // namespace fedgpo
