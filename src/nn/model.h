/**
 * @file
 * Sequential model container: the unit FedAvg ships between server and
 * clients.
 *
 * Besides running forward/backward chains, Model exposes exactly what the
 * FL layer needs: flat parameter (de)serialization for averaging, analytic
 * per-sample FLOPs for the device time model, parameter byte counts for the
 * communication model, and the layer census (#conv/#fc/#recurrent) that
 * feeds FedGPO's state features.
 */

#ifndef FEDGPO_NN_MODEL_H_
#define FEDGPO_NN_MODEL_H_

#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/loss.h"

namespace fedgpo {

namespace obs {
struct SpanNode;
} // namespace obs

namespace nn {

/**
 * Census of trainable layer kinds, the NN-architecture component of
 * FedGPO's RL state (paper Table 1).
 */
struct LayerCensus
{
    std::size_t conv = 0;       //!< S_CONV input
    std::size_t dense = 0;      //!< S_FC input
    std::size_t recurrent = 0;  //!< S_RC input
};

/**
 * A feedforward stack of layers with a softmax-cross-entropy head.
 */
class Model
{
  public:
    Model() = default;

    // Model owns layer activation chains; moving would invalidate cached
    // pointers mid-step, so models are pinned.
    Model(const Model &) = delete;
    Model &operator=(const Model &) = delete;

    /** Append a layer (takes ownership); returns *this for chaining. */
    Model &add(std::unique_ptr<Layer> layer);

    /** Number of layers. */
    std::size_t size() const { return layers_.size(); }

    /** Access layer i. */
    Layer &layer(std::size_t i) { return *layers_.at(i); }

    /**
     * Forward pass through all layers.
     * @return Logits tensor (owned by the last layer).
     */
    const Tensor &forward(const Tensor &input, bool train = false);

    /**
     * One training step on a batch: forward, loss, backward, gradient
     * accumulation. Does NOT update parameters; call an optimizer.
     *
     * @return Mean loss over the batch.
     */
    double trainStep(const Tensor &input, const std::vector<int> &labels);

    /**
     * Evaluate mean loss and accuracy on a batch without touching
     * gradients. `correct` is the exact argmax-correct count, so batched
     * evaluators can sum integer counts instead of reconstructing them
     * from the accuracy ratio (which is lossy).
     */
    struct EvalResult
    {
        double loss = 0.0;
        double accuracy = 0.0;
        std::size_t correct = 0;
    };
    EvalResult evaluate(const Tensor &input, const std::vector<int> &labels);

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** All parameter tensors across layers, in layer order. */
    std::vector<Tensor *> params();

    /** All gradient tensors across layers, parallel to params(). */
    std::vector<Tensor *> grads();

    /** Total scalar parameter count. */
    std::size_t paramCount();

    /** Parameter payload in bytes (float32), for the comm model. */
    std::size_t paramBytes();

    /** Copy all parameters into one flat vector (FedAvg upload). */
    std::vector<float> saveParams();

    /** Load parameters from a flat vector (FedAvg download). */
    void loadParams(const std::vector<float> &flat);

    /** Analytic forward FLOPs per sample, summed over layers. */
    std::uint64_t forwardFlopsPerSample() const;

    /**
     * Analytic training FLOPs per sample. Uses the standard 3x-forward
     * estimate (forward + ~2x for the backward pass).
     */
    std::uint64_t trainFlopsPerSample() const;

    /** Layer census for the FedGPO state features. */
    LayerCensus census() const;

    /** Loss head (exposes last-batch probabilities etc.). */
    SoftmaxCrossEntropy &loss() { return loss_; }

  private:
    /**
     * Resolve per-layer profile spans ("model.forward.<idx>_<kind>", and
     * the backward twins) once, lazily on the first forward pass so the
     * layer stack is complete. All null below the profile level.
     */
    void ensureSpans();

    std::vector<std::unique_ptr<Layer>> layers_;
    SoftmaxCrossEntropy loss_;
    bool spans_ready_ = false;
    std::vector<obs::SpanNode *> fwd_spans_;
    std::vector<obs::SpanNode *> bwd_spans_;
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_MODEL_H_
