#include "nn/model.h"

#include <cassert>
#include <string>

#include "obs/metrics.h"
#include "util/logging.h"

namespace fedgpo {
namespace nn {

namespace {

const char *
kindLabel(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv:
        return "conv";
      case LayerKind::Dense:
        return "dense";
      case LayerKind::Recurrent:
        return "recurrent";
      case LayerKind::Activation:
        return "act";
      case LayerKind::Pool:
        return "pool";
      case LayerKind::Reshape:
        return "reshape";
    }
    return "layer";
}

std::string
layerSpanName(const char *phase, std::size_t idx, LayerKind kind)
{
    std::string name = "model.";
    name += phase;
    name += '.';
    name += idx < 10 ? "0" : "";
    name += std::to_string(idx);
    name += '_';
    name += kindLabel(kind);
    return name;
}

} // namespace

Model &
Model::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
    spans_ready_ = false;
    return *this;
}

void
Model::ensureSpans()
{
    spans_ready_ = true;
    fwd_spans_.assign(layers_.size(), nullptr);
    bwd_spans_.assign(layers_.size(), nullptr);
    if (!obs::enabled(obs::Level::Profile))
        return;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const LayerKind kind = layers_[i]->kind();
        fwd_spans_[i] = obs::spanIf(obs::Level::Profile,
                                    layerSpanName("forward", i, kind));
        bwd_spans_[i] = obs::spanIf(obs::Level::Profile,
                                    layerSpanName("backward", i, kind));
    }
}

const Tensor &
Model::forward(const Tensor &input, bool train)
{
    assert(!layers_.empty());
    if (!spans_ready_)
        ensureSpans();
    const Tensor *x = &input;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        obs::ScopedTimer timer(fwd_spans_[i]);
        x = &layers_[i]->forward(*x, train);
    }
    return *x;
}

double
Model::trainStep(const Tensor &input, const std::vector<int> &labels)
{
    const Tensor &logits = forward(input, /*train=*/true);
    double loss_value = loss_.forward(logits, labels);
    const Tensor *g = &loss_.backward();
    for (std::size_t i = layers_.size(); i-- > 0;) {
        obs::ScopedTimer timer(bwd_spans_[i]);
        g = &layers_[i]->backward(*g);
    }
    return loss_value;
}

Model::EvalResult
Model::evaluate(const Tensor &input, const std::vector<int> &labels)
{
    const Tensor &logits = forward(input, /*train=*/false);
    EvalResult result;
    result.loss = loss_.forward(logits, labels);
    result.correct = loss_.correct();
    result.accuracy = labels.empty()
                          ? 0.0
                          : static_cast<double>(result.correct) /
                                static_cast<double>(labels.size());
    return result;
}

void
Model::zeroGrad()
{
    for (auto &layer : layers_)
        layer->zeroGrad();
}

std::vector<Tensor *>
Model::params()
{
    std::vector<Tensor *> out;
    for (auto &layer : layers_)
        for (Tensor *p : layer->params())
            out.push_back(p);
    return out;
}

std::vector<Tensor *>
Model::grads()
{
    std::vector<Tensor *> out;
    for (auto &layer : layers_)
        for (Tensor *g : layer->grads())
            out.push_back(g);
    return out;
}

std::size_t
Model::paramCount()
{
    std::size_t n = 0;
    for (Tensor *p : params())
        n += p->numel();
    return n;
}

std::size_t
Model::paramBytes()
{
    return paramCount() * sizeof(float);
}

std::vector<float>
Model::saveParams()
{
    std::vector<float> flat;
    flat.reserve(paramCount());
    for (Tensor *p : params())
        flat.insert(flat.end(), p->data(), p->data() + p->numel());
    return flat;
}

void
Model::loadParams(const std::vector<float> &flat)
{
    std::size_t offset = 0;
    for (Tensor *p : params()) {
        if (offset + p->numel() > flat.size())
            util::fatal("Model::loadParams: flat vector too short");
        std::copy(flat.begin() + static_cast<long>(offset),
                  flat.begin() + static_cast<long>(offset + p->numel()),
                  p->data());
        offset += p->numel();
    }
    if (offset != flat.size())
        util::fatal("Model::loadParams: flat vector too long");
}

std::uint64_t
Model::forwardFlopsPerSample() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer->flopsPerSample();
    return total;
}

std::uint64_t
Model::trainFlopsPerSample() const
{
    return 3ULL * forwardFlopsPerSample();
}

LayerCensus
Model::census() const
{
    LayerCensus census;
    for (const auto &layer : layers_) {
        switch (layer->kind()) {
          case LayerKind::Conv:
            ++census.conv;
            break;
          case LayerKind::Dense:
            ++census.dense;
            break;
          case LayerKind::Recurrent:
            ++census.recurrent;
            break;
          default:
            break;
        }
    }
    return census;
}

} // namespace nn
} // namespace fedgpo
