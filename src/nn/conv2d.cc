#include "nn/conv2d.h"

#include <cassert>

#include "nn/init.h"
#include "tensor/ops.h"

namespace fedgpo {
namespace nn {

Conv2D::Conv2D(std::size_t in_c, std::size_t out_c, std::size_t k,
               std::size_t h, std::size_t w, std::size_t stride,
               std::size_t pad, util::Rng &rng)
    : in_c_(in_c), out_c_(out_c), k_(k), in_h_(h), in_w_(w), stride_(stride),
      pad_(pad),
      oh_(tensor::convOutExtent(h, k, stride, pad)),
      ow_(tensor::convOutExtent(w, k, stride, pad)),
      weights_({in_c * k * k, out_c}), b_({out_c}),
      dw_({in_c * k * k, out_c}), db_({out_c})
{
    heNormal(weights_, in_c * k * k, rng);
}

std::string
Conv2D::name() const
{
    return "conv" + std::to_string(k_) + "x" + std::to_string(k_) + "(" +
           std::to_string(in_c_) + "->" + std::to_string(out_c_) + ")";
}

const Tensor &
Conv2D::forward(const Tensor &in, bool train)
{
    (void)train;
    assert(in.ndim() == 4);
    assert(in.dim(1) == in_c_ && in.dim(2) == in_h_ && in.dim(3) == in_w_);
    const std::size_t n = in.dim(0);
    cached_n_ = n;
    tensor::im2col(in, k_, k_, stride_, pad_, cols_);
    // Bias is fused into the GEMM epilogue (added after each element's
    // k-chain, bit-identical to a separate pass); the NCHW scatter below
    // is then a pure transpose.
    tensor::matmulBias(cols_, weights_, b_, gemm_out_);

    if (out_buf_.ndim() != 4 || out_buf_.dim(0) != n)
        out_buf_ = Tensor({n, out_c_, oh_, ow_});
    const std::size_t spatial = oh_ * ow_;
    const float *pg = gemm_out_.data();
    float *po = out_buf_.data();
    for (std::size_t img = 0; img < n; ++img) {
        for (std::size_t s = 0; s < spatial; ++s) {
            const float *row = pg + (img * spatial + s) * out_c_;
            for (std::size_t oc = 0; oc < out_c_; ++oc)
                po[(img * out_c_ + oc) * spatial + s] = row[oc];
        }
    }
    return out_buf_;
}

const Tensor &
Conv2D::backward(const Tensor &grad_out)
{
    const std::size_t n = cached_n_;
    assert(n > 0);
    assert(grad_out.ndim() == 4 && grad_out.dim(0) == n);
    assert(grad_out.dim(1) == out_c_);
    const std::size_t spatial = oh_ * ow_;

    // Gather NCHW grad into GEMM layout [n*spatial, out_c].
    if (grad_gemm_.ndim() != 2 || grad_gemm_.dim(0) != n * spatial)
        grad_gemm_ = Tensor({n * spatial, out_c_});
    const float *pg = grad_out.data();
    float *pm = grad_gemm_.data();
    for (std::size_t img = 0; img < n; ++img) {
        for (std::size_t oc = 0; oc < out_c_; ++oc) {
            const float *src = pg + (img * out_c_ + oc) * spatial;
            for (std::size_t s = 0; s < spatial; ++s)
                pm[(img * spatial + s) * out_c_ + oc] = src[s];
        }
    }

    // dW += cols^T * grad_gemm ; db += column sums. dw_step_ is
    // persistent member scratch so steady-state backward passes are
    // allocation-free.
    tensor::matmulTransA(cols_, grad_gemm_, dw_step_);
    dw_ += dw_step_;
    float *pdb = db_.data();
    for (std::size_t r = 0; r < n * spatial; ++r)
        for (std::size_t oc = 0; oc < out_c_; ++oc)
            pdb[oc] += pm[r * out_c_ + oc];

    // grad wrt columns, then scatter back to the input geometry.
    tensor::matmulTransB(grad_gemm_, weights_, grad_cols_);
    if (grad_in_.ndim() != 4 || grad_in_.dim(0) != n)
        grad_in_ = Tensor({n, in_c_, in_h_, in_w_});
    tensor::col2im(grad_cols_, k_, k_, stride_, pad_, grad_in_);
    return grad_in_;
}

std::uint64_t
Conv2D::flopsPerSample() const
{
    // 2 FLOPs per MAC over every output position and filter tap, plus the
    // bias add per output element.
    const std::uint64_t macs = static_cast<std::uint64_t>(oh_) * ow_ *
                               out_c_ * in_c_ * k_ * k_;
    return 2ULL * macs + static_cast<std::uint64_t>(oh_) * ow_ * out_c_;
}

} // namespace nn
} // namespace fedgpo
