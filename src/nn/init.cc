#include "nn/init.h"

#include <cmath>

namespace fedgpo {
namespace nn {

void
xavierUniform(tensor::Tensor &w, std::size_t fan_in, std::size_t fan_out,
              util::Rng &rng)
{
    const double a =
        std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (std::size_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.uniform(-a, a));
}

void
heNormal(tensor::Tensor &w, std::size_t fan_in, util::Rng &rng)
{
    const double sd = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (std::size_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.gaussian(0.0, sd));
}

} // namespace nn
} // namespace fedgpo
