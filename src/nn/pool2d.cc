#include "nn/pool2d.h"

#include <cassert>

#include "util/logging.h"

namespace fedgpo {
namespace nn {

MaxPool2D::MaxPool2D(std::size_t c, std::size_t k, std::size_t h,
                     std::size_t w)
    : c_(c), k_(k), h_(h), w_(w), oh_(h / k), ow_(w / k)
{
    if (h % k != 0 || w % k != 0) {
        util::fatal("MaxPool2D: input " + std::to_string(h) + "x" +
                    std::to_string(w) + " not divisible by window " +
                    std::to_string(k));
    }
}

std::string
MaxPool2D::name() const
{
    return "maxpool" + std::to_string(k_) + "x" + std::to_string(k_);
}

const Tensor &
MaxPool2D::forward(const Tensor &in, bool train)
{
    (void)train;
    assert(in.ndim() == 4);
    assert(in.dim(1) == c_ && in.dim(2) == h_ && in.dim(3) == w_);
    const std::size_t n = in.dim(0);
    cached_n_ = n;
    if (out_buf_.ndim() != 4 || out_buf_.dim(0) != n)
        out_buf_ = Tensor({n, c_, oh_, ow_});
    argmax_.resize(n * c_ * oh_ * ow_);
    const float *pi = in.data();
    float *po = out_buf_.data();
    std::size_t out_idx = 0;
    for (std::size_t img = 0; img < n; ++img) {
        for (std::size_t ch = 0; ch < c_; ++ch) {
            const float *x = pi + (img * c_ + ch) * h_ * w_;
            const std::size_t base = (img * c_ + ch) * h_ * w_;
            for (std::size_t oy = 0; oy < oh_; ++oy) {
                for (std::size_t ox = 0; ox < ow_; ++ox, ++out_idx) {
                    std::size_t best = (oy * k_) * w_ + ox * k_;
                    float best_v = x[best];
                    for (std::size_t ky = 0; ky < k_; ++ky) {
                        for (std::size_t kx = 0; kx < k_; ++kx) {
                            std::size_t idx =
                                (oy * k_ + ky) * w_ + ox * k_ + kx;
                            if (x[idx] > best_v) {
                                best_v = x[idx];
                                best = idx;
                            }
                        }
                    }
                    po[out_idx] = best_v;
                    argmax_[out_idx] = base + best;
                }
            }
        }
    }
    return out_buf_;
}

const Tensor &
MaxPool2D::backward(const Tensor &grad_out)
{
    const std::size_t n = cached_n_;
    assert(n > 0);
    assert(grad_out.numel() == argmax_.size());
    if (grad_in_.ndim() != 4 || grad_in_.dim(0) != n)
        grad_in_ = Tensor({n, c_, h_, w_});
    grad_in_.zero();
    float *pdi = grad_in_.data();
    const float *pg = grad_out.data();
    for (std::size_t i = 0; i < argmax_.size(); ++i)
        pdi[argmax_[i]] += pg[i];
    return grad_in_;
}

std::uint64_t
MaxPool2D::flopsPerSample() const
{
    // One comparison per window element; count comparisons as FLOPs.
    return static_cast<std::uint64_t>(c_) * oh_ * ow_ * k_ * k_;
}

} // namespace nn
} // namespace fedgpo
