/**
 * @file
 * 2-d convolution (im2col + GEMM) over NCHW batches.
 */

#ifndef FEDGPO_NN_CONV2D_H_
#define FEDGPO_NN_CONV2D_H_

#include "nn/layer.h"
#include "util/rng.h"

namespace fedgpo {
namespace nn {

/**
 * Standard convolution with square kernels.
 *
 * Input  [n, in_c, h, w]
 * Output [n, out_c, oh, ow] with oh/ow from (extent + 2*pad - k)/stride + 1.
 *
 * The spatial input extent is fixed at construction time; the model zoo
 * builds networks for specific dataset geometries, which keeps the FLOP
 * accounting exact.
 */
class Conv2D : public Layer
{
  public:
    /**
     * @param in_c   Input channels.
     * @param out_c  Output channels (filters).
     * @param k      Square kernel extent.
     * @param h, w   Input spatial extents.
     * @param stride Stride in both dimensions.
     * @param pad    Zero padding on all sides.
     * @param rng    Initialization stream (He normal).
     */
    Conv2D(std::size_t in_c, std::size_t out_c, std::size_t k,
           std::size_t h, std::size_t w, std::size_t stride,
           std::size_t pad, util::Rng &rng);

    std::string name() const override;
    LayerKind kind() const override { return LayerKind::Conv; }
    const Tensor &forward(const Tensor &in, bool train) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::vector<Tensor *> params() override { return {&weights_, &b_}; }
    std::vector<Tensor *> grads() override { return {&dw_, &db_}; }
    std::uint64_t flopsPerSample() const override;

    std::size_t outChannels() const { return out_c_; }
    std::size_t outHeight() const { return oh_; }
    std::size_t outWidth() const { return ow_; }

  private:
    std::size_t in_c_, out_c_, k_, in_h_, in_w_, stride_, pad_;
    std::size_t oh_, ow_;
    Tensor weights_; //!< [in_c * k * k, out_c] (column-major filter bank)
    Tensor b_;   //!< [out_c]
    Tensor dw_;
    Tensor db_;
    Tensor dw_step_;    //!< backward scratch, reused across calls
    Tensor cols_;       //!< im2col scratch for the cached input
    Tensor gemm_out_;   //!< [n*oh*ow, out_c]
    Tensor out_buf_;    //!< [n, out_c, oh, ow]
    Tensor grad_cols_;
    Tensor grad_gemm_;
    Tensor grad_in_;
    std::size_t cached_n_ = 0;
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_CONV2D_H_
