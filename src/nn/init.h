/**
 * @file
 * Weight initialization helpers.
 */

#ifndef FEDGPO_NN_INIT_H_
#define FEDGPO_NN_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace fedgpo {
namespace nn {

/**
 * Fill with Xavier/Glorot uniform values: U(-a, a),
 * a = sqrt(6 / (fan_in + fan_out)).
 */
void xavierUniform(tensor::Tensor &w, std::size_t fan_in,
                   std::size_t fan_out, util::Rng &rng);

/** Fill with He-normal values: N(0, sqrt(2 / fan_in)). */
void heNormal(tensor::Tensor &w, std::size_t fan_in, util::Rng &rng);

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_INIT_H_
