#include "nn/dense.h"

#include <cassert>

#include "nn/init.h"
#include "tensor/ops.h"

namespace fedgpo {
namespace nn {

Dense::Dense(std::size_t in, std::size_t out, util::Rng &rng)
    : in_(in), out_(out),
      w_({in, out}), b_({out}),
      dw_({in, out}), db_({out})
{
    xavierUniform(w_, in, out, rng);
}

std::string
Dense::name() const
{
    return "dense(" + std::to_string(in_) + "->" + std::to_string(out_) +
           ")";
}

const Tensor &
Dense::forward(const Tensor &in, bool train)
{
    (void)train;
    assert(in.ndim() == 2 && in.dim(1) == in_);
    cached_in_ = &in;
    tensor::matmulBias(in, w_, b_, out_buf_);
    return out_buf_;
}

const Tensor &
Dense::backward(const Tensor &grad_out)
{
    assert(cached_in_ != nullptr);
    assert(grad_out.ndim() == 2 && grad_out.dim(1) == out_);
    const Tensor &x = *cached_in_;
    // dW += x^T dy ; db += column sums of dy ; dx = dy W^T
    // dw_step_ is persistent member scratch (shape is stable across
    // calls), so steady-state backward passes are allocation-free.
    tensor::matmulTransA(x, grad_out, dw_step_);
    dw_ += dw_step_;
    const std::size_t n = grad_out.dim(0);
    const float *pg = grad_out.data();
    float *pdb = db_.data();
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < out_; ++c)
            pdb[c] += pg[r * out_ + c];
    tensor::matmulTransB(grad_out, w_, grad_in_);
    return grad_in_;
}

std::uint64_t
Dense::flopsPerSample() const
{
    // One multiply + one add per weight, plus the bias add.
    return 2ULL * in_ * out_ + out_;
}

} // namespace nn
} // namespace fedgpo
