/**
 * @file
 * Elementwise activation layers and a shape-only Flatten layer.
 */

#ifndef FEDGPO_NN_ACTIVATIONS_H_
#define FEDGPO_NN_ACTIVATIONS_H_

#include "nn/layer.h"

namespace fedgpo {
namespace nn {

/**
 * Rectified linear unit, y = max(0, x), any input shape.
 */
class ReLU : public Layer
{
  public:
    ReLU() = default;

    std::string name() const override { return "relu"; }
    LayerKind kind() const override { return LayerKind::Activation; }
    const Tensor &forward(const Tensor &in, bool train) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::uint64_t flopsPerSample() const override;

  private:
    Tensor out_buf_;
    Tensor grad_in_;
    std::size_t cached_batch_ = 1;
};

/**
 * Hyperbolic tangent activation, any input shape.
 */
class Tanh : public Layer
{
  public:
    Tanh() = default;

    std::string name() const override { return "tanh"; }
    LayerKind kind() const override { return LayerKind::Activation; }
    const Tensor &forward(const Tensor &in, bool train) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::uint64_t flopsPerSample() const override;

  private:
    Tensor out_buf_;
    Tensor grad_in_;
    std::size_t cached_batch_ = 1;
};

/**
 * Flatten [n, ...] into [n, prod(...)]. No arithmetic.
 */
class Flatten : public Layer
{
  public:
    Flatten() = default;

    std::string name() const override { return "flatten"; }
    LayerKind kind() const override { return LayerKind::Reshape; }
    const Tensor &forward(const Tensor &in, bool train) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::uint64_t flopsPerSample() const override { return 0; }

  private:
    Tensor out_buf_;
    Tensor grad_in_;
    tensor::Shape cached_shape_;
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_ACTIVATIONS_H_
