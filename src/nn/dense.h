/**
 * @file
 * Fully-connected layer: y = x W + b.
 */

#ifndef FEDGPO_NN_DENSE_H_
#define FEDGPO_NN_DENSE_H_

#include "nn/layer.h"
#include "util/rng.h"

namespace fedgpo {
namespace nn {

/**
 * Dense layer over 2-d batches [n, in] -> [n, out].
 */
class Dense : public Layer
{
  public:
    /**
     * @param in  Input feature width.
     * @param out Output feature width.
     * @param rng Initialization stream (Xavier uniform weights, zero bias).
     */
    Dense(std::size_t in, std::size_t out, util::Rng &rng);

    std::string name() const override;
    LayerKind kind() const override { return LayerKind::Dense; }
    const Tensor &forward(const Tensor &in, bool train) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::vector<Tensor *> params() override { return {&w_, &b_}; }
    std::vector<Tensor *> grads() override { return {&dw_, &db_}; }
    std::uint64_t flopsPerSample() const override;

    std::size_t inFeatures() const { return in_; }
    std::size_t outFeatures() const { return out_; }

  private:
    std::size_t in_;
    std::size_t out_;
    Tensor w_;   //!< [in, out]
    Tensor b_;   //!< [out]
    Tensor dw_;
    Tensor db_;
    Tensor dw_step_;  //!< backward scratch, reused across calls
    Tensor out_buf_;
    Tensor grad_in_;
    const Tensor *cached_in_ = nullptr;
};

} // namespace nn
} // namespace fedgpo

#endif // FEDGPO_NN_DENSE_H_
