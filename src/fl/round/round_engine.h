/**
 * @file
 * The staged round engine: Algorithm 1's server loop decomposed into an
 * explicit stage sequence over a RoundContext —
 *
 *   Select -> Train -> Cost -> Straggler -> Aggregate -> Energy -> Evaluate
 *
 * with the two policy-bearing stages (straggler handling, aggregation)
 * pluggable and every stage reported to registered RoundObservers. With
 * the default strategies (FedAvgAggregator + DeadlineDropPolicy) the
 * engine is bit-identical to the monolithic round loop it replaced,
 * asserted by tests/round_golden_test.cc.
 */

#ifndef FEDGPO_FL_ROUND_ROUND_ENGINE_H_
#define FEDGPO_FL_ROUND_ROUND_ENGINE_H_

#include <memory>
#include <vector>

#include "fl/round/aggregator.h"
#include "fl/round/observer.h"
#include "fl/round/round_context.h"
#include "fl/round/straggler_policy.h"

namespace fedgpo {
namespace fl {
namespace round {

/**
 * Server-side validation run before any aggregation: updates containing
 * non-finite values (a client diverged under an aggressive configuration)
 * are rejected — marked dropped with DropReason::Diverged and counted in
 * dropped_diverged — so one bad client cannot poison the global model.
 *
 * @return Number of updates rejected this call.
 */
std::size_t rejectDivergedUpdates(RoundContext &ctx);

/**
 * Runs rounds as a fixed stage pipeline with pluggable strategies.
 */
class RoundEngine
{
  public:
    /** Both strategies are required (non-null). */
    RoundEngine(std::unique_ptr<Aggregator> aggregator,
                std::unique_ptr<StragglerPolicy> straggler);

    Aggregator &aggregator() { return *aggregator_; }
    StragglerPolicy &stragglerPolicy() { return *straggler_; }

    /** Swap the aggregation strategy (takes effect next round). */
    void setAggregator(std::unique_ptr<Aggregator> aggregator);

    /** Swap the straggler strategy (takes effect next round). */
    void setStragglerPolicy(std::unique_ptr<StragglerPolicy> straggler);

    /** Register an observer (non-owning; must outlive the engine use). */
    void addObserver(RoundObserver *observer);

    /** Unregister an observer; unknown pointers are ignored. */
    void removeObserver(RoundObserver *observer);

    /**
     * Run one full round over the context. The context must carry all
     * simulator state pointers plus the select and evaluate hooks; the
     * result is both returned and left in ctx.result.
     */
    RoundResult run(RoundContext &ctx);

  private:
    void stageSelect(RoundContext &ctx);
    void stageTrain(RoundContext &ctx);
    void stageCost(RoundContext &ctx);
    void stageStraggler(RoundContext &ctx);
    void stageAggregate(RoundContext &ctx);
    void stageEnergy(RoundContext &ctx);
    void stageEvaluate(RoundContext &ctx);

    std::unique_ptr<Aggregator> aggregator_;
    std::unique_ptr<StragglerPolicy> straggler_;
    std::vector<RoundObserver *> observers_;
};

} // namespace round
} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_ROUND_ROUND_ENGINE_H_
