/**
 * @file
 * The staged round engine: Algorithm 1's server loop decomposed into an
 * explicit stage sequence over a RoundContext —
 *
 *   Select -> Train -> Encode -> Cost -> Recover -> Straggler
 *          -> Aggregate -> Energy -> Evaluate
 *
 * with the three policy-bearing stages (upload recovery, straggler
 * handling, aggregation) pluggable and every stage reported to
 * registered RoundObservers. When the context carries a FaultModel the
 * engine additionally injects and handles per-(round, client) faults:
 * offline devices are replaced at selection, crashed clients surface as
 * partial (dropped) reports, failed uploads are retried by the
 * RecoveryPolicy, and a quorum gate aborts the round before aggregation
 * when too few updates survive. With the default strategies
 * (FedAvgAggregator + DeadlineDropPolicy) and no fault model the engine
 * is bit-identical to the monolithic round loop it replaced, asserted
 * by tests/round_golden_test.cc.
 */

#ifndef FEDGPO_FL_ROUND_ROUND_ENGINE_H_
#define FEDGPO_FL_ROUND_ROUND_ENGINE_H_

#include <array>
#include <memory>
#include <vector>

#include "fl/round/aggregator.h"
#include "fl/round/observer.h"
#include "fl/round/recovery_policy.h"
#include "fl/round/round_context.h"
#include "fl/round/straggler_policy.h"
#include "obs/metrics.h"

namespace fedgpo {
namespace fl {
namespace round {

/**
 * Server-side validation run before any aggregation: updates containing
 * non-finite values (a client diverged under an aggressive configuration)
 * are rejected — marked dropped with DropReason::Diverged and counted in
 * dropped_diverged — so one bad client cannot poison the global model.
 *
 * @return Number of updates rejected this call.
 */
std::size_t rejectDivergedUpdates(RoundContext &ctx);

/**
 * Runs rounds as a fixed stage pipeline with pluggable strategies.
 */
class RoundEngine
{
  public:
    /**
     * Both strategies are required (non-null). The recovery policy
     * defaults to RetryBackoffPolicy with the default FaultConfig; it
     * only acts when the context carries fault draws.
     */
    RoundEngine(std::unique_ptr<Aggregator> aggregator,
                std::unique_ptr<StragglerPolicy> straggler,
                std::unique_ptr<RecoveryPolicy> recovery = nullptr);

    Aggregator &aggregator() { return *aggregator_; }
    StragglerPolicy &stragglerPolicy() { return *straggler_; }
    RecoveryPolicy &recoveryPolicy() { return *recovery_; }

    /** Swap the aggregation strategy (takes effect next round). */
    void setAggregator(std::unique_ptr<Aggregator> aggregator);

    /** Swap the straggler strategy (takes effect next round). */
    void setStragglerPolicy(std::unique_ptr<StragglerPolicy> straggler);

    /** Swap the upload-recovery strategy (takes effect next round). */
    void setRecoveryPolicy(std::unique_ptr<RecoveryPolicy> recovery);

    /** Register an observer (non-owning; must outlive the engine use). */
    void addObserver(RoundObserver *observer);

    /** Unregister an observer; unknown pointers are ignored. */
    void removeObserver(RoundObserver *observer);

    /**
     * Run one full round over the context. The context must carry all
     * simulator state pointers plus the select and evaluate hooks; the
     * result is both returned and left in ctx.result.
     */
    RoundResult run(RoundContext &ctx);

  private:
    void stageSelect(RoundContext &ctx);
    void stageTrain(RoundContext &ctx);
    void stageEncode(RoundContext &ctx);
    void stageCost(RoundContext &ctx);
    void stageRecover(RoundContext &ctx);
    void stageStraggler(RoundContext &ctx);
    void stageAggregate(RoundContext &ctx);
    void stageEnergy(RoundContext &ctx);
    void stageEvaluate(RoundContext &ctx);

    /** Forward one fault event to every observer. */
    void fireFault(const RoundContext &ctx, const FaultEvent &event);

    std::unique_ptr<Aggregator> aggregator_;
    std::unique_ptr<StragglerPolicy> straggler_;
    std::unique_ptr<RecoveryPolicy> recovery_;
    std::vector<RoundObserver *> observers_;
    // Host-profile probes ("round.<stage>" spans, round counters),
    // resolved once at construction; all null when metrics are off.
    std::array<obs::SpanNode *, kStageCount> stage_spans_{};
    obs::Counter *rounds_counter_ = nullptr;
    obs::Counter *aborts_counter_ = nullptr;
    // comm.* probes: fleet traffic counters plus the per-client
    // compression-ratio distribution. Null when metrics are off.
    obs::Counter *bytes_up_counter_ = nullptr;
    obs::Counter *bytes_down_counter_ = nullptr;
    obs::Counter *encoded_counter_ = nullptr;
    obs::Histogram *ratio_hist_ = nullptr;
};

} // namespace round
} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_ROUND_ROUND_ENGINE_H_
