/**
 * @file
 * RoundObserver that streams the round-event stream to disk as JSON
 * Lines: one self-contained JSON object per aggregation round, carrying
 * per-stage host timings, the aggregation stats, the round summary,
 * fault events, and one record per participating client. See README
 * ("Round traces") for the record schema.
 */

#ifndef FEDGPO_FL_ROUND_TRACE_WRITER_H_
#define FEDGPO_FL_ROUND_TRACE_WRITER_H_

#include <array>
#include <fstream>
#include <string>
#include <vector>

#include "fl/round/observer.h"

namespace fedgpo {
namespace fl {
namespace round {

/**
 * JSONL trace writer. Buffers one round's events and emits a single line
 * at onRoundEnd; flushes on every line so traces survive a crashed run.
 * An unopenable path or a failed write logs one warning (never fatal —
 * tracing must not kill a campaign) and drops subsequent output.
 */
class JsonlTraceWriter : public RoundObserver
{
  public:
    /** Opens @p path for writing (truncates). Check ok() afterwards. */
    explicit JsonlTraceWriter(const std::string &path);

    /** False when the file could not be opened or a write failed. */
    bool ok() const { return out_.good(); }

    /** Rounds written so far. */
    std::size_t roundsWritten() const { return rounds_written_; }

    void onStage(const RoundContext &ctx, Stage stage,
                 double wall_ms) override;
    void onClientReport(const RoundContext &ctx,
                        const ClientRoundReport &report) override;
    void onFault(const RoundContext &ctx, const FaultEvent &event) override;
    void onAggregate(const RoundContext &ctx,
                     const AggregationStats &stats) override;
    void onDecision(const RoundContext &ctx,
                    const obs::DecisionRecord &record) override;
    void onRoundEnd(const RoundResult &result) override;

  private:
    /** Warn once (with the path) when output is lost; keep running. */
    void warnOnce(const char *what);

    std::ofstream out_;
    std::string path_;
    bool warned_ = false;
    std::array<double, kStageCount> stage_ms_{};
    std::vector<std::string> client_records_;
    std::vector<std::string> fault_records_;
    std::string decision_json_; //!< this round's decision, "" when none
    AggregationStats stats_;
    std::size_t rounds_written_ = 0;
};

} // namespace round
} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_ROUND_TRACE_WRITER_H_
