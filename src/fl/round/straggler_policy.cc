#include "fl/round/straggler_policy.h"

#include <algorithm>

#include "util/stats.h"

namespace fedgpo {
namespace fl {
namespace round {

namespace {

/**
 * deadline_factor x the median modeled finish time of the round's live
 * participants. Devices already dropped by fault injection (offline,
 * crashed, upload given up) never report a finish time to the server,
 * so they are excluded; with faults off nobody is dropped yet and this
 * is the plain median. 0 when no live participant remains.
 */
double
roundDeadline(const RoundContext &ctx, double deadline_factor)
{
    std::vector<double> times;
    times.reserve(ctx.result.participants.size());
    for (const auto &p : ctx.result.participants)
        if (!p.dropped)
            times.push_back(p.cost.t_round);
    if (times.empty())
        return 0.0;
    return deadline_factor * util::quantile(std::move(times), 0.5);
}

/**
 * Charge a device stopped at the deadline for the energy it burned until
 * then: both compute and comm scale with the completed fraction.
 */
void
prorateEnergy(ClientRoundReport &p, double frac)
{
    p.cost.e_comp *= frac;
    p.cost.e_comm *= frac;
    p.cost.e_total = p.cost.e_comp + p.cost.e_comm;
}

} // namespace

DeadlineDropPolicy::DeadlineDropPolicy(double deadline_factor)
    : deadline_factor_(deadline_factor)
{
}

double
DeadlineDropPolicy::apply(RoundContext &ctx)
{
    const double deadline = roundDeadline(ctx, deadline_factor_);
    double round_time = 0.0;
    for (auto &p : ctx.result.participants) {
        if (p.dropped)
            continue; // fault-dropped: never gated the server
        if (p.cost.t_round > deadline) {
            p.dropped = true;
            p.drop_reason = DropReason::Straggler;
            ++ctx.result.dropped_straggler;
            prorateEnergy(p, deadline / p.cost.t_round);
            round_time = std::max(round_time, deadline);
        } else {
            round_time = std::max(round_time, p.cost.t_round);
        }
    }
    return round_time;
}

AcceptPartialPolicy::AcceptPartialPolicy(double deadline_factor)
    : deadline_factor_(deadline_factor)
{
}

double
AcceptPartialPolicy::apply(RoundContext &ctx)
{
    const double deadline = roundDeadline(ctx, deadline_factor_);
    double round_time = 0.0;
    for (auto &p : ctx.result.participants) {
        if (p.dropped)
            continue; // fault-dropped: never gated the server
        if (p.cost.t_round > deadline) {
            const double frac = deadline / p.cost.t_round;
            p.update_scale = frac;
            prorateEnergy(p, frac);
            round_time = std::max(round_time, deadline);
        } else {
            round_time = std::max(round_time, p.cost.t_round);
        }
    }
    return round_time;
}

} // namespace round
} // namespace fl
} // namespace fedgpo
