/**
 * @file
 * The mutable state of one aggregation round as it flows through the
 * RoundEngine's stage sequence (Select -> Train -> Encode -> Cost ->
 * Recover -> Straggler -> Aggregate -> Energy -> Evaluate).
 *
 * The context points (non-owning) into the simulator that spawned the
 * round; stage strategies read and mutate only their slice of it. Unit
 * tests exercise an Aggregator or StragglerPolicy by filling just the
 * fields that strategy touches (participants, updates, global weights)
 * and leaving the rest null.
 */

#ifndef FEDGPO_FL_ROUND_ROUND_CONTEXT_H_
#define FEDGPO_FL_ROUND_ROUND_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/codec.h"
#include "comm/comm_model.h"
#include "data/dataset.h"
#include "device/cost_model.h"
#include "fault/fault_model.h"
#include "fl/client.h"
#include "fl/types.h"
#include "nn/model.h"
#include "obs/decision.h"
#include "runtime/thread_pool.h"
#include "runtime/worker_context.h"
#include "util/rng.h"

namespace fedgpo {
namespace fl {
namespace round {

struct RoundContext
{
    /** 1-based round number (set by the simulator before the run). */
    int round = 0;

    // ---- Round inputs, filled by the Select stage. ---------------------

    std::vector<std::size_t> selected;   //!< fleet indices of participants
    std::vector<PerDeviceParams> params; //!< parallel to `selected`
    /**
     * Pre-split training streams, parallel to `selected`. Derived from
     * (seed, round, client) on the caller thread before dispatch so the
     * Train stage is scheduling-independent (see DESIGN.md, "Runtime &
     * threading model").
     */
    std::vector<util::Rng> train_rngs;

    /**
     * Pre-split comm streams for stochastic update codecs, parallel to
     * `selected` — same derivation discipline as train_rngs (a pure
     * function of (seed, round, client)), so encoding is bit-identical
     * at any thread count. Empty when the codec is Identity/null (the
     * Encode stage then touches no RNG at all).
     */
    std::vector<util::Rng> comm_rngs;

    /**
     * Per-participant fault outcomes, parallel to `selected`. Drawn by
     * the Select stage on the caller thread when a fault model is
     * attached; empty otherwise (the zero-overhead default).
     */
    std::vector<fault::FaultDraw> faults;

    /**
     * The cohort size the Select stage originally requested (K), before
     * offline devices and their replacements grew `selected`. The
     * quorum gate measures kept updates against this.
     */
    std::size_t requested_k = 0;

    // ---- Simulator state (non-owning). ---------------------------------

    std::vector<Client> *clients = nullptr;        //!< whole fleet
    const data::Dataset *train_set = nullptr;
    std::vector<float> *global_weights = nullptr;  //!< server weights
    nn::Model *global_model = nullptr;             //!< kept in sync
    runtime::ThreadPool *pool = nullptr;
    runtime::WorkerContextPool *workers = nullptr;
    const device::WorkloadCost *cost_const = nullptr;
    const fault::FaultModel *fault_model = nullptr; //!< null = no faults
    /**
     * Update codec in force this round (non-owning; null behaves as
     * Identity). Selected per round — the simulator points it at the
     * configured codec, or at the policy's pick when the optimizer
     * adapts the codec knob.
     */
    const comm::UpdateCodec *codec = nullptr;
    std::uint64_t train_flops = 0; //!< proxy-model FLOPs per sample
    std::size_t param_bytes = 0;   //!< one-way payload
    double lr = 0.0;               //!< effective learning rate

    // ---- Hooks back into the simulator. --------------------------------

    /** Fills `selected`, `params`, and `train_rngs` (the Select stage). */
    std::function<void(RoundContext &)> select;

    /**
     * Appends a replacement participant for the offline device at
     * `selected[slot]` (new id, a copy of the slot's params, and the
     * replacement's own training stream). Returns false when no
     * unselected device remains.
     */
    std::function<bool(RoundContext &, std::size_t slot)> replace;

    /** Evaluates the global model on the held-out test set. */
    std::function<nn::Model::EvalResult()> evaluate;

    /**
     * Optional policy feedback, called by the engine after the Evaluate
     * stage with the fully populated result — i.e. still *inside* the
     * round, so a decision record published through `decision` lands in
     * the same round's trace line. Must not mutate the result.
     */
    std::function<void(RoundContext &)> feedback;

    /**
     * Decision record for this round, published by the `feedback` hook
     * (null when the policy keeps none). Observers receive it via
     * onDecision before onRoundEnd.
     */
    const obs::DecisionRecord *decision = nullptr;

    // ---- Stage outputs. ------------------------------------------------

    /** Locally trained weights, parallel to `selected` (Train stage). */
    std::vector<Client::UpdateResult> updates;

    /**
     * Per-participant traffic, parallel to `selected` (Encode stage).
     * After Encode, updates[i].weights already holds the *decoded*
     * update (global weights + decode(encode(delta))), so every later
     * consumer — divergence rejection, AcceptPartial scaling,
     * TrimmedMean, FedAvg — operates on what the server actually
     * received.
     */
    std::vector<comm::CommRecord> comm;

    /** The round's result, accumulated stage by stage. */
    RoundResult result;
};

} // namespace round
} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_ROUND_ROUND_CONTEXT_H_
