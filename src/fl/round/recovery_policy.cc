#include "fl/round/recovery_policy.h"

#include <algorithm>
#include <cassert>

namespace fedgpo {
namespace fl {
namespace round {

RetryBackoffPolicy::RetryBackoffPolicy(const fault::FaultConfig &config)
    : config_(config)
{
}

std::vector<FaultEvent>
RetryBackoffPolicy::apply(RoundContext &ctx)
{
    std::vector<FaultEvent> events;
    if (ctx.faults.empty())
        return events;
    assert(ctx.faults.size() == ctx.result.participants.size());
    assert(ctx.cost_const != nullptr);

    for (std::size_t i = 0; i < ctx.result.participants.size(); ++i) {
        ClientRoundReport &p = ctx.result.participants[i];
        const int failures = ctx.faults[i].upload_failures;
        // Offline/crashed devices never reached the upload; kept
        // devices with a clean first attempt have nothing to recover.
        if (p.dropped || failures == 0)
            continue;

        // Attempt 1's airtime is part of the modeled base cost. Every
        // failed attempt triggers one retransmission of the *encoded*
        // payload after a capped exponential backoff, up to the retry
        // budget — so a compressing codec shrinks the retry charge too.
        // Contexts without an Encode record (strategy unit tests) fall
        // back to the uncompressed payload.
        const std::uint64_t payload =
            i < ctx.comm.size() && ctx.comm[i].bytes_up > 0
                ? ctx.comm[i].bytes_up
                : static_cast<std::uint64_t>(ctx.param_bytes);
        const int retries = std::min(failures, config_.max_upload_retries);
        const device::TxCost tx = device::uploadCost(
            *ctx.cost_const, static_cast<std::size_t>(payload), p.network);
        for (int k = 0; k < retries; ++k) {
            const double wait = fault::FaultModel::backoff(config_, k);
            p.cost.t_comm += wait + tx.time;
            p.cost.t_round += wait + tx.time;
            p.cost.e_comm += tx.energy;
            p.cost.e_total += tx.energy;
            FaultEvent event;
            event.client_id = p.client_id;
            event.kind = fault::FaultKind::UploadRetry;
            event.attempt = k + 1;
            event.backoff_s = wait;
            events.push_back(event);
        }
        p.upload_retries = retries;
        p.bytes_up += static_cast<std::uint64_t>(retries) * payload;
        ctx.result.upload_retries += static_cast<std::size_t>(retries);

        if (failures > config_.max_upload_retries) {
            // The final attempt failed too: the update is lost. The
            // energy stays charged — the radio really burned it.
            p.dropped = true;
            p.drop_reason = DropReason::UploadFailed;
            ++ctx.result.dropped_upload;
            FaultEvent event;
            event.client_id = p.client_id;
            event.kind = fault::FaultKind::UploadExhausted;
            event.attempt = retries + 1;
            events.push_back(event);
        }
    }
    return events;
}

} // namespace round
} // namespace fl
} // namespace fedgpo
