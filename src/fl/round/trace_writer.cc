#include "fl/round/trace_writer.h"

#include <cstdio>

#include "comm/codec.h"
#include "fl/round/round_context.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace fedgpo {
namespace fl {
namespace round {

namespace {

/** Shortest round-trip-exact double formatting ("%.17g"). */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

JsonlTraceWriter::JsonlTraceWriter(const std::string &path)
    : out_(path, std::ios::trunc), path_(path)
{
    if (!out_.good())
        warnOnce("could not open trace file");
}

void
JsonlTraceWriter::warnOnce(const char *what)
{
    if (warned_)
        return;
    warned_ = true;
    util::logWarn("JsonlTraceWriter: " + std::string(what) + " '" + path_ +
                  "'; trace output will be incomplete");
}

void
JsonlTraceWriter::onStage(const RoundContext &ctx, Stage stage,
                          double wall_ms)
{
    (void)ctx;
    stage_ms_[static_cast<std::size_t>(stage)] = wall_ms;
}

void
JsonlTraceWriter::onClientReport(const RoundContext &ctx,
                                 const ClientRoundReport &report)
{
    std::string r = "{\"id\":" + std::to_string(report.client_id);
    r += ",\"tier\":\"" + device::categoryName(report.category) + "\"";
    r += ",\"batch\":" + std::to_string(report.params.batch);
    r += ",\"epochs\":" + std::to_string(report.params.epochs);
    r += ",\"samples\":" + std::to_string(report.samples);
    r += ",\"train_loss\":" + num(report.train_loss);
    r += ",\"t_round\":" + num(report.cost.t_round);
    r += ",\"e_total\":" + num(report.cost.e_total);
    r += ",\"e_wait\":" + num(report.cost.e_wait);
    r += ",\"dropped\":" +
         std::string(report.dropped ? "true" : "false");
    r += ",\"reason\":\"" +
         std::string(dropReasonName(report.drop_reason)) + "\"";
    r += ",\"update_scale\":" + num(report.update_scale);
    r += ",\"retries\":" + std::to_string(report.upload_retries);
    // Traffic accounting (integers — util::json reads them back exactly
    // through asInt64). compression_ratio is uncompressed-payload bytes
    // over the bytes actually sent up, 0 when nothing was uploaded.
    r += ",\"bytes_up\":" + std::to_string(report.bytes_up);
    r += ",\"bytes_down\":" + std::to_string(report.bytes_down);
    r += ",\"codec\":\"" +
         std::string(comm::codecName(ctx.codec ? ctx.codec->kind()
                                               : comm::Codec::Identity)) +
         "\"";
    // Retransmissions inflate both sides the same way, so the ratio
    // stays the codec's, not the fault model's.
    const double ratio =
        report.bytes_up > 0
            ? static_cast<double>(ctx.param_bytes) *
                  static_cast<double>(1 + report.upload_retries) /
                  static_cast<double>(report.bytes_up)
            : 0.0;
    r += ",\"compression_ratio\":" + num(ratio);
    r += "}";
    client_records_.push_back(std::move(r));
}

void
JsonlTraceWriter::onFault(const RoundContext &ctx, const FaultEvent &event)
{
    (void)ctx;
    std::string r = "{\"id\":" + std::to_string(event.client_id);
    r += ",\"kind\":\"" + std::string(fault::faultKindName(event.kind)) +
         "\"";
    r += ",\"attempt\":" + std::to_string(event.attempt);
    r += ",\"backoff\":" + num(event.backoff_s);
    r += ",\"fraction\":" + num(event.fraction);
    r += "}";
    fault_records_.push_back(std::move(r));
}

void
JsonlTraceWriter::onAggregate(const RoundContext &ctx,
                              const AggregationStats &stats)
{
    (void)ctx;
    stats_ = stats;
}

void
JsonlTraceWriter::onDecision(const RoundContext &ctx,
                             const obs::DecisionRecord &record)
{
    (void)ctx;
    decision_json_ = obs::decisionJson(record);
}

void
JsonlTraceWriter::onRoundEnd(const RoundResult &result)
{
    out_ << "{\"round\":" << result.round;
    out_ << ",\"stages_ms\":{";
    for (std::size_t s = 0; s < kStageCount; ++s) {
        if (s > 0)
            out_ << ",";
        out_ << "\"" << stageName(static_cast<Stage>(s))
             << "\":" << num(stage_ms_[s]);
    }
    out_ << "}";
    out_ << ",\"aggregation\":{\"contributors\":" << stats_.contributors
         << ",\"samples\":" << stats_.samples
         << ",\"scaled\":" << stats_.scaled << "}";
    out_ << ",\"round_time\":" << num(result.round_time);
    out_ << ",\"test_accuracy\":" << num(result.test_accuracy);
    out_ << ",\"test_loss\":" << num(result.test_loss);
    out_ << ",\"train_loss\":" << num(result.train_loss);
    out_ << ",\"energy_participants\":" << num(result.energy_participants);
    out_ << ",\"energy_idle\":" << num(result.energy_idle);
    out_ << ",\"energy_total\":" << num(result.energy_total);
    out_ << ",\"dropped_straggler\":" << result.dropped_straggler;
    out_ << ",\"dropped_diverged\":" << result.dropped_diverged;
    out_ << ",\"dropped_offline\":" << result.dropped_offline;
    out_ << ",\"dropped_crashed\":" << result.dropped_crashed;
    out_ << ",\"dropped_upload\":" << result.dropped_upload;
    out_ << ",\"upload_retries\":" << result.upload_retries;
    out_ << ",\"codec\":\"" << comm::codecName(result.codec) << "\"";
    out_ << ",\"bytes_up_total\":" << result.bytes_up_total;
    out_ << ",\"bytes_down_total\":" << result.bytes_down_total;
    out_ << ",\"aborted\":" << (result.aborted ? "true" : "false");
    out_ << ",\"faults\":[";
    for (std::size_t i = 0; i < fault_records_.size(); ++i) {
        if (i > 0)
            out_ << ",";
        out_ << fault_records_[i];
    }
    out_ << "]";
    out_ << ",\"clients\":[";
    for (std::size_t i = 0; i < client_records_.size(); ++i) {
        if (i > 0)
            out_ << ",";
        out_ << client_records_[i];
    }
    out_ << "]";
    if (!decision_json_.empty())
        out_ << ",\"decision\":" << decision_json_;
    if (obs::enabled())
        out_ << ",\"metrics\":" << obs::metricsJson();
    out_ << "}\n";
    out_.flush();
    if (!out_.good())
        warnOnce("write failed on trace file");
    ++rounds_written_;

    stage_ms_.fill(0.0);
    client_records_.clear();
    fault_records_.clear();
    decision_json_.clear();
    stats_ = AggregationStats{};
}

} // namespace round
} // namespace fl
} // namespace fedgpo
