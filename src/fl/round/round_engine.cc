#include "fl/round/round_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <string>

#include "device/power_model.h"
#include "util/logging.h"

namespace fedgpo {
namespace fl {
namespace round {

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Select:
        return "select";
      case Stage::Train:
        return "train";
      case Stage::Encode:
        return "encode";
      case Stage::Cost:
        return "cost";
      case Stage::Recover:
        return "recover";
      case Stage::Straggler:
        return "straggler";
      case Stage::Aggregate:
        return "aggregate";
      case Stage::Energy:
        return "energy";
      case Stage::Evaluate:
        return "evaluate";
    }
    return "unknown";
}

std::size_t
rejectDivergedUpdates(RoundContext &ctx)
{
    assert(ctx.updates.size() == ctx.result.participants.size());
    std::size_t rejected = 0;
    for (std::size_t i = 0; i < ctx.updates.size(); ++i) {
        ClientRoundReport &p = ctx.result.participants[i];
        if (p.dropped)
            continue;
        bool finite = true;
        for (float v : ctx.updates[i].weights) {
            if (!std::isfinite(v)) {
                finite = false;
                break;
            }
        }
        if (!finite) {
            p.dropped = true;
            p.drop_reason = DropReason::Diverged;
            ++ctx.result.dropped_diverged;
            ++rejected;
            util::logWarn("round " + std::to_string(ctx.round) +
                          ": client " + std::to_string(p.client_id) +
                          " update diverged; rejected");
        }
    }
    return rejected;
}

RoundEngine::RoundEngine(std::unique_ptr<Aggregator> aggregator,
                         std::unique_ptr<StragglerPolicy> straggler,
                         std::unique_ptr<RecoveryPolicy> recovery)
    : aggregator_(std::move(aggregator)), straggler_(std::move(straggler)),
      recovery_(std::move(recovery))
{
    assert(aggregator_ != nullptr && straggler_ != nullptr);
    if (recovery_ == nullptr)
        recovery_ =
            std::make_unique<RetryBackoffPolicy>(fault::FaultConfig{});
    for (std::size_t s = 0; s < kStageCount; ++s)
        stage_spans_[s] = obs::spanIf(
            obs::Level::Basic,
            std::string("round.") + stageName(static_cast<Stage>(s)));
    rounds_counter_ = obs::counterIf(obs::Level::Basic, "rounds.completed");
    aborts_counter_ = obs::counterIf(obs::Level::Basic, "rounds.aborted");
    bytes_up_counter_ = obs::counterIf(obs::Level::Basic, "comm.bytes_up");
    bytes_down_counter_ =
        obs::counterIf(obs::Level::Basic, "comm.bytes_down");
    encoded_counter_ =
        obs::counterIf(obs::Level::Basic, "comm.encoded_updates");
    ratio_hist_ = obs::histogramIf(obs::Level::Basic,
                                   "comm.compression_ratio",
                                   {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
}

void
RoundEngine::setAggregator(std::unique_ptr<Aggregator> aggregator)
{
    assert(aggregator != nullptr);
    aggregator_ = std::move(aggregator);
}

void
RoundEngine::setStragglerPolicy(std::unique_ptr<StragglerPolicy> straggler)
{
    assert(straggler != nullptr);
    straggler_ = std::move(straggler);
}

void
RoundEngine::setRecoveryPolicy(std::unique_ptr<RecoveryPolicy> recovery)
{
    assert(recovery != nullptr);
    recovery_ = std::move(recovery);
}

void
RoundEngine::fireFault(const RoundContext &ctx, const FaultEvent &event)
{
    // Fault events are rare, so the by-name registry lookup is fine here.
    obs::count(std::string("fault.") + fault::faultKindName(event.kind));
    for (RoundObserver *o : observers_)
        o->onFault(ctx, event);
}

void
RoundEngine::addObserver(RoundObserver *observer)
{
    assert(observer != nullptr);
    observers_.push_back(observer);
}

void
RoundEngine::removeObserver(RoundObserver *observer)
{
    observers_.erase(
        std::remove(observers_.begin(), observers_.end(), observer),
        observers_.end());
}

RoundResult
RoundEngine::run(RoundContext &ctx)
{
    ctx.result.round = ctx.round;

    using clock = std::chrono::steady_clock;
    auto timed = [&](Stage stage, auto &&stage_fn) {
        const auto t0 = clock::now();
        stage_fn(ctx);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(clock::now() - t0)
                .count();
        obs::addSpanMs(stage_spans_[static_cast<std::size_t>(stage)],
                       wall_ms);
        for (RoundObserver *o : observers_)
            o->onStage(ctx, stage, wall_ms);
    };

    timed(Stage::Select, [this](RoundContext &c) { stageSelect(c); });
    for (RoundObserver *o : observers_)
        o->onRoundStart(ctx);
    timed(Stage::Train, [this](RoundContext &c) { stageTrain(c); });
    timed(Stage::Encode, [this](RoundContext &c) { stageEncode(c); });
    timed(Stage::Cost, [this](RoundContext &c) { stageCost(c); });
    timed(Stage::Recover, [this](RoundContext &c) { stageRecover(c); });
    timed(Stage::Straggler,
          [this](RoundContext &c) { stageStraggler(c); });
    timed(Stage::Aggregate,
          [this](RoundContext &c) { stageAggregate(c); });
    timed(Stage::Energy, [this](RoundContext &c) { stageEnergy(c); });
    for (RoundObserver *o : observers_)
        for (const ClientRoundReport &p : ctx.result.participants)
            o->onClientReport(ctx, p);
    timed(Stage::Evaluate, [this](RoundContext &c) { stageEvaluate(c); });

    // Policy feedback runs inside the round so the decision record it
    // publishes (state, action, Q-row, reward terms) reaches observers
    // on the same round's event stream, before the trace line is cut.
    if (ctx.feedback)
        ctx.feedback(ctx);
    if (ctx.decision != nullptr)
        for (RoundObserver *o : observers_)
            o->onDecision(ctx, *ctx.decision);

    obs::addCount(rounds_counter_);
    if (ctx.result.aborted)
        obs::addCount(aborts_counter_);
    for (RoundObserver *o : observers_)
        o->onRoundEnd(ctx.result);
    return ctx.result;
}

void
RoundEngine::stageSelect(RoundContext &ctx)
{
    if (ctx.select)
        ctx.select(ctx);
    assert(ctx.selected.size() == ctx.params.size());
    assert(ctx.train_rngs.size() == ctx.selected.size());
    ctx.requested_k = ctx.selected.size();

    if (ctx.fault_model == nullptr || !ctx.fault_model->active())
        return;

    // Draw each participant's fault outcome (caller thread; the draw is
    // a pure function of (seed, round, client), so thread count is
    // irrelevant). An offline device never starts — the server
    // over-provisions by redrawing a replacement, which gets its own
    // draw as the loop reaches the appended slot; replacement stops
    // only when the fleet has no unselected device left.
    for (std::size_t i = 0; i < ctx.selected.size(); ++i) {
        ctx.faults.push_back(
            ctx.fault_model->draw(ctx.round, ctx.selected[i]));
        if (!ctx.faults[i].offline)
            continue;
        ++ctx.result.dropped_offline;
        FaultEvent event;
        event.client_id = ctx.selected[i];
        event.kind = fault::FaultKind::Offline;
        fireFault(ctx, event);
        if (ctx.replace)
            ctx.replace(ctx, i);
    }
    assert(ctx.faults.size() == ctx.selected.size());
    assert(ctx.params.size() == ctx.selected.size());
    assert(ctx.train_rngs.size() == ctx.selected.size());
}

void
RoundEngine::stageTrain(RoundContext &ctx)
{
    assert(ctx.pool != nullptr && ctx.workers != nullptr);
    assert(ctx.clients != nullptr && ctx.train_set != nullptr);
    assert(ctx.global_weights != nullptr);

    // Every participant trains locally (real SGD), fanned out across the
    // worker pool. Determinism: each client's training RNG was split from
    // (seed, round, client_id) before dispatch, every index writes only
    // its own updates[i] slot, and everything order-dependent (cost
    // modeling, reduction) happens in later stages in client-index order
    // on this thread — so the result is bit-identical to serial execution
    // regardless of scheduling.
    ctx.updates.resize(ctx.selected.size());
    ctx.pool->parallelFor(
        ctx.selected.size(), [&ctx](std::size_t i, std::size_t worker) {
            // Fault handling (decided pre-dispatch, so still
            // scheduling-independent): an offline device never trains;
            // a crashing device really runs SGD up to its sampled
            // completed-work fraction, so its partial report carries a
            // real loss even though the update itself is lost.
            double work_fraction = 1.0;
            if (!ctx.faults.empty()) {
                if (ctx.faults[i].offline)
                    return;
                if (ctx.faults[i].crash)
                    work_fraction = ctx.faults[i].crash_fraction;
            }
            nn::Model &scratch = *ctx.workers->acquire(worker).model;
            scratch.loadParams(*ctx.global_weights);
            ctx.updates[i] = (*ctx.clients)[ctx.selected[i]].localTrain(
                scratch, ctx.train_rngs[i], *ctx.train_set, ctx.params[i],
                ctx.lr, work_fraction);
        });
}

void
RoundEngine::stageEncode(RoundContext &ctx)
{
    // Traffic accounting runs for every round: the download is always
    // the full global model, and an un-encoded upload ships param_bytes.
    // A device that never came online moves no bytes; one that crashed
    // mid-training downloaded the model but never reached the upload.
    ctx.result.codec =
        ctx.codec != nullptr ? ctx.codec->kind() : comm::Codec::Identity;
    const std::uint64_t full =
        static_cast<std::uint64_t>(ctx.param_bytes);
    const bool real_codec =
        ctx.codec != nullptr && ctx.codec->kind() != comm::Codec::Identity;
    ctx.comm.assign(ctx.selected.size(), comm::CommRecord{});
    for (std::size_t i = 0; i < ctx.selected.size(); ++i) {
        if (!ctx.faults.empty() && ctx.faults[i].offline)
            continue;
        ctx.comm[i].bytes_down = full;
        if (!ctx.faults.empty() && ctx.faults[i].crash)
            continue;
        ctx.comm[i].bytes_up =
            real_codec ? ctx.codec->payloadBytes(
                             ctx.global_weights->size())
                       : full;
    }
    if (!real_codec)
        return; // Identity: no delta math, bit-inert by construction

    // Encode + decode each surviving update in place: after this stage
    // updates[i].weights holds global + decode(encode(delta)), so the
    // aggregation path sees exactly what the server received. The
    // fan-out mutates only slot-private state (updates[i], the client's
    // own residual — each client appears at most once per round) and
    // draws only from the pre-split per-(round, client) comm stream, so
    // the result is bit-identical at any thread count.
    assert(ctx.pool != nullptr && ctx.clients != nullptr);
    assert(ctx.global_weights != nullptr);
    assert(ctx.comm_rngs.size() == ctx.selected.size());
    const std::vector<float> &global = *ctx.global_weights;
    ctx.pool->parallelFor(
        ctx.selected.size(), [&ctx, &global](std::size_t i, std::size_t) {
            if (!ctx.faults.empty() &&
                (ctx.faults[i].offline || ctx.faults[i].crash))
                return; // no update ever reaches the server
            std::vector<float> &w = ctx.updates[i].weights;
            assert(w.size() == global.size());
            std::vector<float> delta(w.size());
            for (std::size_t j = 0; j < w.size(); ++j)
                delta[j] = w[j] - global[j];
            Client &client = (*ctx.clients)[ctx.selected[i]];
            comm::Encoded encoded;
            ctx.codec->encode(delta, client.commResidual(),
                              ctx.comm_rngs[i], encoded);
            ctx.codec->decode(encoded, delta);
            for (std::size_t j = 0; j < w.size(); ++j)
                w[j] = global[j] + delta[j];
            ctx.comm[i].bytes_up = encoded.payload_bytes;
            ctx.comm[i].encoded = true;
        });
    std::uint64_t encoded_updates = 0;
    for (const comm::CommRecord &r : ctx.comm)
        if (r.encoded)
            ++encoded_updates;
    obs::addCount(encoded_counter_, encoded_updates);
}

void
RoundEngine::stageCost(RoundContext &ctx)
{
    assert(ctx.clients != nullptr && ctx.cost_const != nullptr);

    // Model each participant's round cost (analytic, caller thread).
    for (std::size_t i = 0; i < ctx.selected.size(); ++i) {
        const Client &c = (*ctx.clients)[ctx.selected[i]];
        device::LocalWorkSpec work;
        work.train_flops_per_sample = ctx.train_flops;
        work.samples = c.shardSize();
        work.batch = ctx.params[i].batch;
        work.epochs = ctx.params[i].epochs;
        work.param_bytes = ctx.param_bytes;
        // Uplink payload from the Encode stage's traffic record; 0 (a
        // device that never reached the upload) falls back to the
        // uncompressed default inside the cost model — the crash branch
        // below then charges only the download anyway.
        if (i < ctx.comm.size())
            work.upload_bytes = ctx.comm[i].bytes_up;

        ClientRoundReport report;
        report.client_id = c.id();
        report.category = c.category();
        report.params = ctx.params[i];
        report.interference = c.interference();
        report.network = c.network();
        report.samples = c.shardSize();
        report.train_loss = ctx.updates[i].train_loss;
        report.cost = device::clientRoundCost(
            device::profileFor(c.category()), *ctx.cost_const, work,
            c.interference(), c.network());
        if (i < ctx.comm.size()) {
            report.bytes_up = ctx.comm[i].bytes_up;
            report.bytes_down = ctx.comm[i].bytes_down;
        }

        if (!ctx.faults.empty()) {
            const fault::FaultDraw &draw = ctx.faults[i];
            if (draw.offline) {
                // Never reached: no work, no traffic, no energy.
                report.cost = device::RoundCost{};
                report.dropped = true;
                report.drop_reason = DropReason::Offline;
                report.update_scale = 0.0;
            } else if (draw.crash) {
                // Crashed after the download, at crash_fraction of the
                // local work: charge the completed compute and the
                // download leg of the exchange; the upload never
                // happened. The update is lost, but the report
                // surfaces the completed fraction via update_scale.
                // (With an uncompressed upload the download fraction is
                // exactly 0.5, bit-identical to the former *= 0.5.)
                const double f = draw.crash_fraction;
                const double f_down =
                    report.cost.t_comm > 0.0
                        ? report.cost.t_comm_down / report.cost.t_comm
                        : 0.0;
                report.cost.t_comp *= f;
                report.cost.e_comp *= f;
                report.cost.t_comm *= f_down;
                report.cost.e_comm *= f_down;
                report.cost.t_comm_up = 0.0;
                report.cost.t_round =
                    report.cost.t_comp + report.cost.t_comm;
                report.cost.e_total =
                    report.cost.e_comp + report.cost.e_comm;
                report.dropped = true;
                report.drop_reason = DropReason::Crashed;
                report.update_scale = f;
                ++ctx.result.dropped_crashed;
                FaultEvent event;
                event.client_id = report.client_id;
                event.kind = fault::FaultKind::Crash;
                event.fraction = f;
                fireFault(ctx, event);
            }
        }
        ctx.result.participants.push_back(std::move(report));
    }
}

void
RoundEngine::stageRecover(RoundContext &ctx)
{
    for (const FaultEvent &event : recovery_->apply(ctx))
        fireFault(ctx, event);
}

void
RoundEngine::stageStraggler(RoundContext &ctx)
{
    ctx.result.round_time = straggler_->apply(ctx);
}

void
RoundEngine::stageAggregate(RoundContext &ctx)
{
    rejectDivergedUpdates(ctx);

    // Quorum gate: when dropout leaves fewer kept updates than the
    // configured fraction of the requested cohort K, aggregating would
    // fold a tiny, biased sample into the global model — abort the
    // round instead. The global weights stay untouched; the energy the
    // fleet burned is still charged in the Energy stage (a real server
    // cannot refund it), and the optimizer sees the abort via
    // RoundResult::aborted.
    if (ctx.fault_model != nullptr &&
        ctx.fault_model->config().quorum_fraction > 0.0) {
        std::size_t kept = 0;
        for (const auto &p : ctx.result.participants)
            if (!p.dropped)
                ++kept;
        const double needed =
            ctx.fault_model->config().quorum_fraction *
            static_cast<double>(ctx.requested_k);
        if (static_cast<double>(kept) < needed) {
            ctx.result.aborted = true;
            ctx.result.samples_aggregated = 0;
            util::logWarn(
                "round " + std::to_string(ctx.round) + ": aborted — " +
                std::to_string(kept) + "/" +
                std::to_string(ctx.requested_k) +
                " updates kept, quorum needs " + std::to_string(needed));
            return;
        }
    }

    const AggregationStats stats = aggregator_->aggregate(ctx);
    ctx.result.samples_aggregated = stats.samples;
    for (RoundObserver *o : observers_)
        o->onAggregate(ctx, stats);
}

void
RoundEngine::stageEnergy(RoundContext &ctx)
{
    assert(ctx.clients != nullptr);
    RoundResult &result = ctx.result;

    // Participants that finished early wait for the round's stragglers
    // with the runtime and connection held open — the redundant energy
    // adaptive per-device parameters remove (paper Fig. 5). Clients
    // dropped for divergence waited like everyone else; straggler-
    // dropped devices already disconnected at the deadline, and
    // fault-dropped ones (offline, crashed, upload given up) have no
    // live session left to hold open.
    for (auto &p : result.participants) {
        const bool waits =
            !p.dropped || p.drop_reason == DropReason::Diverged;
        if (waits && p.cost.t_round < result.round_time) {
            device::PowerModel power(device::profileFor(p.category));
            p.cost.e_wait =
                power.waitPower() * (result.round_time - p.cost.t_round);
            p.cost.e_total += p.cost.e_wait;
        }
    }

    // Fleet traffic totals (exact integer bytes; retransmissions from
    // the Recover stage are already folded into each report).
    const std::uint64_t full = static_cast<std::uint64_t>(ctx.param_bytes);
    for (const auto &p : result.participants) {
        result.bytes_up_total += p.bytes_up;
        result.bytes_down_total += p.bytes_down;
        if (ratio_hist_ != nullptr && p.bytes_up > 0)
            ratio_hist_->add(comm::CommModel::compressionRatio(
                full + static_cast<std::uint64_t>(p.upload_retries) * full,
                p.bytes_up));
    }
    obs::addCount(bytes_up_counter_, result.bytes_up_total);
    obs::addCount(bytes_down_counter_, result.bytes_down_total);

    // Fleet-wide energy bookkeeping (Eqs. 4-6).
    std::vector<bool> participating(ctx.clients->size(), false);
    for (std::size_t id : ctx.selected)
        participating[id] = true;
    for (const auto &p : result.participants)
        result.energy_participants += p.cost.e_total;
    for (std::size_t id = 0; id < ctx.clients->size(); ++id) {
        if (!participating[id]) {
            device::PowerModel power(
                device::profileFor((*ctx.clients)[id].category()));
            result.energy_idle += power.idleEnergy(result.round_time);
        }
    }
    result.energy_total = result.energy_participants + result.energy_idle;
}

void
RoundEngine::stageEvaluate(RoundContext &ctx)
{
    assert(ctx.evaluate);
    const nn::Model::EvalResult eval = ctx.evaluate();
    ctx.result.test_accuracy = eval.accuracy;
    ctx.result.test_loss = eval.loss;

    double loss_sum = 0.0;
    std::size_t kept = 0;
    for (const auto &p : ctx.result.participants) {
        if (!p.dropped) {
            loss_sum += p.train_loss;
            ++kept;
        }
    }
    ctx.result.train_loss =
        kept > 0 ? loss_sum / static_cast<double>(kept) : 0.0;
}

} // namespace round
} // namespace fl
} // namespace fedgpo
