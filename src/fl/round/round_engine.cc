#include "fl/round/round_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <string>

#include "device/power_model.h"
#include "util/logging.h"

namespace fedgpo {
namespace fl {
namespace round {

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Select:
        return "select";
      case Stage::Train:
        return "train";
      case Stage::Cost:
        return "cost";
      case Stage::Straggler:
        return "straggler";
      case Stage::Aggregate:
        return "aggregate";
      case Stage::Energy:
        return "energy";
      case Stage::Evaluate:
        return "evaluate";
    }
    return "unknown";
}

std::size_t
rejectDivergedUpdates(RoundContext &ctx)
{
    assert(ctx.updates.size() == ctx.result.participants.size());
    std::size_t rejected = 0;
    for (std::size_t i = 0; i < ctx.updates.size(); ++i) {
        ClientRoundReport &p = ctx.result.participants[i];
        if (p.dropped)
            continue;
        bool finite = true;
        for (float v : ctx.updates[i].weights) {
            if (!std::isfinite(v)) {
                finite = false;
                break;
            }
        }
        if (!finite) {
            p.dropped = true;
            p.drop_reason = DropReason::Diverged;
            ++ctx.result.dropped_diverged;
            ++rejected;
            util::logWarn("round " + std::to_string(ctx.round) +
                          ": client " + std::to_string(p.client_id) +
                          " update diverged; rejected");
        }
    }
    return rejected;
}

RoundEngine::RoundEngine(std::unique_ptr<Aggregator> aggregator,
                         std::unique_ptr<StragglerPolicy> straggler)
    : aggregator_(std::move(aggregator)), straggler_(std::move(straggler))
{
    assert(aggregator_ != nullptr && straggler_ != nullptr);
}

void
RoundEngine::setAggregator(std::unique_ptr<Aggregator> aggregator)
{
    assert(aggregator != nullptr);
    aggregator_ = std::move(aggregator);
}

void
RoundEngine::setStragglerPolicy(std::unique_ptr<StragglerPolicy> straggler)
{
    assert(straggler != nullptr);
    straggler_ = std::move(straggler);
}

void
RoundEngine::addObserver(RoundObserver *observer)
{
    assert(observer != nullptr);
    observers_.push_back(observer);
}

void
RoundEngine::removeObserver(RoundObserver *observer)
{
    observers_.erase(
        std::remove(observers_.begin(), observers_.end(), observer),
        observers_.end());
}

RoundResult
RoundEngine::run(RoundContext &ctx)
{
    ctx.result.round = ctx.round;

    using clock = std::chrono::steady_clock;
    auto timed = [&](Stage stage, auto &&stage_fn) {
        const auto t0 = clock::now();
        stage_fn(ctx);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(clock::now() - t0)
                .count();
        for (RoundObserver *o : observers_)
            o->onStage(ctx, stage, wall_ms);
    };

    timed(Stage::Select, [this](RoundContext &c) { stageSelect(c); });
    for (RoundObserver *o : observers_)
        o->onRoundStart(ctx);
    timed(Stage::Train, [this](RoundContext &c) { stageTrain(c); });
    timed(Stage::Cost, [this](RoundContext &c) { stageCost(c); });
    timed(Stage::Straggler,
          [this](RoundContext &c) { stageStraggler(c); });
    timed(Stage::Aggregate,
          [this](RoundContext &c) { stageAggregate(c); });
    timed(Stage::Energy, [this](RoundContext &c) { stageEnergy(c); });
    for (RoundObserver *o : observers_)
        for (const ClientRoundReport &p : ctx.result.participants)
            o->onClientReport(ctx, p);
    timed(Stage::Evaluate, [this](RoundContext &c) { stageEvaluate(c); });

    for (RoundObserver *o : observers_)
        o->onRoundEnd(ctx.result);
    return ctx.result;
}

void
RoundEngine::stageSelect(RoundContext &ctx)
{
    if (ctx.select)
        ctx.select(ctx);
    assert(ctx.selected.size() == ctx.params.size());
    assert(ctx.train_rngs.size() == ctx.selected.size());
}

void
RoundEngine::stageTrain(RoundContext &ctx)
{
    assert(ctx.pool != nullptr && ctx.workers != nullptr);
    assert(ctx.clients != nullptr && ctx.train_set != nullptr);
    assert(ctx.global_weights != nullptr);

    // Every participant trains locally (real SGD), fanned out across the
    // worker pool. Determinism: each client's training RNG was split from
    // (seed, round, client_id) before dispatch, every index writes only
    // its own updates[i] slot, and everything order-dependent (cost
    // modeling, reduction) happens in later stages in client-index order
    // on this thread — so the result is bit-identical to serial execution
    // regardless of scheduling.
    ctx.updates.resize(ctx.selected.size());
    ctx.pool->parallelFor(
        ctx.selected.size(), [&ctx](std::size_t i, std::size_t worker) {
            nn::Model &scratch = *ctx.workers->acquire(worker).model;
            scratch.loadParams(*ctx.global_weights);
            ctx.updates[i] = (*ctx.clients)[ctx.selected[i]].localTrain(
                scratch, ctx.train_rngs[i], *ctx.train_set, ctx.params[i],
                ctx.lr);
        });
}

void
RoundEngine::stageCost(RoundContext &ctx)
{
    assert(ctx.clients != nullptr && ctx.cost_const != nullptr);

    // Model each participant's round cost (analytic, caller thread).
    for (std::size_t i = 0; i < ctx.selected.size(); ++i) {
        const Client &c = (*ctx.clients)[ctx.selected[i]];
        device::LocalWorkSpec work;
        work.train_flops_per_sample = ctx.train_flops;
        work.samples = c.shardSize();
        work.batch = ctx.params[i].batch;
        work.epochs = ctx.params[i].epochs;
        work.param_bytes = ctx.param_bytes;

        ClientRoundReport report;
        report.client_id = c.id();
        report.category = c.category();
        report.params = ctx.params[i];
        report.interference = c.interference();
        report.network = c.network();
        report.samples = c.shardSize();
        report.train_loss = ctx.updates[i].train_loss;
        report.cost = device::clientRoundCost(
            device::profileFor(c.category()), *ctx.cost_const, work,
            c.interference(), c.network());
        ctx.result.participants.push_back(std::move(report));
    }
}

void
RoundEngine::stageStraggler(RoundContext &ctx)
{
    ctx.result.round_time = straggler_->apply(ctx);
}

void
RoundEngine::stageAggregate(RoundContext &ctx)
{
    rejectDivergedUpdates(ctx);
    const AggregationStats stats = aggregator_->aggregate(ctx);
    ctx.result.samples_aggregated = stats.samples;
    for (RoundObserver *o : observers_)
        o->onAggregate(ctx, stats);
}

void
RoundEngine::stageEnergy(RoundContext &ctx)
{
    assert(ctx.clients != nullptr);
    RoundResult &result = ctx.result;

    // Participants that finished early wait for the round's stragglers
    // with the runtime and connection held open — the redundant energy
    // adaptive per-device parameters remove (paper Fig. 5). Clients
    // dropped for divergence waited like everyone else; only
    // straggler-dropped devices already disconnected at the deadline.
    for (auto &p : result.participants) {
        if (p.drop_reason != DropReason::Straggler &&
            p.cost.t_round < result.round_time) {
            device::PowerModel power(device::profileFor(p.category));
            p.cost.e_wait =
                power.waitPower() * (result.round_time - p.cost.t_round);
            p.cost.e_total += p.cost.e_wait;
        }
    }

    // Fleet-wide energy bookkeeping (Eqs. 4-6).
    std::vector<bool> participating(ctx.clients->size(), false);
    for (std::size_t id : ctx.selected)
        participating[id] = true;
    for (const auto &p : result.participants)
        result.energy_participants += p.cost.e_total;
    for (std::size_t id = 0; id < ctx.clients->size(); ++id) {
        if (!participating[id]) {
            device::PowerModel power(
                device::profileFor((*ctx.clients)[id].category()));
            result.energy_idle += power.idleEnergy(result.round_time);
        }
    }
    result.energy_total = result.energy_participants + result.energy_idle;
}

void
RoundEngine::stageEvaluate(RoundContext &ctx)
{
    assert(ctx.evaluate);
    const nn::Model::EvalResult eval = ctx.evaluate();
    ctx.result.test_accuracy = eval.accuracy;
    ctx.result.test_loss = eval.loss;

    double loss_sum = 0.0;
    std::size_t kept = 0;
    for (const auto &p : ctx.result.participants) {
        if (!p.dropped) {
            loss_sum += p.train_loss;
            ++kept;
        }
    }
    ctx.result.train_loss =
        kept > 0 ? loss_sum / static_cast<double>(kept) : 0.0;
}

} // namespace round
} // namespace fl
} // namespace fedgpo
