#include "fl/round/aggregator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/logging.h"

namespace fedgpo {
namespace fl {
namespace round {

namespace {

/** Gather stats over the kept participants and their sample mass. */
AggregationStats
keptStats(const RoundContext &ctx)
{
    AggregationStats stats;
    for (std::size_t i = 0; i < ctx.result.participants.size(); ++i) {
        const ClientRoundReport &p = ctx.result.participants[i];
        if (p.dropped)
            continue;
        ++stats.contributors;
        stats.samples += ctx.updates[i].samples;
        if (p.update_scale < 1.0)
            ++stats.scaled;
    }
    return stats;
}

} // namespace

AggregationStats
FedAvgAggregator::aggregate(RoundContext &ctx)
{
    assert(ctx.global_weights != nullptr);
    assert(ctx.updates.size() == ctx.result.participants.size());
    std::vector<float> &gw = *ctx.global_weights;

    const AggregationStats stats = keptStats(ctx);
    if (stats.samples == 0)
        return stats;

    std::vector<double> acc(gw.size(), 0.0);
    for (std::size_t i = 0; i < ctx.updates.size(); ++i) {
        const ClientRoundReport &p = ctx.result.participants[i];
        if (p.dropped)
            continue;
        const double wgt = static_cast<double>(ctx.updates[i].samples) /
                           static_cast<double>(stats.samples);
        const auto &wv = ctx.updates[i].weights;
        assert(wv.size() == acc.size());
        if (p.update_scale == 1.0) {
            // Hot path, kept byte-for-byte identical to the monolithic
            // round loop: acc += wgt * w.
            for (std::size_t j = 0; j < acc.size(); ++j)
                acc[j] += wgt * wv[j];
        } else {
            // Partial contribution: blend toward the previous globals.
            const double s = p.update_scale;
            for (std::size_t j = 0; j < acc.size(); ++j)
                acc[j] += wgt * (gw[j] + s * (wv[j] - gw[j]));
        }
    }
    for (std::size_t j = 0; j < acc.size(); ++j)
        gw[j] = static_cast<float>(acc[j]);
    if (ctx.global_model != nullptr)
        ctx.global_model->loadParams(gw);
    return stats;
}

TrimmedMeanAggregator::TrimmedMeanAggregator(double trim_fraction)
    : trim_fraction_(std::clamp(trim_fraction, 0.0, 0.5))
{
}

AggregationStats
TrimmedMeanAggregator::aggregate(RoundContext &ctx)
{
    assert(ctx.global_weights != nullptr);
    assert(ctx.updates.size() == ctx.result.participants.size());
    std::vector<float> &gw = *ctx.global_weights;

    const AggregationStats stats = keptStats(ctx);
    if (stats.contributors == 0)
        return stats;

    std::vector<std::size_t> kept;
    for (std::size_t i = 0; i < ctx.result.participants.size(); ++i)
        if (!ctx.result.participants[i].dropped)
            kept.push_back(i);

    const std::size_t n = kept.size();
    std::size_t trim =
        static_cast<std::size_t>(trim_fraction_ * static_cast<double>(n));
    if (2 * trim >= n)
        trim = (n - 1) / 2;

    std::vector<double> column(n);
    for (std::size_t j = 0; j < gw.size(); ++j) {
        for (std::size_t c = 0; c < n; ++c) {
            const std::size_t i = kept[c];
            const ClientRoundReport &p = ctx.result.participants[i];
            const double w = ctx.updates[i].weights[j];
            column[c] = p.update_scale == 1.0
                            ? w
                            : gw[j] + p.update_scale * (w - gw[j]);
        }
        std::sort(column.begin(), column.end());
        double sum = 0.0;
        for (std::size_t c = trim; c < n - trim; ++c)
            sum += column[c];
        gw[j] = static_cast<float>(sum /
                                   static_cast<double>(n - 2 * trim));
    }
    if (ctx.global_model != nullptr)
        ctx.global_model->loadParams(gw);
    return stats;
}

} // namespace round
} // namespace fl
} // namespace fedgpo
