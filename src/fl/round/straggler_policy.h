/**
 * @file
 * Pluggable straggler handling for the round pipeline.
 *
 * Once per-participant costs are modeled, a StragglerPolicy decides how
 * the server treats devices that would gate the round: the paper's
 * baselines drop them at a deadline (DeadlineDropPolicy), while
 * AcceptPartialPolicy keeps a late client's partial progress, scaled by
 * the fraction of its local work it completed before the deadline.
 */

#ifndef FEDGPO_FL_ROUND_STRAGGLER_POLICY_H_
#define FEDGPO_FL_ROUND_STRAGGLER_POLICY_H_

#include <string>

#include "fl/round/round_context.h"

namespace fedgpo {
namespace fl {
namespace round {

/**
 * Strategy applied after the Cost stage.
 *
 * Contract: reads the modeled costs in ctx.result.participants, may mark
 * participants dropped (setting drop_reason and
 * ctx.result.dropped_straggler), prorate their energy, or set
 * update_scale < 1 for partial acceptance — and returns the round's
 * gating wall-clock time (the time every kept device's result is in).
 */
class StragglerPolicy
{
  public:
    virtual ~StragglerPolicy() = default;

    /** Display name ("deadline_drop", "accept_partial"). */
    virtual std::string name() const = 0;

    /** Apply the policy; returns the round's gating time in seconds. */
    virtual double apply(RoundContext &ctx) = 0;
};

/**
 * The paper's drop policy (and that of the systems it compares against):
 * devices beyond deadline_factor x the median finish time are dropped and
 * their updates discarded. A dropped device computes until the server
 * gives up on it, so it burns energy for the deadline window
 * (energy prorated by deadline / t_round).
 */
class DeadlineDropPolicy : public StragglerPolicy
{
  public:
    explicit DeadlineDropPolicy(double deadline_factor = 3.0);

    std::string name() const override { return "deadline_drop"; }
    double apply(RoundContext &ctx) override;

    double deadlineFactor() const { return deadline_factor_; }

  private:
    double deadline_factor_;
};

/**
 * Partial-update acceptance: a late client is stopped at the deadline
 * like under DeadlineDropPolicy (same energy proration, same round
 * gating time), but instead of discarding its work the server blends in
 * the completed fraction of its update — update_scale is set to the
 * fraction of its local epochs it finished (deadline / t_round, time
 * being linear in epochs), and the aggregator contributes
 * g + scale * (w - g) for it.
 */
class AcceptPartialPolicy : public StragglerPolicy
{
  public:
    explicit AcceptPartialPolicy(double deadline_factor = 3.0);

    std::string name() const override { return "accept_partial"; }
    double apply(RoundContext &ctx) override;

    double deadlineFactor() const { return deadline_factor_; }

  private:
    double deadline_factor_;
};

} // namespace round
} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_ROUND_STRAGGLER_POLICY_H_
