/**
 * @file
 * Pluggable upload-failure recovery for the round pipeline.
 *
 * After the Cost stage has modeled each participant's baseline round
 * cost, a RecoveryPolicy decides how the server handles transient
 * upload failures drawn by the fault model: the default
 * RetryBackoffPolicy retries with capped exponential backoff, charging
 * each retransmission's modeled airtime and radio energy (Eq. 3 on the
 * upload payload) into the client's RoundCost — so a flaky uplink makes
 * a device slower and hungrier, exactly the coupling the straggler
 * policy then acts on — and gives the client up (DropReason::
 * UploadFailed) once the retry budget is exhausted.
 */

#ifndef FEDGPO_FL_ROUND_RECOVERY_POLICY_H_
#define FEDGPO_FL_ROUND_RECOVERY_POLICY_H_

#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "fl/round/observer.h"
#include "fl/round/round_context.h"

namespace fedgpo {
namespace fl {
namespace round {

/**
 * Strategy applied after the Cost stage (before straggler handling, so
 * retry delays count toward the deadline).
 *
 * Contract: reads ctx.faults (no-op when empty), may add retry time and
 * energy to participant costs, mark participants dropped
 * (DropReason::UploadFailed, ctx.result.dropped_upload), and count
 * retransmissions in ctx.result.upload_retries / per-report
 * upload_retries. Returns the fault events it handled, in a
 * deterministic order; the engine forwards them to observers.
 */
class RecoveryPolicy
{
  public:
    virtual ~RecoveryPolicy() = default;

    /** Display name ("retry_backoff"). */
    virtual std::string name() const = 0;

    /** Apply the policy; returns the handled fault events in order. */
    virtual std::vector<FaultEvent> apply(RoundContext &ctx) = 0;
};

/**
 * Retry with capped exponential backoff. Attempt 1's airtime is already
 * part of the modeled round cost; each failed attempt costs one full
 * upload retransmission (airtime + radio energy at the device's current
 * signal) plus the backoff wait before it, all added to the client's
 * round wall clock. A client whose failures exceed the retry budget is
 * dropped — its energy stays charged (the radio really burned it).
 */
class RetryBackoffPolicy : public RecoveryPolicy
{
  public:
    explicit RetryBackoffPolicy(const fault::FaultConfig &config);

    std::string name() const override { return "retry_backoff"; }
    std::vector<FaultEvent> apply(RoundContext &ctx) override;

    int maxRetries() const { return config_.max_upload_retries; }

  private:
    fault::FaultConfig config_;
};

} // namespace round
} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_ROUND_RECOVERY_POLICY_H_
