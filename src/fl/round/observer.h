/**
 * @file
 * Observer interface over the round pipeline: one typed event stream that
 * campaign runners, figure benches, and trace writers consume instead of
 * each re-deriving numbers from RoundResult after the fact.
 *
 * Events fire on the caller thread, in a fixed order per round:
 * onRoundStart, one onStage per pipeline stage (in stage order), one
 * onClientReport per participant (after Energy, when reports are final),
 * onAggregate (after the Aggregate stage), and onRoundEnd. Observers must
 * not mutate the context; wall-clock timings are host-side
 * instrumentation only and never feed back into modeled results.
 */

#ifndef FEDGPO_FL_ROUND_OBSERVER_H_
#define FEDGPO_FL_ROUND_OBSERVER_H_

#include <cstddef>

#include "fl/round/aggregator.h"
#include "fl/round/round_context.h"
#include "fl/types.h"
#include "obs/decision.h"

namespace fedgpo {
namespace fl {
namespace round {

/**
 * The engine's stage sequence (Algorithm 1, decomposed).
 */
enum class Stage
{
    Select,    //!< choose K participants + per-device (B, E)
    Train,     //!< real local SGD, fanned over the worker pool
    Encode,    //!< update codec: encode/decode + traffic accounting
    Cost,      //!< analytic per-device time/energy (Eqs. 2-3)
    Recover,   //!< RecoveryPolicy: upload retries, backoff, give-ups
    Straggler, //!< StragglerPolicy: drops/scaling + round gating time
    Aggregate, //!< divergence rejection + quorum gate + Aggregator
    Energy,    //!< wait energy + fleet-wide bookkeeping (Eqs. 4-6)
    Evaluate,  //!< test-set accuracy/loss + train-loss summary
};

/** Number of pipeline stages. */
inline constexpr std::size_t kStageCount = 9;

/** Short stable label for a stage ("select", "train", ...). */
const char *stageName(Stage stage);

/**
 * One injected fault, reported as it is handled. Offline events fire
 * during the Select stage (before onRoundStart); Crash events during
 * the Cost stage; UploadRetry/UploadExhausted during the Recover
 * stage.
 */
struct FaultEvent
{
    std::size_t client_id = 0;
    fault::FaultKind kind = fault::FaultKind::Offline;
    int attempt = 0;       //!< 1-based failed upload attempt (uploads)
    double backoff_s = 0.0; //!< wait before the retry (UploadRetry)
    double fraction = 0.0;  //!< completed-work fraction (Crash)
};

/**
 * Receiver of round-pipeline events. All handlers default to no-ops so
 * observers override only what they consume.
 */
class RoundObserver
{
  public:
    virtual ~RoundObserver() = default;

    /** Selection is done; the round body is about to run. */
    virtual void
    onRoundStart(const RoundContext &ctx)
    {
        (void)ctx;
    }

    /**
     * One pipeline stage finished. @p wall_ms is host wall-clock time of
     * the stage in milliseconds (instrumentation only — modeled time
     * lives in RoundResult::round_time).
     */
    virtual void
    onStage(const RoundContext &ctx, Stage stage, double wall_ms)
    {
        (void)ctx;
        (void)stage;
        (void)wall_ms;
    }

    /** One participant's report is final (drops, energy, scale set). */
    virtual void
    onClientReport(const RoundContext &ctx, const ClientRoundReport &report)
    {
        (void)ctx;
        (void)report;
    }

    /** The Aggregate stage finished (not fired on an aborted round). */
    virtual void
    onAggregate(const RoundContext &ctx, const AggregationStats &stats)
    {
        (void)ctx;
        (void)stats;
    }

    /**
     * One injected fault was handled. Fires on the caller thread as
     * the owning stage processes the fault; Offline events precede
     * onRoundStart (the fleet is still being assembled).
     */
    virtual void
    onFault(const RoundContext &ctx, const FaultEvent &event)
    {
        (void)ctx;
        (void)event;
    }

    /**
     * The policy published its decision record for this round (observed
     * state, chosen action, Q-row, reward decomposition). Fires between
     * the feedback hook and onRoundEnd; only on rounds where the driving
     * policy keeps a record (plain FedAvg rounds fire no onDecision).
     */
    virtual void
    onDecision(const RoundContext &ctx, const obs::DecisionRecord &record)
    {
        (void)ctx;
        (void)record;
    }

    /** The round is complete; the result is fully populated. */
    virtual void
    onRoundEnd(const RoundResult &result)
    {
        (void)result;
    }
};

} // namespace round
} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_ROUND_OBSERVER_H_
