/**
 * @file
 * Pluggable server-side aggregation strategies for the round pipeline.
 *
 * An Aggregator combines the kept participant updates of one round into
 * new global weights. The default FedAvgAggregator reproduces Algorithm
 * 1's sample-weighted average bit-for-bit; TrimmedMeanAggregator is a
 * robust variant that survives poisoned or outlier updates by trimming
 * coordinate-wise extremes before averaging.
 */

#ifndef FEDGPO_FL_ROUND_AGGREGATOR_H_
#define FEDGPO_FL_ROUND_AGGREGATOR_H_

#include <cstddef>
#include <string>

#include "fl/round/round_context.h"

namespace fedgpo {
namespace fl {
namespace round {

/**
 * Statistics the Aggregate stage reports to observers.
 */
struct AggregationStats
{
    std::size_t contributors = 0; //!< updates blended into the global model
    std::size_t samples = 0;      //!< their total sample mass
    std::size_t scaled = 0;       //!< contributors with update_scale < 1
};

/**
 * Strategy that folds the round's kept updates into the global weights.
 *
 * Contract: reads ctx.updates and ctx.result.participants (drop flags and
 * update_scale already final), writes *ctx.global_weights, and loads the
 * new weights into *ctx.global_model when it is non-null. When no update
 * is kept the global weights must be left untouched. A participant with
 * update_scale s < 1 contributes g + s * (w - g) (its update blended
 * toward the previous global weights g) instead of its raw weights w.
 */
class Aggregator
{
  public:
    virtual ~Aggregator() = default;

    /** Display name ("fedavg", "trimmed_mean"). */
    virtual std::string name() const = 0;

    /** Combine kept updates into new global weights. */
    virtual AggregationStats aggregate(RoundContext &ctx) = 0;
};

/**
 * FedAvg (Algorithm 1): sample-weighted average over kept updates,
 * accumulated in double. With all update_scale == 1 this is bit-identical
 * to the pre-engine monolithic round loop.
 */
class FedAvgAggregator : public Aggregator
{
  public:
    std::string name() const override { return "fedavg"; }
    AggregationStats aggregate(RoundContext &ctx) override;
};

/**
 * Coordinate-wise trimmed mean: for every weight coordinate, the highest
 * and lowest trim_fraction of contributor values are discarded and the
 * rest averaged (unweighted — sample weighting would let a poisoned
 * client regain influence through claimed sample counts).
 */
class TrimmedMeanAggregator : public Aggregator
{
  public:
    /**
     * @param trim_fraction Fraction of contributors trimmed from EACH
     *                      end, clamped so at least one value survives.
     */
    explicit TrimmedMeanAggregator(double trim_fraction = 0.2);

    std::string name() const override { return "trimmed_mean"; }
    AggregationStats aggregate(RoundContext &ctx) override;

    double trimFraction() const { return trim_fraction_; }

  private:
    double trim_fraction_;
};

} // namespace round
} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_ROUND_AGGREGATOR_H_
