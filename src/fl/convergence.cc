#include "fl/convergence.h"

#include <algorithm>

namespace fedgpo {
namespace fl {

ConvergenceTracker::ConvergenceTracker(std::size_t window, double epsilon,
                                       double floor)
    : window_(std::max<std::size_t>(window, 2)), epsilon_(epsilon),
      floor_(floor)
{
}

void
ConvergenceTracker::add(double accuracy)
{
    history_.push_back(accuracy);
    best_ = std::max(best_, accuracy);
    if (converged_round_ >= 0 || history_.size() < window_)
        return;
    const std::size_t n = history_.size();
    const double newest = history_[n - 1];
    const double oldest = history_[n - window_];
    if (newest >= floor_ && newest - oldest < epsilon_)
        converged_round_ = static_cast<int>(n);
}

int
roundsToAccuracy(const std::vector<double> &accuracy, double target)
{
    for (std::size_t i = 0; i < accuracy.size(); ++i)
        if (accuracy[i] >= target)
            return static_cast<int>(i + 1);
    return -1;
}

} // namespace fl
} // namespace fedgpo
