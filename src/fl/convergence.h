/**
 * @file
 * Convergence detection: "the training loss settles to a certain value
 * while the training accuracy gets to an error range of the value
 * achieved by the baseline in an ideal environment" (paper Section 5.1,
 * citing Mitchell's definition).
 */

#ifndef FEDGPO_FL_CONVERGENCE_H_
#define FEDGPO_FL_CONVERGENCE_H_

#include <cstddef>
#include <vector>

namespace fedgpo {
namespace fl {

/**
 * Streaming convergence detector over the per-round test accuracy.
 *
 * Declares convergence at the first round whose trailing-window accuracy
 * improvement falls below epsilon while accuracy exceeds a floor (so a
 * model stuck at chance level is never "converged").
 */
class ConvergenceTracker
{
  public:
    /**
     * @param window     Trailing window length (rounds).
     * @param epsilon    Maximum accuracy improvement across the window
     *                   still counted as "settled".
     * @param floor      Minimum accuracy for convergence to be meaningful.
     */
    explicit ConvergenceTracker(std::size_t window = 5,
                                double epsilon = 0.005, double floor = 0.5);

    /** Record one round's test accuracy. */
    void add(double accuracy);

    /** True once the settle criterion has been met. */
    bool converged() const { return converged_round_ >= 0; }

    /** Round index (1-based) where convergence was declared, or -1. */
    int convergedRound() const { return converged_round_; }

    /** Best accuracy seen so far. */
    double bestAccuracy() const { return best_; }

    /** Full accuracy history. */
    const std::vector<double> &history() const { return history_; }

  private:
    std::size_t window_;
    double epsilon_;
    double floor_;
    std::vector<double> history_;
    int converged_round_ = -1;
    double best_ = 0.0;
};

/**
 * Offline variant: first 1-based round at which an accuracy trace reaches
 * `target`; -1 if never. Used for time-to-accuracy comparisons.
 */
int roundsToAccuracy(const std::vector<double> &accuracy, double target);

} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_CONVERGENCE_H_
