#include "fl/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "data/synthetic.h"
#include "device/cost_model.h"
#include "device/power_model.h"
#include "runtime/runtime_config.h"
#include "util/logging.h"
#include "util/stats.h"

namespace fedgpo {
namespace fl {

namespace {

data::Dataset
makeTrainSet(models::Workload w, std::size_t n, util::Rng &rng)
{
    switch (w) {
      case models::Workload::CnnMnist:
        return data::makeSyntheticMnist(n, rng);
      case models::Workload::LstmShakespeare:
        return data::makeSyntheticShakespeare(n, rng);
      case models::Workload::MobileNetImageNet:
        return data::makeSyntheticImageNet(n, rng);
    }
    util::fatal("makeTrainSet: unknown workload");
}

} // namespace

FlSimulator::FlSimulator(const FlConfig &config)
    : config_(config), rng_(config.seed),
      network_model_(config.network_unstable)
{
    if (config_.n_devices == 0)
        util::fatal("FlConfig: n_devices must be positive");

    // Train and test sets share the generator stream so class prototypes
    // (or the Markov chain) match between them: test measures the same
    // concept the clients train on.
    util::Rng data_rng = rng_.split(1);
    const std::size_t total = config_.train_samples + config_.test_samples;
    data::Dataset all = makeTrainSet(config_.workload, total, data_rng);

    // Split off the test set (tail samples).
    {
        std::vector<std::size_t> train_idx(config_.train_samples);
        std::vector<std::size_t> test_idx(config_.test_samples);
        for (std::size_t i = 0; i < config_.train_samples; ++i)
            train_idx[i] = i;
        for (std::size_t i = 0; i < config_.test_samples; ++i)
            test_idx[i] = config_.train_samples + i;
        tensor::Tensor feat;
        std::vector<int> labels;
        all.gather(train_idx, feat, labels);
        train_set_ = data::Dataset(std::move(feat), std::move(labels),
                                   all.numClasses());
        tensor::Tensor tfeat;
        std::vector<int> tlabels;
        all.gather(test_idx, tfeat, tlabels);
        test_set_ = data::Dataset(std::move(tfeat), std::move(tlabels),
                                  all.numClasses());
    }

    global_model_ = models::buildModel(config_.workload, config_.seed ^ 7);
    census_ = global_model_->census();
    train_flops_ = global_model_->trainFlopsPerSample();
    param_bytes_ = global_model_->paramBytes();
    global_weights_ = global_model_->saveParams();
    lr_ = config_.lr > 0.0 ? config_.lr
                           : models::defaultLearningRate(config_.workload);

    // Execution engine: a fixed-size worker pool plus one lazily built
    // scratch model per worker. Scratch init seeds are irrelevant — every
    // ClientUpdate starts by loading the global weights.
    pool_ = std::make_unique<runtime::ThreadPool>(
        runtime::resolveThreads(config_.threads));
    workers_ = std::make_unique<runtime::WorkerContextPool>(
        pool_->size(), [workload = config_.workload, seed = config_.seed] {
            return models::buildModel(workload, seed ^ 7);
        });

    // Partition the training data over the fleet.
    util::Rng part_rng = rng_.split(2);
    data::Partition shards =
        data::makePartition(train_set_, config_.n_devices,
                            config_.distribution, part_rng,
                            config_.dirichlet_alpha);

    // Build the fleet with the paper's 15/35/50 tier mix.
    auto tiers = device::fleetComposition(config_.n_devices);
    clients_.reserve(config_.n_devices);
    for (std::size_t i = 0; i < config_.n_devices; ++i) {
        device::InterferenceProcess interference(config_.interference);
        clients_.emplace_back(i, tiers[i], std::move(shards[i]),
                              std::move(interference),
                              rng_.split(100 + i));
    }
}

std::vector<std::size_t>
FlSimulator::selectClients(int k)
{
    const int capped =
        std::clamp(k, 1, static_cast<int>(clients_.size()));
    return rng_.sampleWithoutReplacement(static_cast<std::size_t>(capped),
                                         clients_.size());
}

std::vector<DeviceObservation>
FlSimulator::observe(const std::vector<std::size_t> &selected) const
{
    std::vector<DeviceObservation> out;
    out.reserve(selected.size());
    for (std::size_t id : selected) {
        const Client &c = clients_[id];
        DeviceObservation obs;
        obs.client_id = id;
        obs.category = c.category();
        obs.interference = c.interference();
        obs.network = c.network();
        obs.data_classes = train_set_.classesPresent(c.shard());
        obs.total_classes = train_set_.numClasses();
        obs.shard_size = c.shardSize();
        out.push_back(obs);
    }
    return out;
}

double
FlSimulator::predictedRoundTime(std::size_t client_id,
                                const PerDeviceParams &params) const
{
    const Client &c = clients_.at(client_id);
    device::LocalWorkSpec work;
    work.train_flops_per_sample = train_flops_;
    work.samples = c.shardSize();
    work.batch = params.batch;
    work.epochs = params.epochs;
    work.param_bytes = param_bytes_;
    auto cost = device::clientRoundCost(
        device::profileFor(c.category()), device::costFor(config_.workload),
        work, c.interference(), c.network());
    return cost.t_round;
}

RoundResult
FlSimulator::runRound(optim::ParamOptimizer &policy)
{
    // Advance every device's stochastic runtime state once per round.
    for (auto &c : clients_)
        c.stepRuntime(network_model_);

    const int k = policy.chooseClients(static_cast<int>(clients_.size()));
    auto selected = selectClients(k);
    auto observations = observe(selected);
    auto params = policy.assign(observations, census_);
    assert(params.size() == selected.size());
    RoundResult result = executeRound(selected, params);
    policy.feedback(result);
    return result;
}

RoundResult
FlSimulator::runRoundWithParams(const GlobalParams &params)
{
    for (auto &c : clients_)
        c.stepRuntime(network_model_);
    auto selected = selectClients(params.clients);
    std::vector<PerDeviceParams> per_device(
        selected.size(), PerDeviceParams{params.batch, params.epochs});
    return executeRound(selected, per_device);
}

util::Rng
FlSimulator::trainRng(std::size_t client_id) const
{
    // A fresh chain Rng(seed') -> split(round) -> split(client) depends on
    // nothing consumed elsewhere; the xor constant keeps the root state
    // distinct from the selection/data/partition streams of rng_.
    util::Rng root(config_.seed ^ 0x7452414e474eULL); // "TRaNGN"
    util::Rng round_stream = root.split(static_cast<std::uint64_t>(round_));
    return round_stream.split(client_id);
}

RoundResult
FlSimulator::executeRound(const std::vector<std::size_t> &selected,
                          const std::vector<PerDeviceParams> &params)
{
    assert(selected.size() == params.size());
    RoundResult result;
    result.round = ++round_;

    const auto &cost_const = device::costFor(config_.workload);

    // Phase 1: every participant trains locally (real SGD), fanned out
    // across the worker pool. Determinism: each client's training RNG is
    // split from (seed, round, client_id) on this thread before dispatch,
    // every index writes only its own updates[i] slot, and everything
    // order-dependent (cost modeling, reduction) happens below in
    // client-index order on this thread — so the result is bit-identical
    // to serial execution regardless of scheduling.
    std::vector<Client::UpdateResult> updates(selected.size());
    std::vector<util::Rng> train_rngs;
    train_rngs.reserve(selected.size());
    for (std::size_t id : selected)
        train_rngs.push_back(trainRng(id));
    pool_->parallelFor(
        selected.size(), [&](std::size_t i, std::size_t worker) {
            nn::Model &scratch = *workers_->acquire(worker).model;
            scratch.loadParams(global_weights_);
            updates[i] = clients_[selected[i]].localTrain(
                scratch, train_rngs[i], train_set_, params[i], lr_);
        });

    // Model each participant's round cost (analytic, caller thread).
    std::vector<double> times;
    times.reserve(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const Client &c = clients_[selected[i]];
        device::LocalWorkSpec work;
        work.train_flops_per_sample = train_flops_;
        work.samples = c.shardSize();
        work.batch = params[i].batch;
        work.epochs = params[i].epochs;
        work.param_bytes = param_bytes_;

        ClientRoundReport report;
        report.client_id = c.id();
        report.category = c.category();
        report.params = params[i];
        report.interference = c.interference();
        report.network = c.network();
        report.samples = c.shardSize();
        report.train_loss = updates[i].train_loss;
        report.cost = device::clientRoundCost(
            device::profileFor(c.category()), cost_const, work,
            c.interference(), c.network());
        times.push_back(report.cost.t_round);
        result.participants.push_back(std::move(report));
    }

    // Phase 2: straggler deadline. Devices beyond deadline_factor x the
    // median finish time are dropped (their updates discarded), matching
    // the drop policy of the systems the paper compares against.
    const double median_t = util::quantile(times, 0.5);
    const double deadline = config_.deadline_factor * median_t;
    double round_time = 0.0;
    for (auto &p : result.participants) {
        if (p.cost.t_round > deadline) {
            p.dropped = true;
            ++result.dropped_count;
            // The device computes until the server gives up on it, then
            // aborts: it burns energy for the deadline window.
            const double frac = deadline / p.cost.t_round;
            p.cost.e_comp *= frac;
            p.cost.e_comm *= frac;
            p.cost.e_total = p.cost.e_comp + p.cost.e_comm;
            round_time = std::max(round_time, deadline);
        } else {
            round_time = std::max(round_time, p.cost.t_round);
        }
    }
    result.round_time = round_time;

    // Participants that finished early wait for the round's stragglers
    // with the runtime and connection held open — the redundant energy
    // adaptive per-device parameters remove (paper Fig. 5).
    for (auto &p : result.participants) {
        if (!p.dropped && p.cost.t_round < round_time) {
            device::PowerModel power(device::profileFor(p.category));
            p.cost.e_wait =
                power.waitPower() * (round_time - p.cost.t_round);
            p.cost.e_total += p.cost.e_wait;
        }
    }

    // Phase 3: FedAvg aggregation over kept updates, weighted by sample
    // count. Updates containing non-finite values (a client diverged
    // under an aggressive configuration) are rejected — one bad client
    // must not poison the global model.
    for (std::size_t i = 0; i < selected.size(); ++i) {
        if (result.participants[i].dropped)
            continue;
        bool finite = true;
        for (float v : updates[i].weights) {
            if (!std::isfinite(v)) {
                finite = false;
                break;
            }
        }
        if (!finite) {
            result.participants[i].dropped = true;
            ++result.dropped_count;
            util::logWarn("round " + std::to_string(round_) + ": client " +
                          std::to_string(selected[i]) +
                          " update diverged; rejected");
        }
    }
    std::size_t total_samples = 0;
    for (std::size_t i = 0; i < selected.size(); ++i)
        if (!result.participants[i].dropped)
            total_samples += updates[i].samples;
    if (total_samples > 0) {
        std::vector<double> acc(global_weights_.size(), 0.0);
        for (std::size_t i = 0; i < selected.size(); ++i) {
            if (result.participants[i].dropped)
                continue;
            const double wgt = static_cast<double>(updates[i].samples) /
                               static_cast<double>(total_samples);
            const auto &wv = updates[i].weights;
            assert(wv.size() == acc.size());
            for (std::size_t j = 0; j < acc.size(); ++j)
                acc[j] += wgt * wv[j];
        }
        for (std::size_t j = 0; j < acc.size(); ++j)
            global_weights_[j] = static_cast<float>(acc[j]);
        global_model_->loadParams(global_weights_);
    }
    result.samples_aggregated = total_samples;

    // Phase 4: energy bookkeeping over the whole fleet (Eqs. 4-6).
    std::vector<bool> participating(clients_.size(), false);
    for (std::size_t id : selected)
        participating[id] = true;
    for (const auto &p : result.participants)
        result.energy_participants += p.cost.e_total;
    for (std::size_t id = 0; id < clients_.size(); ++id) {
        if (!participating[id]) {
            device::PowerModel power(
                device::profileFor(clients_[id].category()));
            result.energy_idle += power.idleEnergy(result.round_time);
        }
    }
    result.energy_total = result.energy_participants + result.energy_idle;

    // Phase 5: evaluation.
    auto eval = evaluateGlobal();
    result.test_accuracy = eval.accuracy;
    result.test_loss = eval.loss;
    last_accuracy_ = eval.accuracy;
    double loss_sum = 0.0;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < result.participants.size(); ++i) {
        if (!result.participants[i].dropped) {
            loss_sum += result.participants[i].train_loss;
            ++kept;
        }
    }
    result.train_loss = kept > 0 ? loss_sum / static_cast<double>(kept)
                                 : 0.0;
    return result;
}

nn::Model::EvalResult
FlSimulator::evaluateGlobal()
{
    nn::Model::EvalResult total;
    std::size_t seen = 0;
    std::size_t correct_weighted = 0;
    double loss_weighted = 0.0;
    std::vector<std::size_t> idx;
    for (std::size_t start = 0; start < test_set_.size();
         start += config_.eval_batch) {
        const std::size_t end =
            std::min(start + config_.eval_batch, test_set_.size());
        idx.resize(end - start);
        for (std::size_t i = start; i < end; ++i)
            idx[i - start] = i;
        test_set_.gather(idx, eval_batch_buf_, eval_labels_buf_);
        auto r = global_model_->evaluate(eval_batch_buf_, eval_labels_buf_);
        loss_weighted += r.loss * static_cast<double>(end - start);
        correct_weighted += static_cast<std::size_t>(
            std::lround(r.accuracy * static_cast<double>(end - start)));
        seen += end - start;
    }
    if (seen > 0) {
        total.loss = loss_weighted / static_cast<double>(seen);
        total.accuracy = static_cast<double>(correct_weighted) /
                         static_cast<double>(seen);
    }
    return total;
}

} // namespace fl
} // namespace fedgpo
