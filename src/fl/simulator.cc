#include "fl/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "data/synthetic.h"
#include "device/cost_model.h"
#include "device/power_model.h"
#include "runtime/runtime_config.h"
#include "util/logging.h"
#include "util/stats.h"

namespace fedgpo {
namespace fl {

namespace {

data::Dataset
makeTrainSet(models::Workload w, std::size_t n, util::Rng &rng)
{
    switch (w) {
      case models::Workload::CnnMnist:
        return data::makeSyntheticMnist(n, rng);
      case models::Workload::LstmShakespeare:
        return data::makeSyntheticShakespeare(n, rng);
      case models::Workload::MobileNetImageNet:
        return data::makeSyntheticImageNet(n, rng);
    }
    util::fatal("makeTrainSet: unknown workload");
}

} // namespace

FlSimulator::FlSimulator(const FlConfig &config)
    : config_(config), rng_(config.seed),
      fault_model_(config.faults, config.seed),
      network_model_(config.network_unstable)
{
    if (config_.n_devices == 0)
        util::fatal("FlConfig: n_devices must be positive");

    // Train and test sets share the generator stream so class prototypes
    // (or the Markov chain) match between them: test measures the same
    // concept the clients train on.
    util::Rng data_rng = rng_.split(1);
    const std::size_t total = config_.train_samples + config_.test_samples;
    data::Dataset all = makeTrainSet(config_.workload, total, data_rng);

    // Split off the test set (tail samples).
    {
        std::vector<std::size_t> train_idx(config_.train_samples);
        std::vector<std::size_t> test_idx(config_.test_samples);
        for (std::size_t i = 0; i < config_.train_samples; ++i)
            train_idx[i] = i;
        for (std::size_t i = 0; i < config_.test_samples; ++i)
            test_idx[i] = config_.train_samples + i;
        tensor::Tensor feat;
        std::vector<int> labels;
        all.gather(train_idx, feat, labels);
        train_set_ = data::Dataset(std::move(feat), std::move(labels),
                                   all.numClasses());
        tensor::Tensor tfeat;
        std::vector<int> tlabels;
        all.gather(test_idx, tfeat, tlabels);
        test_set_ = data::Dataset(std::move(tfeat), std::move(tlabels),
                                  all.numClasses());
    }

    global_model_ = models::buildModel(config_.workload, config_.seed ^ 7);
    census_ = global_model_->census();
    train_flops_ = global_model_->trainFlopsPerSample();
    param_bytes_ = global_model_->paramBytes();
    global_weights_ = global_model_->saveParams();
    lr_ = config_.lr > 0.0 ? config_.lr
                           : models::defaultLearningRate(config_.workload);

    // Execution engine: a fixed-size worker pool plus one lazily built
    // scratch model per worker. Scratch init seeds are irrelevant — every
    // ClientUpdate starts by loading the global weights.
    pool_ = std::make_unique<runtime::ThreadPool>(
        runtime::resolveThreads(config_.threads));
    workers_ = std::make_unique<runtime::WorkerContextPool>(
        pool_->size(), [workload = config_.workload, seed = config_.seed] {
            return models::buildModel(workload, seed ^ 7);
        });

    // One codec instance per level, built from the configured knobs, so
    // a per-round codec switch (the FedGPO fourth knob) is a pointer
    // swap. Construction draws no randomness.
    for (std::size_t c = 0; c < comm::kNumCodecs; ++c)
        codecs_[c] =
            comm::makeCodec(static_cast<comm::Codec>(c), config_.comm);

    // Round pipeline with the paper's default strategies; upload
    // recovery follows the configured fault knobs (inert by default).
    engine_ = std::make_unique<round::RoundEngine>(
        std::make_unique<round::FedAvgAggregator>(),
        std::make_unique<round::DeadlineDropPolicy>(
            config_.deadline_factor),
        std::make_unique<round::RetryBackoffPolicy>(config_.faults));

    // Partition the training data over the fleet.
    util::Rng part_rng = rng_.split(2);
    data::Partition shards =
        data::makePartition(train_set_, config_.n_devices,
                            config_.distribution, part_rng,
                            config_.dirichlet_alpha);

    // Build the fleet with the paper's 15/35/50 tier mix.
    auto tiers = device::fleetComposition(config_.n_devices);
    clients_.reserve(config_.n_devices);
    for (std::size_t i = 0; i < config_.n_devices; ++i) {
        device::InterferenceProcess interference(config_.interference);
        clients_.emplace_back(i, tiers[i], std::move(shards[i]),
                              std::move(interference),
                              rng_.split(100 + i));
    }
}

std::vector<std::size_t>
FlSimulator::selectClients(int k)
{
    const int fleet = static_cast<int>(clients_.size());
    if (k > fleet) {
        util::logWarn("selectClients: requested K=" + std::to_string(k) +
                      " exceeds fleet size " + std::to_string(fleet) +
                      "; clamping to the fleet");
    } else if (k < 1) {
        util::logWarn("selectClients: requested K=" + std::to_string(k) +
                      " is not positive; clamping to 1");
    }
    const int capped = std::clamp(k, 1, fleet);
    return rng_.sampleWithoutReplacement(static_cast<std::size_t>(capped),
                                         clients_.size());
}

std::vector<DeviceObservation>
FlSimulator::observe(const std::vector<std::size_t> &selected) const
{
    std::vector<DeviceObservation> out;
    out.reserve(selected.size());
    for (std::size_t id : selected) {
        const Client &c = clients_[id];
        DeviceObservation obs;
        obs.client_id = id;
        obs.category = c.category();
        obs.interference = c.interference();
        obs.network = c.network();
        obs.data_classes = train_set_.classesPresent(c.shard());
        obs.total_classes = train_set_.numClasses();
        obs.shard_size = c.shardSize();
        out.push_back(obs);
    }
    return out;
}

double
FlSimulator::predictedRoundTime(std::size_t client_id,
                                const PerDeviceParams &params) const
{
    const Client &c = clients_.at(client_id);
    device::LocalWorkSpec work;
    work.train_flops_per_sample = train_flops_;
    work.samples = c.shardSize();
    work.batch = params.batch;
    work.epochs = params.epochs;
    work.param_bytes = param_bytes_;
    // Predictions see the configured codec's payload (Identity yields
    // exactly param_bytes, keeping the pre-codec numbers bit-identical).
    work.upload_bytes =
        codecFor(config_.comm.codec).payloadBytes(global_weights_.size());
    auto cost = device::clientRoundCost(
        device::profileFor(c.category()), device::costFor(config_.workload),
        work, c.interference(), c.network());
    return cost.t_round;
}

round::RoundContext
FlSimulator::makeRoundContext()
{
    // Advance every device's stochastic runtime state once per round.
    for (auto &c : clients_)
        c.stepRuntime(network_model_);

    round::RoundContext ctx;
    ctx.round = ++round_;
    ctx.clients = &clients_;
    ctx.train_set = &train_set_;
    ctx.global_weights = &global_weights_;
    ctx.global_model = global_model_.get();
    ctx.pool = pool_.get();
    ctx.workers = workers_.get();
    ctx.cost_const = &device::costFor(config_.workload);
    ctx.codec = &codecFor(config_.comm.codec);
    ctx.train_flops = train_flops_;
    ctx.param_bytes = param_bytes_;
    ctx.lr = lr_;
    ctx.evaluate = [this] { return evaluateGlobal(); };
    if (fault_model_.active()) {
        ctx.fault_model = &fault_model_;
        // Replacement draw for a device found offline at selection: pick
        // uniformly among the not-yet-selected fleet, inheriting the
        // offline slot's parameter assignment. Consumes rng_ only when a
        // fault actually fired, so the zero-fault selection stream is
        // untouched. False once the fleet is exhausted.
        ctx.replace = [this](round::RoundContext &c, std::size_t slot) {
            std::vector<bool> taken(clients_.size(), false);
            for (std::size_t id : c.selected)
                taken[id] = true;
            std::vector<std::size_t> candidates;
            candidates.reserve(clients_.size() - c.selected.size());
            for (std::size_t id = 0; id < clients_.size(); ++id)
                if (!taken[id])
                    candidates.push_back(id);
            if (candidates.empty())
                return false;
            const std::size_t id = candidates[rng_.index(candidates.size())];
            c.selected.push_back(id);
            c.params.push_back(c.params[slot]);
            c.train_rngs.push_back(trainRng(id));
            if (c.codec != nullptr &&
                c.codec->kind() != comm::Codec::Identity)
                c.comm_rngs.push_back(commRng(id));
            return true;
        };
    }
    return ctx;
}

void
FlSimulator::validateParams(const std::vector<PerDeviceParams> &params) const
{
    for (const PerDeviceParams &p : params) {
        if (p.batch < 1 || p.epochs < 1) {
            util::fatal("FlSimulator: per-device parameters must be "
                        "positive, got B=" +
                        std::to_string(p.batch) +
                        " E=" + std::to_string(p.epochs));
        }
    }
}

void
FlSimulator::fillTrainRngs(round::RoundContext &ctx) const
{
    ctx.train_rngs.reserve(ctx.selected.size());
    for (std::size_t id : ctx.selected)
        ctx.train_rngs.push_back(trainRng(id));
}

void
FlSimulator::fillCommRngs(round::RoundContext &ctx) const
{
    if (ctx.codec == nullptr || ctx.codec->kind() == comm::Codec::Identity)
        return;
    ctx.comm_rngs.reserve(ctx.selected.size());
    for (std::size_t id : ctx.selected)
        ctx.comm_rngs.push_back(commRng(id));
}

RoundResult
FlSimulator::runRound(optim::ParamOptimizer &policy)
{
    round::RoundContext ctx = makeRoundContext();
    ctx.select = [this, &policy](round::RoundContext &c) {
        const int k =
            policy.chooseClients(static_cast<int>(clients_.size()));
        c.selected = selectClients(k);
        auto observations = observe(c.selected);
        c.params = policy.assign(observations, census_);
        assert(c.params.size() == c.selected.size());
        validateParams(c.params);
        // The codec is the round's fourth knob: policies that adapt it
        // pick a level from the state assign() just observed; the
        // default passthrough keeps the configured codec (and, with
        // Identity, the pre-codec RNG consumption) untouched.
        c.codec = &codecFor(policy.chooseCodec(config_.comm.codec));
        fillTrainRngs(c);
        fillCommRngs(c);
    };
    // Feedback runs inside the engine (after Evaluate, before observers
    // see onRoundEnd) so the policy's decision record — reward terms
    // included — lands in the same round's trace line.
    ctx.feedback = [&policy](round::RoundContext &c) {
        policy.feedback(c.result);
        c.decision = policy.lastDecision();
    };
    RoundResult result = engine_->run(ctx);
    last_accuracy_ = result.test_accuracy;
    return result;
}

RoundResult
FlSimulator::runRoundWithParams(const GlobalParams &params)
{
    if (params.batch < 1 || params.epochs < 1) {
        util::fatal("runRoundWithParams: B and E must be positive, got B=" +
                    std::to_string(params.batch) +
                    " E=" + std::to_string(params.epochs));
    }
    round::RoundContext ctx = makeRoundContext();
    ctx.select = [this, &params](round::RoundContext &c) {
        c.selected = selectClients(params.clients);
        c.params.assign(c.selected.size(),
                        PerDeviceParams{params.batch, params.epochs});
        fillTrainRngs(c);
        fillCommRngs(c);
    };
    RoundResult result = engine_->run(ctx);
    last_accuracy_ = result.test_accuracy;
    return result;
}

util::Rng
FlSimulator::trainRng(std::size_t client_id) const
{
    // A fresh chain Rng(seed') -> split(round) -> split(client) depends on
    // nothing consumed elsewhere; the xor constant keeps the root state
    // distinct from the selection/data/partition streams of rng_.
    util::Rng root(config_.seed ^ 0x7452414e474eULL); // "TRaNGN"
    util::Rng round_stream = root.split(static_cast<std::uint64_t>(round_));
    return round_stream.split(client_id);
}

util::Rng
FlSimulator::commRng(std::size_t client_id) const
{
    // Same chain as trainRng under a distinct root constant: the codec
    // stream is a pure function of (seed, round, client), decorrelated
    // from every other stream, and consumed only when a stochastic
    // codec actually encodes.
    util::Rng root(config_.seed ^ 0x434f4d4d434eULL); // "COMMCN"
    util::Rng round_stream = root.split(static_cast<std::uint64_t>(round_));
    return round_stream.split(client_id);
}

nn::Model::EvalResult
FlSimulator::evaluateGlobal()
{
    const std::size_t n = test_set_.size();
    const std::size_t batch = config_.eval_batch;
    const std::size_t n_batches = n == 0 ? 0 : (n + batch - 1) / batch;

    // Fan evaluation batches out across the pool. Each index writes only
    // its own slot and evaluates on its worker's scratch model (loaded
    // with the current global weights, so it computes exactly what the
    // server model would); the reduction below runs in batch-index order
    // on this thread, making the result bit-identical to serial. The
    // correct counts are integers, so accuracy is exact — no lossy
    // reconstruction from per-batch ratios.
    struct BatchEval
    {
        double loss = 0.0;
        std::size_t correct = 0;
        std::size_t count = 0;
    };
    std::vector<BatchEval> partials(n_batches);
    pool_->parallelFor(n_batches, [&](std::size_t b, std::size_t worker) {
        const std::size_t start = b * batch;
        const std::size_t end = std::min(start + batch, n);
        std::vector<std::size_t> idx(end - start);
        for (std::size_t i = start; i < end; ++i)
            idx[i - start] = i;
        tensor::Tensor feat;
        std::vector<int> labels;
        test_set_.gather(idx, feat, labels);
        nn::Model &model = pool_->size() > 1
                               ? *workers_->acquire(worker).model
                               : *global_model_;
        if (pool_->size() > 1)
            model.loadParams(global_weights_);
        auto r = model.evaluate(feat, labels);
        partials[b] = BatchEval{r.loss * static_cast<double>(end - start),
                                r.correct, end - start};
    });

    nn::Model::EvalResult total;
    double loss_weighted = 0.0;
    std::size_t seen = 0;
    for (const BatchEval &p : partials) {
        loss_weighted += p.loss;
        total.correct += p.correct;
        seen += p.count;
    }
    if (seen > 0) {
        total.loss = loss_weighted / static_cast<double>(seen);
        total.accuracy = static_cast<double>(total.correct) /
                         static_cast<double>(seen);
    }
    return total;
}

} // namespace fl
} // namespace fedgpo
