#include "fl/client.h"

#include <algorithm>
#include <cmath>
#include <cassert>

namespace fedgpo {
namespace fl {

Client::Client(std::size_t id, device::Category category,
               std::vector<std::size_t> shard,
               device::InterferenceProcess interference, util::Rng rng)
    : id_(id), category_(category), shard_(std::move(shard)),
      interference_(std::move(interference)), rng_(std::move(rng))
{
}

void
Client::stepRuntime(const device::NetworkModel &network)
{
    interference_state_ = interference_.step(rng_);
    network_state_ = network.sample(rng_);
}

Client::UpdateResult
Client::localTrain(nn::Model &scratch, util::Rng &rng,
                   const data::Dataset &dataset,
                   const PerDeviceParams &params, double lr,
                   double work_fraction) const
{
    assert(params.batch >= 1 && params.epochs >= 1);
    assert(!shard_.empty());
    assert(work_fraction > 0.0 && work_fraction <= 1.0);

    // Linear-scaling-rule variant: scale the step with sqrt(B / B_ref) so
    // the per-epoch update magnitude stays comparable across the Table 2
    // batch range, and clip gradients so aggressive configurations cannot
    // diverge and poison the aggregate.
    const double lr_eff = lr * std::sqrt(static_cast<double>(params.batch) /
                                         8.0);
    nn::Sgd sgd(lr_eff, /*momentum=*/0.0, /*clip_norm=*/2.0);
    std::vector<std::size_t> order = shard_;
    tensor::Tensor batch;
    std::vector<int> labels;
    std::vector<std::size_t> batch_idx;

    double loss_sum = 0.0;
    std::size_t steps = 0;
    const std::size_t b = static_cast<std::size_t>(params.batch);
    // A crashing device executes only the leading work_fraction of its
    // E-epoch step budget; at the default 1.0 max_steps equals the full
    // budget and the loop runs exactly as before.
    const std::size_t steps_per_epoch = (shard_.size() + b - 1) / b;
    const std::size_t total_steps =
        static_cast<std::size_t>(params.epochs) * steps_per_epoch;
    const std::size_t max_steps =
        work_fraction >= 1.0
            ? total_steps
            : std::max<std::size_t>(
                  1, static_cast<std::size_t>(std::ceil(
                         work_fraction * static_cast<double>(total_steps))));
    for (int epoch = 0; epoch < params.epochs && steps < max_steps; ++epoch) {
        rng.shuffle(order);
        for (std::size_t start = 0;
             start < order.size() && steps < max_steps; start += b) {
            const std::size_t end = std::min(start + b, order.size());
            batch_idx.assign(order.begin() + static_cast<long>(start),
                             order.begin() + static_cast<long>(end));
            dataset.gather(batch_idx, batch, labels);
            scratch.zeroGrad();
            loss_sum += scratch.trainStep(batch, labels);
            sgd.step(scratch);
            ++steps;
        }
    }

    UpdateResult result;
    result.weights = scratch.saveParams();
    result.train_loss = steps > 0 ? loss_sum / static_cast<double>(steps)
                                  : 0.0;
    result.samples = shard_.size();
    return result;
}

} // namespace fl
} // namespace fedgpo
