/**
 * @file
 * An FL client device: its tier, local data shard, and stochastic runtime
 * state (interference and network), plus the real local-training step of
 * FedAvg's ClientUpdate (Algorithm 1).
 */

#ifndef FEDGPO_FL_CLIENT_H_
#define FEDGPO_FL_CLIENT_H_

#include <vector>

#include "data/dataset.h"
#include "device/device_profile.h"
#include "device/interference.h"
#include "device/network_model.h"
#include "fl/types.h"
#include "nn/model.h"
#include "nn/sgd.h"
#include "util/rng.h"

namespace fedgpo {
namespace fl {

/**
 * One participating device.
 */
class Client
{
  public:
    /**
     * @param id           Fleet index.
     * @param category     Performance tier.
     * @param shard        Indices into the shared training Dataset.
     * @param interference Per-device interference process (moved in).
     * @param rng          Per-client stream for shuffling and variance.
     */
    Client(std::size_t id, device::Category category,
           std::vector<std::size_t> shard,
           device::InterferenceProcess interference, util::Rng rng);

    std::size_t id() const { return id_; }
    device::Category category() const { return category_; }
    const std::vector<std::size_t> &shard() const { return shard_; }
    std::size_t shardSize() const { return shard_.size(); }

    /**
     * Advance the stochastic runtime state by one round (interference and
     * network draw) and return it. Called once per round for every device
     * so the processes evolve whether or not the device participates.
     */
    void stepRuntime(const device::NetworkModel &network);

    /** Latest interference state. */
    const device::InterferenceState &interference() const
    {
        return interference_state_;
    }

    /** Latest network state. */
    const device::NetworkState &network() const { return network_state_; }

    /**
     * Result of one ClientUpdate: the locally trained weights plus the
     * mean training loss observed.
     */
    struct UpdateResult
    {
        std::vector<float> weights;
        double train_loss = 0.0;
        std::size_t samples = 0;
    };

    /**
     * FedAvg ClientUpdate (Algorithm 1): split the shard into batches of
     * size B, run E local epochs of SGD, return the trained weights.
     *
     * Both the scratch model and the training RNG are injected so the
     * runtime can execute ClientUpdates concurrently: each worker brings
     * its own scratch model, and the simulator pre-splits one RNG per
     * (round, client) on the caller thread before dispatch, making the
     * result independent of scheduling. Const: training touches no client
     * state beyond reading the shard.
     *
     * @param scratch  Model pre-loaded with the current global weights;
     *                 its parameters are mutated in place.
     * @param rng      Training stream (epoch shuffle order).
     * @param dataset  Shared training data store.
     * @param params   Per-device (B, E).
     * @param lr       SGD learning rate eta.
     * @param work_fraction Fraction of the E-epoch step budget actually
     *                 executed — a crashing device (fault injection)
     *                 really trains up to its crash point, so its
     *                 partial report carries a real loss. 1 (the
     *                 default) runs the full budget and is bit-identical
     *                 to the pre-fault code path.
     */
    UpdateResult localTrain(nn::Model &scratch, util::Rng &rng,
                            const data::Dataset &dataset,
                            const PerDeviceParams &params, double lr,
                            double work_fraction = 1.0) const;

    /**
     * Client-resident error-feedback residual for sparsifying update
     * codecs (comm::TopKCodec): the untransmitted remainder of past
     * updates, re-offered on the next participation. Empty until the
     * client first encodes under such a codec. Mutable access is safe
     * under the round pipeline's parallel Encode fan-out because a
     * client participates at most once per round.
     */
    std::vector<float> &commResidual() { return comm_residual_; }
    const std::vector<float> &commResidual() const { return comm_residual_; }

  private:
    std::size_t id_;
    device::Category category_;
    std::vector<std::size_t> shard_;
    device::InterferenceProcess interference_;
    util::Rng rng_;
    device::InterferenceState interference_state_;
    device::NetworkState network_state_;
    std::vector<float> comm_residual_;
};

} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_CLIENT_H_
