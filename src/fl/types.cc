#include "fl/types.h"

#include <sstream>

namespace fedgpo {
namespace fl {

std::string
GlobalParams::toString() const
{
    std::ostringstream os;
    os << "(" << batch << ", " << epochs << ", " << clients << ")";
    return os.str();
}

const char *
dropReasonName(DropReason reason)
{
    switch (reason) {
      case DropReason::None:
        return "none";
      case DropReason::Straggler:
        return "straggler";
      case DropReason::Diverged:
        return "diverged";
      case DropReason::Offline:
        return "offline";
      case DropReason::Crashed:
        return "crashed";
      case DropReason::UploadFailed:
        return "upload_failed";
    }
    return "unknown";
}

double
RoundResult::goodputPerJoule() const
{
    if (energy_total <= 0.0)
        return 0.0;
    double work = 0.0;
    for (const auto &p : participants) {
        if (!p.dropped) {
            work += static_cast<double>(p.samples) *
                    static_cast<double>(p.params.epochs);
        }
    }
    return work / energy_total;
}

} // namespace fl
} // namespace fedgpo
