/**
 * @file
 * Shared value types of the FL simulator: global parameters, per-device
 * assignments, and per-round results.
 */

#ifndef FEDGPO_FL_TYPES_H_
#define FEDGPO_FL_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "device/cost_model.h"
#include "device/device_profile.h"
#include "device/interference.h"
#include "device/network_model.h"

namespace fedgpo {
namespace fl {

/**
 * The paper's global FL parameters: local minibatch size B, local epoch
 * count E, and participant count K (Algorithm 1).
 */
struct GlobalParams
{
    int batch = 8;    //!< B
    int epochs = 10;  //!< E
    int clients = 20; //!< K

    bool
    operator==(const GlobalParams &o) const
    {
        return batch == o.batch && epochs == o.epochs &&
               clients == o.clients;
    }

    std::string toString() const;
};

/**
 * Per-device round assignment: FedGPO adapts B and E per device
 * (K is a single global knob per round).
 */
struct PerDeviceParams
{
    int batch = 8;
    int epochs = 10;

    bool
    operator==(const PerDeviceParams &o) const
    {
        return batch == o.batch && epochs == o.epochs;
    }
};

/**
 * What an optimizer sees about one selected device before assigning its
 * parameters — exactly the per-device state FedGPO featurizes (Table 1):
 * co-runner CPU/memory usage, network bandwidth, and local data classes.
 */
struct DeviceObservation
{
    std::size_t client_id = 0;
    device::Category category = device::Category::High;
    device::InterferenceState interference;
    device::NetworkState network;
    std::size_t data_classes = 0;  //!< distinct classes in the local shard
    std::size_t total_classes = 0; //!< classes in the global task
    std::size_t shard_size = 0;    //!< local sample count
};

/**
 * Why a participant's update was excluded from aggregation.
 */
enum class DropReason
{
    None,         //!< update kept
    Straggler,    //!< exceeded the round deadline (straggler policy)
    Diverged,     //!< update contained non-finite values (server rejection)
    Offline,      //!< device unreachable at selection (fault injection)
    Crashed,      //!< device died mid-training (fault injection)
    UploadFailed, //!< upload retries exhausted (fault injection)
};

/**
 * Short stable label for a DropReason
 * ("none"/"straggler"/"diverged"/"offline"/"crashed"/"upload_failed").
 */
const char *dropReasonName(DropReason reason);

/**
 * Per-participant outcome of a round.
 */
struct ClientRoundReport
{
    std::size_t client_id = 0;
    device::Category category = device::Category::High;
    PerDeviceParams params;
    device::RoundCost cost;
    device::InterferenceState interference;
    device::NetworkState network;
    std::size_t samples = 0;
    double train_loss = 0.0;
    bool dropped = false;  //!< update excluded (see drop_reason)
    DropReason drop_reason = DropReason::None;

    /**
     * Fraction of this client's update the aggregator blends into the
     * global model. 1 for a full contribution; an AcceptPartialPolicy
     * sets it to the completed-work fraction of a late client. A
     * crashed client's report reuses it for the work fraction completed
     * before the crash (the update itself is dropped), and an offline
     * device's is 0 (no work happened).
     */
    double update_scale = 1.0;

    /** Upload retransmissions this round (fault injection). */
    int upload_retries = 0;

    /**
     * Modeled uplink traffic in exact proxy bytes: the encoded update
     * payload, including every retransmission. 0 for a device that
     * never reached the upload (offline, crashed).
     */
    std::uint64_t bytes_up = 0;

    /** Modeled downlink traffic (full global model; 0 when offline). */
    std::uint64_t bytes_down = 0;
};

/**
 * Full outcome of one aggregation round.
 */
struct RoundResult
{
    int round = 0;
    std::vector<ClientRoundReport> participants;
    double round_time = 0.0;          //!< straggler-gated wall clock (s)
    double energy_participants = 0.0; //!< sum of Eq. 5 first case (J)
    double energy_idle = 0.0;         //!< Eq. 4 over non-participants (J)
    double energy_total = 0.0;        //!< Eq. 6 (J)
    double test_accuracy = 0.0;
    double test_loss = 0.0;
    double train_loss = 0.0;          //!< mean over kept participants
    std::size_t dropped_straggler = 0; //!< deadline exceeded
    std::size_t dropped_diverged = 0;  //!< non-finite update rejected
    std::size_t dropped_offline = 0;   //!< unreachable at selection
    std::size_t dropped_crashed = 0;   //!< died mid-training
    std::size_t dropped_upload = 0;    //!< upload retries exhausted
    std::size_t upload_retries = 0;    //!< total retransmissions
    std::size_t samples_aggregated = 0;

    /** Update codec in force this round. */
    comm::Codec codec = comm::Codec::Identity;
    std::uint64_t bytes_up_total = 0;   //!< fleet uplink bytes (exact)
    std::uint64_t bytes_down_total = 0; //!< fleet downlink bytes (exact)

    /**
     * True when the quorum gate aborted the round before aggregation:
     * the global weights are untouched, but the energy the fleet burned
     * is still charged (a real server cannot refund it).
     */
    bool aborted = false;

    /** Total excluded participants, regardless of cause. */
    std::size_t
    droppedCount() const
    {
        return dropped_straggler + dropped_diverged + dropped_offline +
               dropped_crashed + dropped_upload;
    }

    /**
     * Round-level performance-per-watt proxy: aggregated training work
     * per Joule. Used for reporting; the RL reward uses Eq. 1 directly.
     */
    double goodputPerJoule() const;
};

} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_TYPES_H_
