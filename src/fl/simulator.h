/**
 * @file
 * The federated-learning simulator: FedAvg (Algorithm 1) over a fleet of
 * modeled mobile devices.
 *
 * Learning is real — every selected client runs actual SGD on its shard of
 * a synthetic dataset and the server aggregates actual weights — while
 * time and energy come from the device cost model (Eqs. 2-4), never from
 * host timing. One simulator instance owns the global model, the fleet,
 * the shared data store, and a round::RoundEngine that executes each
 * round as a staged pipeline (Select -> Train -> Cost -> Recover ->
 * Straggler -> Aggregate -> Energy -> Evaluate) with pluggable
 * aggregation/recovery/straggler strategies, seeded fault injection
 * (FlConfig::faults; inert by default), and an observer event stream.
 */

#ifndef FEDGPO_FL_SIMULATOR_H_
#define FEDGPO_FL_SIMULATOR_H_

#include <array>
#include <memory>
#include <vector>

#include "comm/codec.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "device/network_model.h"
#include "fault/fault_model.h"
#include "fl/client.h"
#include "fl/round/round_engine.h"
#include "fl/types.h"
#include "models/zoo.h"
#include "optim/optimizer.h"
#include "runtime/thread_pool.h"
#include "runtime/worker_context.h"
#include "util/rng.h"

namespace fedgpo {
namespace fl {

/**
 * Scenario configuration for one simulator instance.
 */
struct FlConfig
{
    models::Workload workload = models::Workload::CnnMnist;
    std::size_t n_devices = 40;       //!< fleet size (paper: 200)
    std::size_t train_samples = 1600; //!< global training pool
    std::size_t test_samples = 320;   //!< held-out evaluation set
    data::Distribution distribution = data::Distribution::IidIdeal;
    double dirichlet_alpha = 0.1;     //!< paper's non-IID concentration
    bool interference = false;        //!< co-running app variance
    bool network_unstable = false;    //!< unstable-network variance
    double deadline_factor = 3.0;     //!< straggler drop threshold vs median
    std::uint64_t seed = 42;
    double lr = 0.0;                  //!< 0 = workload default
    std::size_t eval_batch = 64;

    /**
     * Seeded fault injection (offline / crash / upload-failure rates,
     * retry budget, quorum gate). All rates default to 0, which keeps
     * the round pipeline bit-identical to a fault-free build.
     */
    fault::FaultConfig faults;

    /**
     * Update-codec knobs (codec level, top-k fraction, quantization
     * chunk). The Identity default keeps every round bit-identical to a
     * codec-less build; optimizers may override the level per round via
     * ParamOptimizer::chooseCodec when they adapt the fourth knob.
     */
    comm::CommConfig comm;

    /**
     * Worker threads for parallel client training (0 = auto: the
     * FEDGPO_THREADS environment variable, else hardware concurrency).
     * Purely a host-speed knob: results are bit-identical for any value.
     */
    std::size_t threads = 0;
};

/**
 * FedAvg simulator.
 */
class FlSimulator
{
  public:
    explicit FlSimulator(const FlConfig &config);

    /** Scenario configuration. */
    const FlConfig &config() const { return config_; }

    /** Fleet size N. */
    std::size_t numDevices() const { return clients_.size(); }

    /** Device i (for observation by benches/tests). */
    const Client &client(std::size_t i) const { return clients_.at(i); }

    /** The shared global model (server copy). */
    nn::Model &globalModel() { return *global_model_; }

    /** Layer census of the global model. */
    const nn::LayerCensus &census() const { return census_; }

    /** Rounds executed so far. */
    int round() const { return round_; }

    /** Latest test accuracy (0 before the first evaluation). */
    double testAccuracy() const { return last_accuracy_; }

    /**
     * The round pipeline. Swap strategies or register observers through
     * it; the default strategies (FedAvgAggregator + DeadlineDropPolicy
     * at config.deadline_factor) reproduce the paper's Algorithm 1.
     */
    round::RoundEngine &roundEngine() { return *engine_; }

    /** Convenience: register a round observer (non-owning). */
    void addRoundObserver(round::RoundObserver *observer)
    {
        engine_->addObserver(observer);
    }

    /** Convenience: unregister a round observer. */
    void removeRoundObserver(round::RoundObserver *observer)
    {
        engine_->removeObserver(observer);
    }

    /**
     * Run one full aggregation round driven by the given policy:
     * client selection, per-device assignment, real local training,
     * cost modeling, straggler handling, aggregation, evaluation, and
     * policy feedback.
     */
    RoundResult runRound(optim::ParamOptimizer &policy);

    /**
     * Run one round with an externally fixed assignment (used by grid
     * search and the parameter-sweep benches). Selection is still uniform
     * random over the fleet.
     */
    RoundResult runRoundWithParams(const GlobalParams &params);

    /**
     * Predicted round time of a device under hypothetical parameters and
     * its *current* runtime state, from the cost model only (no training).
     * Used by the Table 5 oracle and by tests.
     */
    double predictedRoundTime(std::size_t client_id,
                              const PerDeviceParams &params) const;

    /**
     * Evaluate the global model on the held-out test set, fanned out
     * across the worker pool in evaluation batches with a
     * batch-index-ordered reduction — bit-identical to serial for any
     * thread count (same contract as the training fan-out).
     */
    nn::Model::EvalResult evaluateGlobal();

    /** Per-sample training FLOPs of the (proxy) model. */
    std::uint64_t trainFlopsPerSample() const { return train_flops_; }

    /** One-way parameter payload in (proxy) bytes. */
    std::size_t paramBytes() const { return param_bytes_; }

    /**
     * The codec instance serving one level (all three are built up
     * front from FlConfig::comm so a policy can switch level per round
     * without reallocations mid-campaign).
     */
    const comm::UpdateCodec &codecFor(comm::Codec codec) const
    {
        return *codecs_[static_cast<std::size_t>(codec)];
    }

    /** Effective worker-thread count of the execution engine. */
    std::size_t threads() const { return pool_->size(); }

  private:
    /** Select k distinct clients uniformly (FedAvg's random S_t). */
    std::vector<std::size_t> selectClients(int k);

    /** Build observations for the selected clients. */
    std::vector<DeviceObservation>
    observe(const std::vector<std::size_t> &selected) const;

    /**
     * Context for the round the engine is about to run: advances every
     * device's runtime state, bumps the round counter, and wires the
     * simulator state and hooks (selection left to the caller).
     */
    round::RoundContext makeRoundContext();

    /** Fill ctx.train_rngs for the already-made selection. */
    void fillTrainRngs(round::RoundContext &ctx) const;

    /**
     * Fill ctx.comm_rngs for the already-made selection when the
     * round's codec is stochastic (non-Identity); no-op otherwise, so
     * default-configured rounds touch no extra randomness at all.
     */
    void fillCommRngs(round::RoundContext &ctx) const;

    /** Reject non-positive per-device (B, E) with a clear fatal error. */
    void validateParams(const std::vector<PerDeviceParams> &params) const;

    /**
     * Training stream for one client in the current round, derived as
     * split(seed, round, client_id) — a function of (seed, round, client)
     * only, never of draw order, so parallel and serial rounds consume
     * identical randomness.
     */
    util::Rng trainRng(std::size_t client_id) const;

    /**
     * Comm stream for one client in the current round — same derivation
     * discipline as trainRng (pure function of (seed, round, client))
     * under its own root constant, so codec randomness never perturbs
     * the training, selection, or fault streams.
     */
    util::Rng commRng(std::size_t client_id) const;

    FlConfig config_;
    util::Rng rng_;
    fault::FaultModel fault_model_;
    data::Dataset train_set_;
    data::Dataset test_set_;
    std::unique_ptr<nn::Model> global_model_;
    std::unique_ptr<runtime::ThreadPool> pool_;
    std::unique_ptr<runtime::WorkerContextPool> workers_;
    std::unique_ptr<round::RoundEngine> engine_;
    nn::LayerCensus census_;
    std::vector<Client> clients_;
    device::NetworkModel network_model_;
    std::array<std::unique_ptr<comm::UpdateCodec>, comm::kNumCodecs>
        codecs_;
    std::vector<float> global_weights_;
    std::uint64_t train_flops_ = 0;
    std::size_t param_bytes_ = 0;
    double lr_ = 0.0;
    int round_ = 0;
    double last_accuracy_ = 0.0;
};

} // namespace fl
} // namespace fedgpo

#endif // FEDGPO_FL_SIMULATOR_H_
