/**
 * @file
 * Per-worker scratch state for parallel client training.
 *
 * FedAvg's ClientUpdate needs a model pre-loaded with the global weights;
 * training K clients concurrently therefore needs one scratch model per
 * worker, not per fleet. The pool builds them lazily from a factory so a
 * serial run (or a round with few participants) never pays for models it
 * does not touch.
 */

#ifndef FEDGPO_RUNTIME_WORKER_CONTEXT_H_
#define FEDGPO_RUNTIME_WORKER_CONTEXT_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/model.h"

namespace fedgpo {
namespace runtime {

/**
 * Scratch state owned by one pool worker.
 */
struct WorkerContext
{
    std::unique_ptr<nn::Model> model; //!< scratch model for ClientUpdate
};

/**
 * Lazily materialized pool of WorkerContext, one slot per worker id.
 *
 * acquire() is thread-safe; each slot is built at most once. The returned
 * reference stays valid for the pool's lifetime (slots never move). A
 * worker must only use the context for its own worker id while a
 * ThreadPool::parallelFor is in flight — that is what makes per-slot
 * scratch state safe without any locking on the training path.
 */
class WorkerContextPool
{
  public:
    using ModelFactory = std::function<std::unique_ptr<nn::Model>()>;

    /**
     * @param workers Number of slots (ThreadPool::size()).
     * @param factory Builds one scratch model; invoked under the pool
     *                lock, at most once per slot.
     */
    WorkerContextPool(std::size_t workers, ModelFactory factory);

    /** Slot count. */
    std::size_t size() const { return slots_.size(); }

    /** Context for the given worker id, building it on first use. */
    WorkerContext &acquire(std::size_t worker);

    /** True when the slot has been materialized (for tests/introspection). */
    bool materialized(std::size_t worker) const;

  private:
    ModelFactory factory_;
    std::vector<std::unique_ptr<WorkerContext>> slots_;
    mutable std::mutex mutex_;
};

} // namespace runtime
} // namespace fedgpo

#endif // FEDGPO_RUNTIME_WORKER_CONTEXT_H_
