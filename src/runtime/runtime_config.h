/**
 * @file
 * Runtime (host-parallelism) configuration for the simulator.
 *
 * The execution engine is purely a host-side concern: it changes how fast
 * a round computes, never what it computes. Modeled time and energy come
 * from the analytic device model, so the thread count must be invisible in
 * every result — see ThreadPool and FlSimulator for how determinism is
 * preserved.
 */

#ifndef FEDGPO_RUNTIME_RUNTIME_CONFIG_H_
#define FEDGPO_RUNTIME_RUNTIME_CONFIG_H_

#include <cstddef>
#include <cstdlib>
#include <string>
#include <thread>

#include "util/logging.h"

namespace fedgpo {
namespace runtime {

/**
 * Host execution configuration.
 */
struct RuntimeConfig
{
    /**
     * Worker threads for client training. 0 = auto: the FEDGPO_THREADS
     * environment variable if set, otherwise the hardware concurrency.
     */
    std::size_t threads = 0;
};

/**
 * Resolve a requested thread count to the effective one.
 *
 * Priority: an explicit positive request wins; then a positive integer in
 * the FEDGPO_THREADS environment variable (a malformed value is rejected
 * with a logged warning naming it); then
 * std::thread::hardware_concurrency(); never less than 1.
 */
inline std::size_t
resolveThreads(std::size_t requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("FEDGPO_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
        util::logWarn("resolveThreads: ignoring malformed FEDGPO_THREADS "
                      "value '" +
                      std::string(env) +
                      "' (want a positive integer); falling back to "
                      "hardware concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

} // namespace runtime
} // namespace fedgpo

#endif // FEDGPO_RUNTIME_RUNTIME_CONFIG_H_
