/**
 * @file
 * Fixed-size thread pool for the deterministic parallel execution engine.
 *
 * Deliberately work-stealing-free: tasks are claimed from a single shared
 * counter/queue so scheduling is simple to reason about, and callers are
 * expected to make results scheduling-independent (each parallelFor index
 * writes only its own slot, randomness is pre-split before dispatch).
 */

#ifndef FEDGPO_RUNTIME_THREAD_POOL_H_
#define FEDGPO_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fedgpo {

namespace obs {
class Counter;
class Histogram;
} // namespace obs

namespace runtime {

/**
 * A fixed-size pool of worker threads.
 *
 * With size() <= 1 no threads are spawned at all and every task runs
 * inline on the calling thread (as worker 0), so the serial configuration
 * has zero synchronization overhead — campaign loops on small hosts pay
 * nothing for the parallel machinery.
 */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (none when threads <= 1). */
    explicit ThreadPool(std::size_t threads);

    /** Joins all workers; pending submitted tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Configured worker count (>= 1; 1 means inline execution). */
    std::size_t size() const { return threads_; }

    /**
     * Enqueue one task. The future completes when the task returns and
     * carries any exception it threw.
     */
    std::future<void> submit(std::function<void()> fn);

    /**
     * Run fn(i, worker) for every i in [0, n), fanning out across the
     * pool, and block until all indices finished. `worker` identifies the
     * executing worker in [0, size()) and is stable for the duration of
     * one call, so it can index per-worker scratch state (WorkerContext).
     *
     * Each index is claimed exactly once. If a call throws, the first
     * exception is rethrown on the caller after all workers stop;
     * indices not yet claimed at that point are skipped.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t, std::size_t)> &fn);

  private:
    void workerLoop(std::size_t worker_id);

    std::size_t threads_;
    // Observability probes, resolved once at construction; all null when
    // metrics are off, in which case no clocks are read on any path.
    obs::Counter *tasks_counter_ = nullptr;
    obs::Histogram *wait_hist_ = nullptr;
    obs::Histogram *task_hist_ = nullptr;
    std::vector<std::thread> workers_;
    // Tasks receive the id of the worker that runs them.
    std::deque<std::function<void(std::size_t)>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace runtime
} // namespace fedgpo

#endif // FEDGPO_RUNTIME_THREAD_POOL_H_
