#include "runtime/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace fedgpo {
namespace runtime {

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads)
{
    if (threads_ <= 1)
        return;
    workers_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop(std::size_t worker_id)
{
    for (;;) {
        std::function<void(std::size_t)> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(worker_id);
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::move(fn));
    std::future<void> future = task->get_future();
    if (workers_.empty()) {
        (*task)();
        return future;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.emplace_back([task](std::size_t) { (*task)(); });
    }
    cv_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>
                            &fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i, 0);
        return;
    }

    // Shared fan-out state: workers claim indices from one atomic counter
    // (no stealing, no per-index queueing) and the caller blocks until
    // every runner has drained.
    struct FanOut
    {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::size_t runners_left;
        std::mutex mutex;
        std::condition_variable done;
    };
    auto state = std::make_shared<FanOut>();
    const std::size_t runners = std::min(threads_, n);
    state->runners_left = runners;

    auto runner = [state, n, &fn](std::size_t worker) {
        while (!state->failed.load(std::memory_order_relaxed)) {
            const std::size_t i =
                state->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                fn(i, worker);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->error)
                    state->error = std::current_exception();
                state->failed.store(true, std::memory_order_relaxed);
                break;
            }
        }
        std::lock_guard<std::mutex> lock(state->mutex);
        if (--state->runners_left == 0)
            state->done.notify_all();
    };

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t r = 0; r < runners; ++r)
            queue_.emplace_back(runner);
    }
    cv_.notify_all();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->runners_left == 0; });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace runtime
} // namespace fedgpo
