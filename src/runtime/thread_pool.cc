#include "runtime/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace fedgpo {
namespace runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
}

std::vector<double>
poolMsBounds()
{
    return {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0};
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads)
{
    tasks_counter_ = obs::counterIf(obs::Level::Basic, "pool.tasks");
    wait_hist_ = obs::histogramIf(obs::Level::Basic, "pool.queue_wait_ms",
                                  poolMsBounds());
    task_hist_ =
        obs::histogramIf(obs::Level::Basic, "pool.task_ms", poolMsBounds());
    if (obs::Gauge *g = obs::gaugeIf(obs::Level::Basic, "pool.threads"))
        g->set(static_cast<double>(threads_));
    if (threads_ <= 1)
        return;
    workers_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop(std::size_t worker_id)
{
    for (;;) {
        std::function<void(std::size_t)> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(worker_id);
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::move(fn));
    std::future<void> future = task->get_future();
    obs::addCount(tasks_counter_);
    if (workers_.empty()) {
        if (task_hist_ != nullptr) {
            if (wait_hist_ != nullptr)
                wait_hist_->add(0.0);
            const auto t0 = Clock::now();
            (*task)();
            task_hist_->add(elapsedMs(t0));
        } else {
            (*task)();
        }
        return future;
    }
    const bool timed = wait_hist_ != nullptr || task_hist_ != nullptr;
    const auto enqueued = timed ? Clock::now() : Clock::time_point{};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.emplace_back(
            [this, task, timed, enqueued](std::size_t) {
                if (!timed) {
                    (*task)();
                    return;
                }
                if (wait_hist_ != nullptr)
                    wait_hist_->add(elapsedMs(enqueued));
                const auto t0 = Clock::now();
                (*task)();
                if (task_hist_ != nullptr)
                    task_hist_->add(elapsedMs(t0));
            });
    }
    cv_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>
                            &fn)
{
    if (n == 0)
        return;
    obs::addCount(tasks_counter_, n);
    if (workers_.empty()) {
        if (task_hist_ != nullptr) {
            if (wait_hist_ != nullptr)
                wait_hist_->add(0.0);
            const auto t0 = Clock::now();
            for (std::size_t i = 0; i < n; ++i)
                fn(i, 0);
            task_hist_->add(elapsedMs(t0));
        } else {
            for (std::size_t i = 0; i < n; ++i)
                fn(i, 0);
        }
        return;
    }

    // Shared fan-out state: workers claim indices from one atomic counter
    // (no stealing, no per-index queueing) and the caller blocks until
    // every runner has drained.
    struct FanOut
    {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::size_t runners_left;
        std::mutex mutex;
        std::condition_variable done;
    };
    auto state = std::make_shared<FanOut>();
    const std::size_t runners = std::min(threads_, n);
    state->runners_left = runners;

    const bool timed = wait_hist_ != nullptr || task_hist_ != nullptr;
    const auto enqueued = timed ? Clock::now() : Clock::time_point{};

    auto runner = [this, state, n, &fn, timed, enqueued](std::size_t worker) {
        if (timed && wait_hist_ != nullptr)
            wait_hist_->add(elapsedMs(enqueued));
        const auto busy_start = timed ? Clock::now() : Clock::time_point{};
        while (!state->failed.load(std::memory_order_relaxed)) {
            const std::size_t i =
                state->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                fn(i, worker);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->error)
                    state->error = std::current_exception();
                state->failed.store(true, std::memory_order_relaxed);
                break;
            }
        }
        if (timed && task_hist_ != nullptr)
            task_hist_->add(elapsedMs(busy_start));
        std::lock_guard<std::mutex> lock(state->mutex);
        if (--state->runners_left == 0)
            state->done.notify_all();
    };

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t r = 0; r < runners; ++r)
            queue_.emplace_back(runner);
    }
    cv_.notify_all();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->runners_left == 0; });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace runtime
} // namespace fedgpo
