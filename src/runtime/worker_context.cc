#include "runtime/worker_context.h"

#include <stdexcept>
#include <utility>

namespace fedgpo {
namespace runtime {

WorkerContextPool::WorkerContextPool(std::size_t workers,
                                     ModelFactory factory)
    : factory_(std::move(factory)), slots_(workers == 0 ? 1 : workers)
{
    if (!factory_)
        throw std::invalid_argument(
            "WorkerContextPool needs a model factory");
}

WorkerContext &
WorkerContextPool::acquire(std::size_t worker)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = slots_.at(worker);
    if (!slot) {
        slot = std::make_unique<WorkerContext>();
        slot->model = factory_();
    }
    return *slot;
}

bool
WorkerContextPool::materialized(std::size_t worker) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.at(worker) != nullptr;
}

} // namespace runtime
} // namespace fedgpo
