/**
 * @file
 * FedEx comparator (Khodak et al. [29]): federated hyperparameter tuning
 * via exponentiated-gradient updates over a configuration simplex. Each
 * round samples a (B, E, K) configuration from a categorical
 * distribution; the observed reward produces an importance-weighted
 * exponentiated-gradient update of the distribution. The paper attributes
 * FedEx's gap to FedGPO to the lower sample efficiency of exponentiated
 * gradient — reproduced here by the mechanism itself.
 */

#ifndef FEDGPO_OPTIM_FEDEX_H_
#define FEDGPO_OPTIM_FEDEX_H_

#include <vector>

#include "optim/global_policy.h"
#include "util/rng.h"

namespace fedgpo {
namespace optim {

/**
 * Exponentiated-gradient configuration search.
 */
class FedExOptimizer : public GlobalConfigPolicy
{
  public:
    /**
     * @param seed Sampling stream.
     * @param eta  Exponentiated-gradient step size.
     */
    explicit FedExOptimizer(std::uint64_t seed = 17, double eta = 0.08);

    std::string name() const override { return "FedEx"; }

    /** Current sampling distribution (for tests). */
    const std::vector<double> &distribution() const { return probs_; }

  protected:
    fl::GlobalParams nextConfig() override;
    void observeReward(const fl::GlobalParams &config, double reward,
                       const fl::RoundResult &result) override;

  private:
    util::Rng rng_;
    double eta_;
    std::vector<fl::GlobalParams> candidates_;
    std::vector<double> probs_;
    std::size_t last_pick_ = 0;
    double reward_baseline_ = 0.0;
    double reward_scale_ = 1.0;
    std::size_t observations_ = 0;
};

} // namespace optim
} // namespace fedgpo

#endif // FEDGPO_OPTIM_FEDEX_H_
