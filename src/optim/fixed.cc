#include "optim/fixed.h"

namespace fedgpo {
namespace optim {

FixedOptimizer::FixedOptimizer(const fl::GlobalParams &params,
                               std::string label)
    : params_(params), label_(std::move(label))
{
}

} // namespace optim
} // namespace fedgpo
