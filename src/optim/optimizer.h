/**
 * @file
 * Interface every global-parameter optimization policy implements:
 * FedGPO, the Fixed/BO/GA baselines, and the FedEx/ABS prior-work
 * comparators.
 *
 * Round protocol (mirrors the paper's Fig. 8 loop):
 *   1. chooseClients(max_k)      -> K for this round
 *   2. assign(observations, census) -> per-device (B, E) for the K
 *      selected devices, given their observed runtime/data states
 *   3. (the round::RoundEngine runs the staged round pipeline)
 *   4. feedback(result)          -> learning signal for the policy, fed
 *      the engine-built RoundResult (straggler/divergence drops already
 *      split out per cause)
 */

#ifndef FEDGPO_OPTIM_OPTIMIZER_H_
#define FEDGPO_OPTIM_OPTIMIZER_H_

#include <string>
#include <vector>

#include "comm/codec.h"
#include "fl/types.h"
#include "nn/model.h"
#include "obs/decision.h"

namespace fedgpo {
namespace optim {

/**
 * A round-by-round global-parameter policy.
 */
class ParamOptimizer
{
  public:
    virtual ~ParamOptimizer() = default;

    /** Policy name as printed in result tables. */
    virtual std::string name() const = 0;

    /**
     * Number of participant devices K for the upcoming round.
     * @param max_k Fleet-size cap (K cannot exceed the fleet).
     */
    virtual int chooseClients(int max_k) = 0;

    /**
     * Per-device (B, E) for the selected devices.
     *
     * @param devices One observation per selected device.
     * @param census  Layer census of the global model (the NN
     *                characteristics component of the optimization state).
     */
    virtual std::vector<fl::PerDeviceParams>
    assign(const std::vector<fl::DeviceObservation> &devices,
           const nn::LayerCensus &census) = 0;

    /**
     * Update-codec level for the upcoming round — FedGPO's fourth knob.
     * Called by the simulator after assign(), so a learning policy can
     * condition the choice on the state it just observed. The default
     * passes the scenario-configured codec through unchanged, which
     * keeps every existing policy (and its RNG stream) bit-identical.
     *
     * @param configured The codec from FlConfig::comm.
     */
    virtual comm::Codec
    chooseCodec(comm::Codec configured)
    {
        return configured;
    }

    /** Learning signal after the round completes. */
    virtual void feedback(const fl::RoundResult &result) = 0;

    /**
     * The decision record for the most recent completed round (after
     * feedback), or null when the policy keeps none. Policies that
     * return a record enable the `decision` section in the round trace;
     * the default — no record — costs nothing.
     */
    virtual const obs::DecisionRecord *
    lastDecision() const
    {
        return nullptr;
    }
};

} // namespace optim
} // namespace fedgpo

#endif // FEDGPO_OPTIM_OPTIMIZER_H_
