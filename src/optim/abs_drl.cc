#include "optim/abs_drl.h"

#include <algorithm>
#include <cassert>

#include "core/action_space.h"

namespace fedgpo {
namespace optim {

const tensor::Tensor &
AbsOptimizer::QNetwork::forward(const tensor::Tensor &x)
{
    return fc2.forward(relu.forward(fc1.forward(x, false), false), false);
}

void
AbsOptimizer::QNetwork::train(const tensor::Tensor &x, std::size_t action,
                              double target)
{
    const tensor::Tensor &q = forward(x);
    // MSE on the chosen action only: dL/dq_a = (q_a - target).
    tensor::Tensor grad(q.shape());
    grad[action] = static_cast<float>(q[action] - target);
    const tensor::Tensor *g = &fc2.backward(grad);
    g = &relu.backward(*g);
    fc1.backward(*g);
    for (nn::Layer *layer : {static_cast<nn::Layer *>(&fc1),
                             static_cast<nn::Layer *>(&fc2)}) {
        auto params = layer->params();
        auto grads = layer->grads();
        for (std::size_t i = 0; i < params.size(); ++i) {
            params[i]->addScaled(*grads[i], -static_cast<float>(kLr));
            grads[i]->zero();
        }
    }
}

AbsOptimizer::AbsOptimizer(std::uint64_t seed, int epochs, int clients)
    : rng_(seed), epochs_(epochs), clients_(clients)
{
    util::Rng init = rng_.split(1);
    qnet_ = std::make_unique<QNetwork>(kFeatures, 24,
                                       core::kBatchSet.size(), init);
}

tensor::Tensor
AbsOptimizer::featurize(const fl::DeviceObservation &obs)
{
    tensor::Tensor x({1, kFeatures});
    const auto cat = static_cast<std::size_t>(obs.category);
    x[cat] = 1.0f;  // category one-hot (3)
    x[3] = static_cast<float>(obs.interference.co_cpu);
    x[4] = static_cast<float>(obs.interference.co_mem);
    x[5] = static_cast<float>(obs.network.bandwidth_mbps / 100.0);
    x[6] = obs.total_classes > 0
               ? static_cast<float>(obs.data_classes) /
                     static_cast<float>(obs.total_classes)
               : 0.0f;
    return x;
}

int
AbsOptimizer::chooseClients(int max_k)
{
    return std::min(clients_, max_k);
}

std::vector<fl::PerDeviceParams>
AbsOptimizer::assign(const std::vector<fl::DeviceObservation> &devices,
                     const nn::LayerCensus &census)
{
    (void)census;
    pending_.clear();
    std::vector<fl::PerDeviceParams> out;
    out.reserve(devices.size());
    for (const auto &obs : devices) {
        tensor::Tensor x = featurize(obs);
        std::size_t action;
        if (rng_.uniform() < kEpsilon) {
            action = rng_.index(core::kBatchSet.size());
        } else {
            const tensor::Tensor &q = qnet_->forward(x);
            action = 0;
            for (std::size_t a = 1; a < core::kBatchSet.size(); ++a)
                if (q[a] > q[action])
                    action = a;
        }
        out.push_back(
            fl::PerDeviceParams{core::kBatchSet[action], epochs_});
        pending_.push_back(Decision{obs.client_id, std::move(x), action});
    }
    return out;
}

void
AbsOptimizer::feedback(const fl::RoundResult &result)
{
    global_norm_.observe(result.energy_total);
    const double e_global = global_norm_.normalize(result.energy_total);
    for (const auto &p : result.participants) {
        local_norm_.observe(p.cost.e_total);
        const double e_local = local_norm_.normalize(p.cost.e_total);
        double reward =
            core::fedgpoReward(e_global, e_local, result.test_accuracy,
                               accuracy_prev_);
        if (p.dropped)
            reward = result.test_accuracy * 100.0 - 100.0;
        for (auto &d : pending_) {
            if (d.client_id == p.client_id) {
                // One-step TD target bootstrapped on the same state
                // (device states persist across rounds).
                const tensor::Tensor &q = qnet_->forward(d.features);
                double max_q = q[0];
                for (std::size_t a = 1; a < core::kBatchSet.size(); ++a)
                    max_q = std::max(max_q, static_cast<double>(q[a]));
                qnet_->train(d.features, d.action,
                             reward + kDiscount * max_q);
                break;
            }
        }
    }
    accuracy_prev_ = result.test_accuracy;
    pending_.clear();
}

} // namespace optim
} // namespace fedgpo
