#include "optim/oracle.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/action_space.h"

namespace fedgpo {
namespace optim {

double
oracleTargetTime(const fl::FlSimulator &sim,
                 const std::vector<fl::DeviceObservation> &devices,
                 const fl::PerDeviceParams &baseline)
{
    assert(!devices.empty());
    double fastest = std::numeric_limits<double>::infinity();
    for (const auto &obs : devices) {
        fastest = std::min(fastest,
                           sim.predictedRoundTime(obs.client_id, baseline));
    }
    return fastest;
}

fl::PerDeviceParams
oracleParamsFor(const fl::FlSimulator &sim, std::size_t client_id,
                double target_time, double tolerance)
{
    assert(target_time > 0.0);
    // Pass 1: smallest relative gap to the target over the action grid.
    double min_gap = std::numeric_limits<double>::infinity();
    std::vector<double> gaps(core::kNumDeviceActions);
    for (std::size_t a = 0; a < core::kNumDeviceActions; ++a) {
        const double t = sim.predictedRoundTime(
            client_id, core::deviceActionParams(a));
        gaps[a] = std::fabs(t - target_time) / target_time;
        min_gap = std::min(min_gap, gaps[a]);
    }
    // Pass 2: among actions within the tolerance band of the best gap,
    // pick the one doing the most training (largest E, then B) — the
    // oracle equalizes finish times without starving learning.
    const double band = std::max(min_gap, tolerance);
    fl::PerDeviceParams best = core::deviceActionParams(0);
    long best_work = -1;
    for (std::size_t a = 0; a < core::kNumDeviceActions; ++a) {
        if (gaps[a] > band + 1e-12)
            continue;
        const auto params = core::deviceActionParams(a);
        const long work =
            static_cast<long>(params.epochs) * 100 + params.batch;
        if (work > best_work) {
            best = params;
            best_work = work;
        }
    }
    return best;
}

double
predictionAccuracy(const fl::FlSimulator &sim, const fl::RoundResult &result,
                   const fl::PerDeviceParams &baseline)
{
    if (result.participants.empty())
        return 1.0;
    // Rebuild the oracle target from the participants' current states.
    std::vector<fl::DeviceObservation> devices;
    for (const auto &p : result.participants) {
        fl::DeviceObservation obs;
        obs.client_id = p.client_id;
        devices.push_back(obs);
    }
    const double target = oracleTargetTime(sim, devices, baseline);

    double agreement = 0.0;
    for (const auto &p : result.participants) {
        const auto oracle = oracleParamsFor(sim, p.client_id, target);
        const double t_oracle =
            sim.predictedRoundTime(p.client_id, oracle);
        const double t_chosen =
            sim.predictedRoundTime(p.client_id, p.params);
        const double err =
            std::fabs(t_chosen - t_oracle) / std::max(t_oracle, 1e-9);
        agreement += std::max(0.0, 1.0 - err);
    }
    return agreement / static_cast<double>(result.participants.size());
}

} // namespace optim
} // namespace fedgpo
