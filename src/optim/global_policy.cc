#include "optim/global_policy.h"

#include <algorithm>

namespace fedgpo {
namespace optim {

int
GlobalConfigPolicy::chooseClients(int max_k)
{
    current_ = nextConfig();
    config_pending_ = true;
    return std::min(current_.clients, max_k);
}

std::vector<fl::PerDeviceParams>
GlobalConfigPolicy::assign(const std::vector<fl::DeviceObservation> &devices,
                           const nn::LayerCensus &census)
{
    (void)census;
    return std::vector<fl::PerDeviceParams>(
        devices.size(),
        fl::PerDeviceParams{current_.batch, current_.epochs});
}

void
GlobalConfigPolicy::feedback(const fl::RoundResult &result)
{
    energy_norm_.observe(result.energy_total);
    const double e_global = energy_norm_.normalize(result.energy_total);
    const double reward = core::fedgpoReward(
        e_global, 0.0, result.test_accuracy, accuracy_prev_);
    accuracy_prev_ = result.test_accuracy;
    if (config_pending_) {
        observeReward(current_, reward, result);
        config_pending_ = false;
    }
}

} // namespace optim
} // namespace fedgpo
