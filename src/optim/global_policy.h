/**
 * @file
 * Base class for policies that pick one global (B, E, K) per round and
 * apply it uniformly to every selected device — the shape of all the
 * paper's baselines (Fixed, Adaptive BO, Adaptive GA, FedEx). The
 * round-level reward handed to subclasses is the same Eq. 1 signal
 * FedGPO maximizes (with the per-device local term zeroed, since these
 * policies have no per-device decisions), so comparisons isolate the
 * search mechanism.
 */

#ifndef FEDGPO_OPTIM_GLOBAL_POLICY_H_
#define FEDGPO_OPTIM_GLOBAL_POLICY_H_

#include "core/reward.h"
#include "optim/optimizer.h"

namespace fedgpo {
namespace optim {

/**
 * One-global-config-per-round policy skeleton.
 */
class GlobalConfigPolicy : public ParamOptimizer
{
  public:
    GlobalConfigPolicy() = default;

    int chooseClients(int max_k) final;
    std::vector<fl::PerDeviceParams>
    assign(const std::vector<fl::DeviceObservation> &devices,
           const nn::LayerCensus &census) final;
    void feedback(const fl::RoundResult &result) final;

    /** The config applied in the most recent round. */
    const fl::GlobalParams &currentConfig() const { return current_; }

  protected:
    /** Pick the config for the upcoming round. */
    virtual fl::GlobalParams nextConfig() = 0;

    /**
     * Learn from the finished round.
     *
     * @param config Config that was applied.
     * @param reward Eq. 1 round reward (higher is better).
     * @param result Full round outcome for policies that need more.
     */
    virtual void observeReward(const fl::GlobalParams &config,
                               double reward,
                               const fl::RoundResult &result) = 0;

  private:
    fl::GlobalParams current_;
    double accuracy_prev_ = 0.0;
    core::EnergyNormalizer energy_norm_;
    bool config_pending_ = false;
};

} // namespace optim
} // namespace fedgpo

#endif // FEDGPO_OPTIM_GLOBAL_POLICY_H_
