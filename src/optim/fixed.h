/**
 * @file
 * The Fixed baseline: one (B, E, K) for the whole run. With the config
 * found by grid search this is the paper's "Fixed (Best)".
 */

#ifndef FEDGPO_OPTIM_FIXED_H_
#define FEDGPO_OPTIM_FIXED_H_

#include "optim/global_policy.h"

namespace fedgpo {
namespace optim {

/**
 * Constant global-parameter policy.
 */
class FixedOptimizer : public GlobalConfigPolicy
{
  public:
    /** @param params The fixed (B, E, K). */
    explicit FixedOptimizer(const fl::GlobalParams &params,
                            std::string label = "Fixed");

    std::string name() const override { return label_; }

  protected:
    fl::GlobalParams nextConfig() override { return params_; }
    void
    observeReward(const fl::GlobalParams &, double,
                  const fl::RoundResult &) override
    {
    }

  private:
    fl::GlobalParams params_;
    std::string label_;
};

} // namespace optim
} // namespace fedgpo

#endif // FEDGPO_OPTIM_FIXED_H_
