/**
 * @file
 * Adapter that turns a lambda into a ParamOptimizer — used by the benches
 * and examples to drive the simulator with custom assignment rules (e.g.
 * the oracle policies of the motivation figures) without defining a new
 * policy class each time.
 */

#ifndef FEDGPO_OPTIM_CALLBACK_POLICY_H_
#define FEDGPO_OPTIM_CALLBACK_POLICY_H_

#include <functional>
#include <string>
#include <utility>

#include "optim/optimizer.h"

namespace fedgpo {
namespace optim {

/**
 * ParamOptimizer backed by a std::function.
 */
class CallbackPolicy : public ParamOptimizer
{
  public:
    using AssignFn = std::function<std::vector<fl::PerDeviceParams>(
        const std::vector<fl::DeviceObservation> &,
        const nn::LayerCensus &)>;
    using FeedbackFn = std::function<void(const fl::RoundResult &)>;

    /**
     * @param name     Display name.
     * @param k        Participant count per round (clamped to the fleet).
     * @param assign   Per-device assignment function.
     * @param feedback Optional learning hook.
     */
    CallbackPolicy(std::string name, int k, AssignFn assign,
                   FeedbackFn feedback = nullptr)
        : name_(std::move(name)), k_(k), assign_(std::move(assign)),
          feedback_(std::move(feedback))
    {
    }

    std::string name() const override { return name_; }

    int
    chooseClients(int max_k) override
    {
        return std::min(k_, max_k);
    }

    std::vector<fl::PerDeviceParams>
    assign(const std::vector<fl::DeviceObservation> &devices,
           const nn::LayerCensus &census) override
    {
        return assign_(devices, census);
    }

    void
    feedback(const fl::RoundResult &result) override
    {
        if (feedback_)
            feedback_(result);
    }

  private:
    std::string name_;
    int k_;
    AssignFn assign_;
    FeedbackFn feedback_;
};

} // namespace optim
} // namespace fedgpo

#endif // FEDGPO_OPTIM_CALLBACK_POLICY_H_
