/**
 * @file
 * ABS comparator (Ma et al. [49]): adaptive batch size for FL in
 * resource-constrained edge computing via deep reinforcement learning.
 * ABS adjusts ONLY the local minibatch size B per device — E and K stay
 * at their defaults — which is exactly why the paper finds it is not
 * robust to data heterogeneity (B does not control how much non-IID data
 * reaches the gradients) and trails FedGPO on the straggler problem.
 *
 * The DQN is a small MLP built from this repository's own nn layers,
 * trained online with one-step TD targets and epsilon-greedy exploration.
 */

#ifndef FEDGPO_OPTIM_ABS_DRL_H_
#define FEDGPO_OPTIM_ABS_DRL_H_

#include <memory>
#include <vector>

#include "core/reward.h"
#include "nn/dense.h"
#include "nn/activations.h"
#include "optim/optimizer.h"
#include "util/rng.h"

namespace fedgpo {
namespace optim {

/**
 * Deep-RL batch-size-only policy.
 */
class AbsOptimizer : public ParamOptimizer
{
  public:
    /**
     * @param seed    Exploration / weight-init stream.
     * @param epochs  Fixed E used for every device.
     * @param clients Fixed K used for every round.
     */
    explicit AbsOptimizer(std::uint64_t seed = 19, int epochs = 10,
                          int clients = 20);

    std::string name() const override { return "ABS"; }
    int chooseClients(int max_k) override;
    std::vector<fl::PerDeviceParams>
    assign(const std::vector<fl::DeviceObservation> &devices,
           const nn::LayerCensus &census) override;
    void feedback(const fl::RoundResult &result) override;

  private:
    static constexpr std::size_t kFeatures = 7;
    static constexpr double kEpsilon = 0.1;
    static constexpr double kLr = 0.01;
    static constexpr double kDiscount = 0.1;

    /** Tiny MLP Q-network over batch-size actions. */
    struct QNetwork
    {
        nn::Dense fc1;
        nn::ReLU relu;
        nn::Dense fc2;

        QNetwork(std::size_t in, std::size_t hidden, std::size_t out,
                 util::Rng &rng)
            : fc1(in, hidden, rng), fc2(hidden, out, rng)
        {
        }

        /** Forward one state, returning per-action Q values. */
        const tensor::Tensor &forward(const tensor::Tensor &x);

        /** One TD step: fit the chosen action's Q toward `target`. */
        void train(const tensor::Tensor &x, std::size_t action,
                   double target);
    };

    /** Featurize one device observation. */
    static tensor::Tensor featurize(const fl::DeviceObservation &obs);

    struct Decision
    {
        std::size_t client_id;
        tensor::Tensor features;
        std::size_t action;
    };

    util::Rng rng_;
    int epochs_;
    int clients_;
    std::unique_ptr<QNetwork> qnet_;
    std::vector<Decision> pending_;
    double accuracy_prev_ = 0.0;
    core::EnergyNormalizer global_norm_;
    core::EnergyNormalizer local_norm_;
};

} // namespace optim
} // namespace fedgpo

#endif // FEDGPO_OPTIM_ABS_DRL_H_
