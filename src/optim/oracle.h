/**
 * @file
 * The straggler-gap oracle: per-device (B, E) that minimizes the
 * performance gap across the selected devices, computed from the cost
 * model with the devices' *current* runtime states.
 *
 * This is the reference the paper scores FedGPO's prediction accuracy
 * against (Table 5: "these parameters are identified in terms of
 * minimizing the performance gap across the devices"), and the "adaptive
 * adjustment" used by the motivation figures (Figs. 5-6).
 */

#ifndef FEDGPO_OPTIM_ORACLE_H_
#define FEDGPO_OPTIM_ORACLE_H_

#include <vector>

#include "fl/simulator.h"

namespace fedgpo {
namespace optim {

/**
 * Target finish time for a round: the predicted time of the *fastest*
 * tier under the baseline parameters — every other device should shrink
 * its work to close the gap to that target.
 */
double oracleTargetTime(const fl::FlSimulator &sim,
                        const std::vector<fl::DeviceObservation> &devices,
                        const fl::PerDeviceParams &baseline);

/**
 * The Table 2 action closest to the target time for one device, from the
 * cost model. Ties (several actions within `tolerance` of the target)
 * break toward the most useful work (largest E, then largest B), so the
 * oracle never starves training to win the race.
 */
fl::PerDeviceParams oracleParamsFor(const fl::FlSimulator &sim,
                                    std::size_t client_id,
                                    double target_time,
                                    double tolerance = 0.15);

/**
 * Per-round oracle prediction accuracy (Table 5's metric): the mean
 * absolute percentage agreement between the achieved per-device round
 * times and the oracle's, 100% when identical.
 */
double predictionAccuracy(const fl::FlSimulator &sim,
                          const fl::RoundResult &result,
                          const fl::PerDeviceParams &baseline);

} // namespace optim
} // namespace fedgpo

#endif // FEDGPO_OPTIM_ORACLE_H_
