#include "optim/genetic.h"

#include <algorithm>
#include <cassert>

#include "core/action_space.h"

namespace fedgpo {
namespace optim {

GeneticOptimizer::GeneticOptimizer(std::uint64_t seed,
                                   std::size_t population_size,
                                   double mutation_rate)
    : rng_(seed), pop_size_(std::max<std::size_t>(population_size, 4)),
      mutation_rate_(mutation_rate)
{
    population_.reserve(pop_size_);
    for (std::size_t i = 0; i < pop_size_; ++i)
        population_.push_back(randomGenome());
}

fl::GlobalParams
GeneticOptimizer::decode(const Genome &g) const
{
    return fl::GlobalParams{core::kBatchSet[g.b], core::kEpochSet[g.e],
                            core::kClientSet[g.k]};
}

GeneticOptimizer::Genome
GeneticOptimizer::randomGenome()
{
    Genome g;
    g.b = rng_.index(core::kBatchSet.size());
    g.e = rng_.index(core::kEpochSet.size());
    g.k = rng_.index(core::kClientSet.size());
    return g;
}

fl::GlobalParams
GeneticOptimizer::nextConfig()
{
    assert(cursor_ < population_.size());
    return decode(population_[cursor_]);
}

void
GeneticOptimizer::observeReward(const fl::GlobalParams &config,
                                double reward, const fl::RoundResult &)
{
    assert(decode(population_[cursor_]) == config);
    (void)config;
    population_[cursor_].fitness = reward;
    population_[cursor_].scored = true;
    ++cursor_;
    if (cursor_ >= population_.size()) {
        evolve();
        cursor_ = 0;
    }
}

void
GeneticOptimizer::evolve()
{
    ++generation_;
    // Rank by fitness, best first.
    std::sort(population_.begin(), population_.end(),
              [](const Genome &a, const Genome &b) {
                  return a.fitness > b.fitness;
              });
    const std::size_t elite = std::max<std::size_t>(pop_size_ / 4, 1);
    std::vector<Genome> next(population_.begin(),
                             population_.begin() +
                                 static_cast<long>(elite));
    auto tournament = [&]() -> const Genome & {
        const Genome &a = population_[rng_.index(pop_size_)];
        const Genome &b = population_[rng_.index(pop_size_)];
        return a.fitness >= b.fitness ? a : b;
    };
    while (next.size() < pop_size_) {
        const Genome &pa = tournament();
        const Genome &pb = tournament();
        Genome child;
        // Uniform crossover per gene.
        child.b = rng_.bernoulli(0.5) ? pa.b : pb.b;
        child.e = rng_.bernoulli(0.5) ? pa.e : pb.e;
        child.k = rng_.bernoulli(0.5) ? pa.k : pb.k;
        // Per-gene mutation.
        if (rng_.bernoulli(mutation_rate_))
            child.b = rng_.index(core::kBatchSet.size());
        if (rng_.bernoulli(mutation_rate_))
            child.e = rng_.index(core::kEpochSet.size());
        if (rng_.bernoulli(mutation_rate_))
            child.k = rng_.index(core::kClientSet.size());
        next.push_back(child);
    }
    for (auto &g : next) {
        g.scored = false;
        g.fitness = 0.0;
    }
    population_ = std::move(next);
}

} // namespace optim
} // namespace fedgpo
