/**
 * @file
 * Adaptive (GA) baseline: genetic-algorithm global-parameter search
 * (paper Section 4.1, citing Alibrahim & Ludwig). One individual is
 * evaluated per aggregation round; once the population has been scored,
 * tournament selection + uniform crossover + per-gene mutation produce
 * the next generation. Higher sample efficiency than BO, lower than
 * tabular RL — the ordering Figure 9 reports.
 */

#ifndef FEDGPO_OPTIM_GENETIC_H_
#define FEDGPO_OPTIM_GENETIC_H_

#include <vector>

#include "optim/global_policy.h"
#include "util/rng.h"

namespace fedgpo {
namespace optim {

/**
 * GA over the discrete (B, E, K) grid.
 */
class GeneticOptimizer : public GlobalConfigPolicy
{
  public:
    /**
     * @param seed            Random stream for init/crossover/mutation.
     * @param population_size Individuals per generation.
     * @param mutation_rate   Per-gene mutation probability.
     */
    explicit GeneticOptimizer(std::uint64_t seed = 13,
                              std::size_t population_size = 8,
                              double mutation_rate = 0.2);

    std::string name() const override { return "Adaptive (GA)"; }

    /** Generation counter (for tests). */
    std::size_t generation() const { return generation_; }

  protected:
    fl::GlobalParams nextConfig() override;
    void observeReward(const fl::GlobalParams &config, double reward,
                       const fl::RoundResult &result) override;

  private:
    /** Genome: indices into the Table 2 value sets. */
    struct Genome
    {
        std::size_t b = 0, e = 0, k = 0;
        double fitness = 0.0;
        bool scored = false;
    };

    fl::GlobalParams decode(const Genome &g) const;
    Genome randomGenome();
    void evolve();

    util::Rng rng_;
    std::size_t pop_size_;
    double mutation_rate_;
    std::vector<Genome> population_;
    std::size_t cursor_ = 0;       //!< next individual to evaluate
    std::size_t generation_ = 0;
};

} // namespace optim
} // namespace fedgpo

#endif // FEDGPO_OPTIM_GENETIC_H_
