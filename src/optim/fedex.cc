#include "optim/fedex.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/action_space.h"

namespace fedgpo {
namespace optim {

FedExOptimizer::FedExOptimizer(std::uint64_t seed, double eta)
    : rng_(seed), eta_(eta), candidates_(core::allGlobalParams()),
      probs_(candidates_.size(),
             1.0 / static_cast<double>(candidates_.size()))
{
}

fl::GlobalParams
FedExOptimizer::nextConfig()
{
    last_pick_ = rng_.categorical(probs_);
    return candidates_[last_pick_];
}

void
FedExOptimizer::observeReward(const fl::GlobalParams &config, double reward,
                              const fl::RoundResult &)
{
    assert(candidates_[last_pick_] == config);
    (void)config;

    // Running baseline and scale keep the EG exponent well conditioned.
    ++observations_;
    const double lr = 1.0 / static_cast<double>(observations_);
    reward_baseline_ += lr * (reward - reward_baseline_);
    reward_scale_ +=
        lr * (std::fabs(reward - reward_baseline_) - reward_scale_);
    const double scale = std::max(reward_scale_, 1e-3);
    const double advantage = (reward - reward_baseline_) / scale;

    // Importance-weighted exponentiated gradient on the sampled arm.
    const double p = std::max(probs_[last_pick_], 1e-6);
    const double exponent =
        std::clamp(eta_ * advantage / p, -8.0, 8.0);
    probs_[last_pick_] *= std::exp(exponent);

    // Renormalize with a small uniform floor so no arm dies permanently
    // (the environment is non-stationary).
    double total = 0.0;
    for (double w : probs_)
        total += w;
    const double floor = 1e-4 / static_cast<double>(probs_.size());
    double retotal = 0.0;
    for (auto &w : probs_) {
        w = w / total + floor;
        retotal += w;
    }
    for (auto &w : probs_)
        w /= retotal;
}

} // namespace optim
} // namespace fedgpo
