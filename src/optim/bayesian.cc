#include "optim/bayesian.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/action_space.h"

namespace fedgpo {
namespace optim {

namespace {

constexpr double kLengthScale = 0.35;
constexpr double kNoiseVar = 0.05;

/** Standard normal pdf/cdf for expected improvement. */
double
normPdf(double z)
{
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double
normCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

/**
 * In-place Cholesky solve: A x = b with A symmetric positive definite.
 * A is overwritten with its Cholesky factor.
 */
std::vector<double>
choleskySolve(std::vector<double> a, std::vector<double> b, std::size_t n)
{
    // Decompose A = L L^T.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a[i * n + j];
            for (std::size_t k = 0; k < j; ++k)
                sum -= a[i * n + k] * a[j * n + k];
            if (i == j)
                a[i * n + j] = std::sqrt(std::max(sum, 1e-10));
            else
                a[i * n + j] = sum / a[j * n + j];
        }
    }
    // Forward substitution L y = b.
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= a[i * n + k] * b[k];
        b[i] = sum / a[i * n + i];
    }
    // Back substitution L^T x = y.
    for (std::size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (std::size_t k = i + 1; k < n; ++k)
            sum -= a[k * n + i] * b[k];
        b[i] = sum / a[i * n + i];
    }
    return b;
}

} // namespace

BayesianOptimizer::BayesianOptimizer(std::uint64_t seed, int warmup_rounds)
    : rng_(seed), warmup_(warmup_rounds),
      candidates_(core::allGlobalParams())
{
}

std::array<double, 3>
BayesianOptimizer::features(const fl::GlobalParams &p)
{
    return {std::log2(static_cast<double>(p.batch)) / 5.0,
            static_cast<double>(p.epochs) / 20.0,
            static_cast<double>(p.clients) / 20.0};
}

double
BayesianOptimizer::kernel(const std::array<double, 3> &a,
                          const std::array<double, 3> &b)
{
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return std::exp(-d2 / (2.0 * kLengthScale * kLengthScale));
}

void
BayesianOptimizer::predict(std::vector<double> &mean,
                           std::vector<double> &sd) const
{
    const std::size_t n = rewards_.size();
    assert(n > 0);

    // z-score the targets so the unit-variance GP prior fits.
    double mu = 0.0;
    for (double r : rewards_)
        mu += r;
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (double r : rewards_)
        var += (r - mu) * (r - mu);
    const double scale = std::sqrt(std::max(var / static_cast<double>(n),
                                            1e-6));
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i)
        y[i] = (rewards_[i] - mu) / scale;

    // Gram matrix with noise on the diagonal.
    std::vector<std::array<double, 3>> xs(n);
    for (std::size_t i = 0; i < n; ++i)
        xs[i] = features(candidates_[observed_idx_[i]]);
    std::vector<double> gram(n * n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            gram[i * n + j] = kernel(xs[i], xs[j]);
        gram[i * n + i] += kNoiseVar;
    }
    std::vector<double> alpha = choleskySolve(gram, y, n);

    mean.assign(candidates_.size(), 0.0);
    sd.assign(candidates_.size(), 0.0);
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
        const auto xc = features(candidates_[c]);
        double m = 0.0;
        double reduction = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double kx = kernel(xc, xs[i]);
            m += kx * alpha[i];
            reduction += kx * kx;  // Nystrom-style variance proxy
        }
        mean[c] = m * scale + mu;
        // Cheap predictive-variance proxy: prior variance shrunk by the
        // (normalized) similarity mass to observed points. Keeps the
        // acquisition O(n * |candidates|) instead of O(n^2 * |cand|).
        const double shrink =
            reduction / (static_cast<double>(n) * kNoiseVar + reduction);
        sd[c] = scale * std::sqrt(std::max(1.0 - shrink, 1e-4));
    }
}

fl::GlobalParams
BayesianOptimizer::nextConfig()
{
    if (static_cast<int>(rewards_.size()) < warmup_) {
        const std::size_t pick = rng_.index(candidates_.size());
        return candidates_[pick];
    }
    std::vector<double> mean, sd;
    predict(mean, sd);
    const double best = *std::max_element(rewards_.begin(), rewards_.end());
    std::size_t best_c = 0;
    double best_ei = -1.0;
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
        const double z = (mean[c] - best) / sd[c];
        const double ei = (mean[c] - best) * normCdf(z) + sd[c] * normPdf(z);
        if (ei > best_ei) {
            best_ei = ei;
            best_c = c;
        }
    }
    return candidates_[best_c];
}

void
BayesianOptimizer::observeReward(const fl::GlobalParams &config,
                                 double reward, const fl::RoundResult &)
{
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
        if (candidates_[c] == config) {
            observed_idx_.push_back(c);
            rewards_.push_back(reward);
            return;
        }
    }
    assert(false && "BO observed a config outside the candidate grid");
}

} // namespace optim
} // namespace fedgpo
