/**
 * @file
 * Adaptive (BO) baseline: round-by-round global-parameter selection with
 * Gaussian-process Bayesian optimization and expected improvement, the
 * family "many state-of-the-art approaches are based" on (paper Section
 * 4.1). Its per-round sample inefficiency relative to tabular RL is
 * exactly what Figures 9-11 measure.
 */

#ifndef FEDGPO_OPTIM_BAYESIAN_H_
#define FEDGPO_OPTIM_BAYESIAN_H_

#include <vector>

#include "optim/global_policy.h"
#include "util/rng.h"

namespace fedgpo {
namespace optim {

/**
 * GP-EI Bayesian optimizer over the discrete (B, E, K) grid.
 */
class BayesianOptimizer : public GlobalConfigPolicy
{
  public:
    /**
     * @param seed          Exploration/tie-break stream.
     * @param warmup_rounds Rounds of random sampling before the GP is
     *                      trusted.
     */
    explicit BayesianOptimizer(std::uint64_t seed = 11,
                               int warmup_rounds = 5);

    std::string name() const override { return "Adaptive (BO)"; }

  protected:
    fl::GlobalParams nextConfig() override;
    void observeReward(const fl::GlobalParams &config, double reward,
                       const fl::RoundResult &result) override;

  private:
    /** Normalized feature vector of a config. */
    static std::array<double, 3> features(const fl::GlobalParams &p);

    /** RBF kernel between two feature vectors. */
    static double kernel(const std::array<double, 3> &a,
                         const std::array<double, 3> &b);

    /**
     * Fit the GP on all observations and return (mean, sd) predictions
     * for every candidate config.
     */
    void predict(std::vector<double> &mean, std::vector<double> &sd) const;

    util::Rng rng_;
    int warmup_;
    std::vector<fl::GlobalParams> candidates_;
    std::vector<std::size_t> observed_idx_; //!< candidate index per sample
    std::vector<double> rewards_;
};

} // namespace optim
} // namespace fedgpo

#endif // FEDGPO_OPTIM_BAYESIAN_H_
