/**
 * @file
 * Pluggable update codecs: how a client's model update is encoded for
 * the uplink. The codec determines the modeled payload bytes — which the
 * cost model converts into airtime, radio energy, retry charges, and
 * ultimately quorum outcomes — while the *decoded* update is what the
 * server aggregates, so lossy codecs trade accuracy for communication.
 *
 * Three codecs (ROADMAP item 3, exposed to FedGPO as its fourth knob):
 *
 *  - Identity:  raw float32 payload; bit-inert (the decoded update equals
 *    the trained weights exactly, and the payload equals the proxy
 *    param_bytes), so default-configured runs replay the pre-codec
 *    goldens unchanged.
 *  - Int8Quant: QSGD-style stochastic quantization. Values are chunked,
 *    each chunk scaled by its max-|v| and stochastically rounded to
 *    signed 8-bit levels. Unbiased (E[decode] = value) and deterministic:
 *    rounding draws come from the per-(round, client) comm stream, a
 *    pure function of (seed, round, client), so encoding is bit-identical
 *    at any FEDGPO_THREADS.
 *  - TopK: magnitude sparsification with error feedback. Only the k
 *    largest-|v| coordinates of (delta + residual) are transmitted as
 *    (index, value) pairs; the untransmitted remainder is banked in a
 *    client-resident residual and re-offered next round, which is what
 *    makes sparsified SGD converge.
 *
 * Codecs operate on the update *delta* (trained weights minus global
 * weights): deltas shrink as training converges, which is exactly the
 * signal quantization scales and top-k selection should see.
 */

#ifndef FEDGPO_COMM_CODEC_H_
#define FEDGPO_COMM_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fedgpo {
namespace comm {

/**
 * Codec level, in the fixed order FedGPO's fourth action axis indexes.
 */
enum class Codec : int
{
    Identity = 0, //!< raw float32, 4 bytes/param
    Int8Quant,    //!< stochastic 8-bit quantization, ~1 byte/param
    TopK,         //!< sparse (index, value) pairs, 8 bytes/kept param
};

/** Number of codec levels. */
inline constexpr std::size_t kNumCodecs = 3;

/** Short stable label ("identity"/"int8"/"topk"). */
const char *codecName(Codec codec);

/**
 * Parse a codec label; returns false (and leaves `out` untouched) on an
 * unknown name.
 */
bool codecFromName(const std::string &name, Codec &out);

/**
 * Codec configuration knobs (FlConfig::comm).
 */
struct CommConfig
{
    Codec codec = Codec::Identity; //!< default: bit-inert
    /**
     * TopK: fraction of coordinates transmitted per update, in (0, 1].
     * The payload is 8 bytes per kept coordinate, so the modeled
     * compression ratio vs raw float32 is 1 / (2 * fraction).
     */
    double topk_fraction = 0.1;
    /**
     * Int8Quant: values per quantization chunk (one float32 scale is
     * transmitted per chunk). Payload: n + 4 * ceil(n / chunk) bytes.
     */
    std::size_t quant_chunk = 256;
};

/**
 * One encoded update — the modeled wire message. Only payload_bytes
 * feeds the cost model; the typed vectors carry the actual (simulated)
 * content so decode() reconstructs exactly what a real receiver would.
 */
struct Encoded
{
    Codec codec = Codec::Identity;
    std::size_t param_count = 0;
    std::uint64_t payload_bytes = 0;
    std::vector<float> dense;           //!< Identity: raw values
    std::vector<std::int8_t> quantized; //!< Int8Quant: levels in [-127,127]
    std::vector<float> scales;          //!< Int8Quant: per-chunk max-|v|
    std::vector<std::uint32_t> indices; //!< TopK: kept coordinates (asc)
    std::vector<float> values;          //!< TopK: kept values
};

/**
 * An update codec. Stateless; all per-client state (the error-feedback
 * residual) is owned by the client and passed in, so one codec instance
 * serves concurrent encodes of different clients race-free.
 */
class UpdateCodec
{
  public:
    virtual ~UpdateCodec() = default;

    /** Which codec level this is. */
    virtual Codec kind() const = 0;

    /**
     * Modeled payload bytes for an update of `param_count` parameters —
     * a pure function, usable for cost prediction without encoding.
     */
    virtual std::uint64_t payloadBytes(std::size_t param_count) const = 0;

    /**
     * Encode one update delta.
     *
     * @param delta    Update to transmit (trained minus global weights).
     * @param residual Client-resident error-feedback state. Codecs
     *                 without error feedback leave it untouched; TopK
     *                 adds it to the delta before selection and stores
     *                 the untransmitted remainder back.
     * @param rng      Per-(round, client) comm stream for stochastic
     *                 codecs. Encoding must be a pure function of
     *                 (delta, residual, rng state) — never of thread
     *                 scheduling.
     * @param out      Receives the wire message (overwritten).
     */
    virtual void encode(const std::vector<float> &delta,
                        std::vector<float> &residual, util::Rng &rng,
                        Encoded &out) const = 0;

    /**
     * Reconstruct the server-visible delta from a wire message.
     * `delta_out` is resized to the message's param_count.
     */
    virtual void decode(const Encoded &encoded,
                        std::vector<float> &delta_out) const = 0;
};

/** Raw float32 passthrough (bit-inert default). */
class IdentityCodec : public UpdateCodec
{
  public:
    Codec kind() const override { return Codec::Identity; }
    std::uint64_t payloadBytes(std::size_t param_count) const override;
    void encode(const std::vector<float> &delta,
                std::vector<float> &residual, util::Rng &rng,
                Encoded &out) const override;
    void decode(const Encoded &encoded,
                std::vector<float> &delta_out) const override;
};

/** QSGD-style stochastic 8-bit quantization with per-chunk scales. */
class Int8QuantCodec : public UpdateCodec
{
  public:
    explicit Int8QuantCodec(std::size_t chunk = 256);
    Codec kind() const override { return Codec::Int8Quant; }
    std::uint64_t payloadBytes(std::size_t param_count) const override;
    void encode(const std::vector<float> &delta,
                std::vector<float> &residual, util::Rng &rng,
                Encoded &out) const override;
    void decode(const Encoded &encoded,
                std::vector<float> &delta_out) const override;

    std::size_t chunk() const { return chunk_; }

  private:
    std::size_t chunk_;
};

/** Top-k magnitude sparsification with client-side error feedback. */
class TopKCodec : public UpdateCodec
{
  public:
    explicit TopKCodec(double fraction = 0.1);
    Codec kind() const override { return Codec::TopK; }
    std::uint64_t payloadBytes(std::size_t param_count) const override;
    void encode(const std::vector<float> &delta,
                std::vector<float> &residual, util::Rng &rng,
                Encoded &out) const override;
    void decode(const Encoded &encoded,
                std::vector<float> &delta_out) const override;

    double fraction() const { return fraction_; }

    /** Kept coordinates for an update of `param_count` parameters. */
    std::size_t keptCount(std::size_t param_count) const;

  private:
    double fraction_;
};

/** Build the codec for one level under the given knobs. */
std::unique_ptr<UpdateCodec> makeCodec(Codec codec,
                                       const CommConfig &config);

} // namespace comm
} // namespace fedgpo

#endif // FEDGPO_COMM_CODEC_H_
