/**
 * @file
 * Communication model: converts a codec's encoded payload bytes into
 * modeled transmission time and radio energy through the existing
 * device::NetworkModel / device::uploadCost path (paper Eq. 3), so the
 * upload airtime, retry/backoff charges, straggler gating, and quorum
 * outcomes all respond to the codec choice.
 *
 * Byte bookkeeping convention: all byte counts are *proxy* bytes (the
 * tiny proxy model's payload); the workload's bytes_scale maps them onto
 * the full-size model inside the cost functions, exactly as the rest of
 * the cost model does. Compression ratios are scale-invariant.
 */

#ifndef FEDGPO_COMM_COMM_MODEL_H_
#define FEDGPO_COMM_COMM_MODEL_H_

#include <cstdint>

#include "comm/codec.h"
#include "device/cost_model.h"
#include "device/network_model.h"

namespace fedgpo {
namespace comm {

/**
 * Per-participant traffic record for one round, filled by the round
 * pipeline's Encode stage and consumed by the Cost/Recover stages and
 * the trace writer. Counts are exact integers (proxy bytes).
 */
struct CommRecord
{
    std::uint64_t bytes_up = 0;   //!< encoded update payload (+ retries)
    std::uint64_t bytes_down = 0; //!< global model download
    bool encoded = false;         //!< a non-identity encode ran
};

/**
 * Thin facade over the device-layer transmission cost functions, keyed
 * by payload bytes instead of a fixed model size.
 */
class CommModel
{
  public:
    explicit CommModel(const device::WorkloadCost &cost) : cost_(&cost) {}

    /** One upload attempt of `payload_bytes` (Eq. 3 on the uplink). */
    device::TxCost
    uploadCost(std::uint64_t payload_bytes,
               const device::NetworkState &network) const
    {
        return device::uploadCost(*cost_,
                                  static_cast<std::size_t>(payload_bytes),
                                  network);
    }

    /** Airtime of a one-way transfer of `payload_bytes`. */
    double
    txTime(std::uint64_t payload_bytes,
           const device::NetworkState &network) const
    {
        return device::NetworkModel::txTime(
            static_cast<double>(payload_bytes) * cost_->bytes_scale,
            network.bandwidth_mbps);
    }

    /** Raw-bytes / encoded-bytes; 0 when nothing was uploaded. */
    static double
    compressionRatio(std::uint64_t full_bytes, std::uint64_t encoded_bytes)
    {
        if (encoded_bytes == 0)
            return 0.0;
        return static_cast<double>(full_bytes) /
               static_cast<double>(encoded_bytes);
    }

  private:
    const device::WorkloadCost *cost_;
};

} // namespace comm
} // namespace fedgpo

#endif // FEDGPO_COMM_COMM_MODEL_H_
