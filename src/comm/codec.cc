#include "comm/codec.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fedgpo {
namespace comm {

const char *
codecName(Codec codec)
{
    switch (codec) {
      case Codec::Identity:  return "identity";
      case Codec::Int8Quant: return "int8";
      case Codec::TopK:      return "topk";
    }
    return "unknown";
}

bool
codecFromName(const std::string &name, Codec &out)
{
    if (name == "identity") {
        out = Codec::Identity;
        return true;
    }
    if (name == "int8") {
        out = Codec::Int8Quant;
        return true;
    }
    if (name == "topk") {
        out = Codec::TopK;
        return true;
    }
    return false;
}

// ---- Identity -------------------------------------------------------------

std::uint64_t
IdentityCodec::payloadBytes(std::size_t param_count) const
{
    return static_cast<std::uint64_t>(param_count) * sizeof(float);
}

void
IdentityCodec::encode(const std::vector<float> &delta,
                      std::vector<float> &residual, util::Rng &rng,
                      Encoded &out) const
{
    (void)residual;
    (void)rng;
    out = Encoded{};
    out.codec = Codec::Identity;
    out.param_count = delta.size();
    out.payload_bytes = payloadBytes(delta.size());
    out.dense = delta;
}

void
IdentityCodec::decode(const Encoded &encoded,
                      std::vector<float> &delta_out) const
{
    assert(encoded.codec == Codec::Identity);
    delta_out = encoded.dense;
}

// ---- Int8Quant ------------------------------------------------------------

Int8QuantCodec::Int8QuantCodec(std::size_t chunk)
    : chunk_(chunk == 0 ? 1 : chunk)
{
}

std::uint64_t
Int8QuantCodec::payloadBytes(std::size_t param_count) const
{
    const std::uint64_t n = param_count;
    const std::uint64_t n_chunks = (n + chunk_ - 1) / chunk_;
    return n + n_chunks * sizeof(float);
}

void
Int8QuantCodec::encode(const std::vector<float> &delta,
                       std::vector<float> &residual, util::Rng &rng,
                       Encoded &out) const
{
    (void)residual;
    const std::size_t n = delta.size();
    out = Encoded{};
    out.codec = Codec::Int8Quant;
    out.param_count = n;
    out.payload_bytes = payloadBytes(n);
    out.quantized.assign(n, 0);
    out.scales.reserve((n + chunk_ - 1) / chunk_);

    for (std::size_t start = 0; start < n; start += chunk_) {
        const std::size_t end = std::min(start + chunk_, n);

        // A non-finite value anywhere in the chunk poisons its scale; the
        // chunk is transmitted as a NaN scale so decode reproduces the
        // divergence and the server's rejectDivergedUpdates still fires.
        // (Casting a non-finite float to int8 would be UB, so the level
        // loop below must never see one.)
        bool finite = true;
        float max_abs = 0.0f;
        for (std::size_t i = start; i < end; ++i) {
            if (!std::isfinite(delta[i])) {
                finite = false;
                break;
            }
            max_abs = std::max(max_abs, std::fabs(delta[i]));
        }
        if (!finite) {
            out.scales.push_back(std::numeric_limits<float>::quiet_NaN());
            continue;
        }
        out.scales.push_back(max_abs);
        if (max_abs == 0.0f)
            continue; // all-zero chunk: levels stay 0

        // Stochastic rounding to 255 signed levels: x in [-127, 127],
        // floor plus a Bernoulli(frac) bump — E[level] = x exactly, so
        // the decoded value is an unbiased estimate of the input.
        for (std::size_t i = start; i < end; ++i) {
            const double x = static_cast<double>(delta[i]) /
                             static_cast<double>(max_abs) * 127.0;
            double level = std::floor(x);
            if (rng.bernoulli(x - level))
                level += 1.0;
            level = std::clamp(level, -127.0, 127.0);
            out.quantized[i] = static_cast<std::int8_t>(level);
        }
    }
}

void
Int8QuantCodec::decode(const Encoded &encoded,
                       std::vector<float> &delta_out) const
{
    assert(encoded.codec == Codec::Int8Quant);
    const std::size_t n = encoded.param_count;
    delta_out.assign(n, 0.0f);
    for (std::size_t start = 0; start < n; start += chunk_) {
        const std::size_t end = std::min(start + chunk_, n);
        const float scale = encoded.scales[start / chunk_];
        if (!std::isfinite(scale)) {
            for (std::size_t i = start; i < end; ++i)
                delta_out[i] = scale; // NaN propagates
            continue;
        }
        if (scale == 0.0f)
            continue;
        for (std::size_t i = start; i < end; ++i)
            delta_out[i] = static_cast<float>(
                static_cast<double>(encoded.quantized[i]) / 127.0 *
                static_cast<double>(scale));
    }
}

// ---- TopK -----------------------------------------------------------------

TopKCodec::TopKCodec(double fraction)
    : fraction_(std::clamp(fraction, 1e-6, 1.0))
{
}

std::size_t
TopKCodec::keptCount(std::size_t param_count) const
{
    if (param_count == 0)
        return 0;
    const std::size_t k = static_cast<std::size_t>(
        std::ceil(fraction_ * static_cast<double>(param_count)));
    return std::clamp<std::size_t>(k, 1, param_count);
}

std::uint64_t
TopKCodec::payloadBytes(std::size_t param_count) const
{
    // One (uint32 index, float32 value) pair per kept coordinate.
    return static_cast<std::uint64_t>(keptCount(param_count)) *
           (sizeof(std::uint32_t) + sizeof(float));
}

void
TopKCodec::encode(const std::vector<float> &delta,
                  std::vector<float> &residual, util::Rng &rng,
                  Encoded &out) const
{
    (void)rng;
    const std::size_t n = delta.size();
    residual.resize(n, 0.0f);

    // Error feedback: offer the accumulated residual together with the
    // fresh delta, so coordinates starved of bandwidth eventually win.
    std::vector<float> acc(n);
    for (std::size_t i = 0; i < n; ++i)
        acc[i] = delta[i] + residual[i];

    // Deterministic selection: a total order (magnitude desc, index asc;
    // non-finite sorts first so divergence is transmitted, not silently
    // banked) makes the top-k set unique, independent of the partial
    // sort's implementation and of the thread count.
    const std::size_t k = keptCount(n);
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    auto magnitude = [&acc](std::uint32_t i) {
        const double m = std::fabs(static_cast<double>(acc[i]));
        return std::isnan(m) ? std::numeric_limits<double>::infinity() : m;
    };
    auto better = [&](std::uint32_t a, std::uint32_t b) {
        const double ma = magnitude(a);
        const double mb = magnitude(b);
        if (ma != mb)
            return ma > mb;
        return a < b;
    };
    if (k < n)
        std::nth_element(order.begin(), order.begin() + k - 1, order.end(),
                         better);
    order.resize(k);
    std::sort(order.begin(), order.end()); // ascending wire format

    out = Encoded{};
    out.codec = Codec::TopK;
    out.param_count = n;
    out.payload_bytes = payloadBytes(n);
    out.indices = std::move(order);
    out.values.reserve(k);
    for (std::uint32_t i : out.indices)
        out.values.push_back(acc[i]);

    // Bank the untransmitted remainder; transmitted coordinates reset.
    residual = std::move(acc);
    for (std::uint32_t i : out.indices)
        residual[i] = 0.0f;
    // A diverged round's error is dropped, not banked — otherwise one
    // bad (B, E) draw would poison the client's every future update.
    for (float &r : residual)
        if (!std::isfinite(r))
            r = 0.0f;
}

void
TopKCodec::decode(const Encoded &encoded,
                  std::vector<float> &delta_out) const
{
    assert(encoded.codec == Codec::TopK);
    delta_out.assign(encoded.param_count, 0.0f);
    for (std::size_t j = 0; j < encoded.indices.size(); ++j)
        delta_out[encoded.indices[j]] = encoded.values[j];
}

// ---- Factory --------------------------------------------------------------

std::unique_ptr<UpdateCodec>
makeCodec(Codec codec, const CommConfig &config)
{
    switch (codec) {
      case Codec::Identity:
        return std::make_unique<IdentityCodec>();
      case Codec::Int8Quant:
        return std::make_unique<Int8QuantCodec>(config.quant_chunk);
      case Codec::TopK:
        return std::make_unique<TopKCodec>(config.topk_fraction);
    }
    return std::make_unique<IdentityCodec>();
}

} // namespace comm
} // namespace fedgpo
