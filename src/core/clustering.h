/**
 * @file
 * 1-d k-means clustering for state discretization.
 *
 * Table 1's bucket boundaries are fixed in the paper, but Section 3.2
 * notes they come from "applying a clustering algorithm" to observed
 * state values, and that FedGPO "can support larger search spaces by
 * further reducing the search space size with different clustering
 * algorithms". This module provides that mechanism: cluster a sample of
 * a continuous state signal (bandwidths, co-runner loads, ...) into k
 * levels and derive the cut points a discretizer can use in place of
 * the hard-coded Table 1 thresholds.
 */

#ifndef FEDGPO_CORE_CLUSTERING_H_
#define FEDGPO_CORE_CLUSTERING_H_

#include <cstddef>
#include <vector>

namespace fedgpo {
namespace core {

/** Result of a 1-d k-means run. */
struct Clustering1D
{
    std::vector<double> centroids;   //!< ascending cluster centers
    std::vector<double> boundaries;  //!< k-1 ascending cut points
                                     //!< (midpoints between centroids)
    int iterations = 0;              //!< Lloyd iterations until stable
};

/**
 * Lloyd's k-means on scalars.
 *
 * @param values   Sample of the continuous signal (unsorted OK).
 * @param k        Number of levels; must satisfy 1 <= k <= values.size().
 * @param max_iter Iteration cap.
 *
 * Initialization is deterministic (quantile seeding), so the same sample
 * always yields the same discretization.
 */
Clustering1D kmeans1d(std::vector<double> values, std::size_t k,
                      int max_iter = 100);

/**
 * Discretize a value against cut points: returns the number of
 * boundaries strictly below the value, i.e. a level in
 * [0, boundaries.size()].
 */
std::size_t bucketOf(double value, const std::vector<double> &boundaries);

} // namespace core
} // namespace fedgpo

#endif // FEDGPO_CORE_CLUSTERING_H_
