#include "core/reward.h"

#include <algorithm>
#include <cassert>

namespace fedgpo {
namespace core {

double
fedgpoReward(double energy_global_norm, double energy_local_norm,
             double accuracy, double accuracy_prev,
             double improvement_share, const RewardConfig &cfg)
{
    return fedgpoRewardDetailed(energy_global_norm, energy_local_norm,
                                accuracy, accuracy_prev, improvement_share,
                                cfg)
        .total;
}

RewardBreakdown
fedgpoRewardDetailed(double energy_global_norm, double energy_local_norm,
                     double accuracy, double accuracy_prev,
                     double improvement_share, const RewardConfig &cfg)
{
    assert(accuracy >= 0.0 && accuracy <= 1.0);
    assert(accuracy_prev >= 0.0 && accuracy_prev <= 1.0);
    assert(improvement_share >= 0.0);
    const double acc_pct = accuracy * 100.0;
    const double prev_pct = accuracy_prev * 100.0;
    RewardBreakdown out;
    if (acc_pct - prev_pct <= 0.0) {
        // `total` keeps the exact expression the pre-decomposition
        // implementation used so callers stay bit-identical; the term
        // fields re-derive the pieces for the decision log.
        out.total = acc_pct - 100.0 -
                    cfg.stall_energy_factor * cfg.energy_weight *
                        (energy_global_norm + energy_local_norm);
        out.stall = true;
        out.accuracy_term = acc_pct;
        out.stall_penalty = -100.0;
        const double w = cfg.stall_energy_factor * cfg.energy_weight;
        out.energy_global_term = -w * energy_global_norm;
        out.energy_local_term = -w * energy_local_norm;
        return out;
    }
    const double delta = std::min(acc_pct - prev_pct, cfg.delta_cap);
    out.total =
        -cfg.energy_weight * (energy_global_norm + energy_local_norm) +
        cfg.alpha * acc_pct + cfg.beta * delta * improvement_share;
    out.energy_global_term = -cfg.energy_weight * energy_global_norm;
    out.energy_local_term = -cfg.energy_weight * energy_local_norm;
    out.accuracy_term = cfg.alpha * acc_pct;
    out.improvement_term = cfg.beta * delta * improvement_share;
    return out;
}

void
EnergyNormalizer::observe(double energy)
{
    assert(energy >= 0.0);
    max_seen_ = std::max(max_seen_, energy);
}

double
EnergyNormalizer::normalize(double energy) const
{
    if (max_seen_ <= 0.0)
        return 1.0;
    return std::clamp(energy / max_seen_, 0.0, 2.0);
}

} // namespace core
} // namespace fedgpo
