#include "core/action_space.h"

#include <cassert>

#include "util/logging.h"

namespace fedgpo {
namespace core {

fl::PerDeviceParams
deviceActionParams(std::size_t action)
{
    assert(action < kNumDeviceActions);
    fl::PerDeviceParams params;
    params.batch = kBatchSet[action / kEpochSet.size()];
    params.epochs = kEpochSet[action % kEpochSet.size()];
    return params;
}

std::size_t
deviceActionIndex(const fl::PerDeviceParams &params)
{
    for (std::size_t bi = 0; bi < kBatchSet.size(); ++bi) {
        for (std::size_t ei = 0; ei < kEpochSet.size(); ++ei) {
            if (kBatchSet[bi] == params.batch &&
                kEpochSet[ei] == params.epochs) {
                return bi * kEpochSet.size() + ei;
            }
        }
    }
    util::fatal("deviceActionIndex: (B, E) not in the Table 2 grid");
}

int
clientActionValue(std::size_t action)
{
    assert(action < kNumClientActions);
    return kClientSet[action];
}

std::size_t
clientActionIndex(int k)
{
    for (std::size_t i = 0; i < kClientSet.size(); ++i)
        if (kClientSet[i] == k)
            return i;
    util::fatal("clientActionIndex: K not in the Table 2 grid");
}

comm::Codec
codecActionValue(std::size_t action)
{
    assert(action < kNumCodecActions);
    return kCodecSet[action];
}

std::size_t
codecActionIndex(comm::Codec codec)
{
    for (std::size_t i = 0; i < kCodecSet.size(); ++i)
        if (kCodecSet[i] == codec)
            return i;
    util::fatal("codecActionIndex: unknown codec level");
}

std::vector<fl::GlobalParams>
allGlobalParams()
{
    std::vector<fl::GlobalParams> out;
    out.reserve(kBatchSet.size() * kEpochSet.size() * kClientSet.size());
    for (int b : kBatchSet)
        for (int e : kEpochSet)
            for (int k : kClientSet)
                out.push_back(fl::GlobalParams{b, e, k});
    return out;
}

} // namespace core
} // namespace fedgpo
