/**
 * @file
 * FedGPO state featurization and discretization (paper Table 1).
 *
 * Continuous observations are bucketed into the discrete levels of
 * Table 1 so they can index a Q-table:
 *
 *   S_CONV    #conv layers:  small(<10) medium(<20) large(<30) larger(>=30)
 *   S_FC      #fc layers:    small(<10) large(>=10)
 *   S_RC      #rc layers:    small(<5)  medium(<10) large(>=10)
 *   S_Co_CPU  co-runner CPU: none(0) small(<25%) medium(<75%) large(<=100%)
 *   S_Co_MEM  co-runner mem: none(0) small(<25%) medium(<75%) large(<=100%)
 *   S_Network bandwidth:     regular(>40Mbps) bad(<=40Mbps)
 *   S_Data    classes held:  small(<25%) medium(<100%) large(=100%)
 */

#ifndef FEDGPO_CORE_STATE_H_
#define FEDGPO_CORE_STATE_H_

#include <cstddef>
#include <string>

#include "fl/types.h"
#include "nn/model.h"

namespace fedgpo {
namespace core {

/** Bucket counts per state feature. */
inline constexpr std::size_t kConvLevels = 4;
inline constexpr std::size_t kFcLevels = 2;
inline constexpr std::size_t kRcLevels = 3;
inline constexpr std::size_t kCoCpuLevels = 4;
inline constexpr std::size_t kCoMemLevels = 4;
inline constexpr std::size_t kNetworkLevels = 2;
inline constexpr std::size_t kDataLevels = 3;

/** Total number of discrete per-device states. */
inline constexpr std::size_t kNumStates =
    kConvLevels * kFcLevels * kRcLevels * kCoCpuLevels * kCoMemLevels *
    kNetworkLevels * kDataLevels;

/** Table 1 bucketing functions (exposed for tests). */
std::size_t bucketConv(std::size_t n_conv);
std::size_t bucketFc(std::size_t n_fc);
std::size_t bucketRc(std::size_t n_rc);
std::size_t bucketCoUsage(double usage);     //!< CPU and MEM share levels
std::size_t bucketNetwork(double bandwidth_mbps);
std::size_t bucketData(std::size_t classes_held, std::size_t total_classes);

/**
 * Discretized per-device FedGPO state.
 */
struct StateKey
{
    std::size_t conv = 0;
    std::size_t fc = 0;
    std::size_t rc = 0;
    std::size_t co_cpu = 0;
    std::size_t co_mem = 0;
    std::size_t network = 0;
    std::size_t data = 0;

    /** Mixed-radix flat index in [0, kNumStates). */
    std::size_t index() const;

    /** Human-readable rendering for logs/tests. */
    std::string toString() const;

    bool
    operator==(const StateKey &o) const
    {
        return index() == o.index();
    }
};

/**
 * Featurize one device observation plus the global model census into a
 * discrete state.
 */
StateKey encodeState(const nn::LayerCensus &census,
                     const fl::DeviceObservation &obs);

/**
 * The compact global state indexing the K-selection table: the NN census
 * buckets plus the average data-heterogeneity bucket across selected
 * devices.
 */
std::size_t encodeGlobalState(const nn::LayerCensus &census,
                              std::size_t data_bucket);

/** Number of global states (census buckets x data levels). */
inline constexpr std::size_t kNumGlobalStates =
    kConvLevels * kFcLevels * kRcLevels * kDataLevels;

} // namespace core
} // namespace fedgpo

#endif // FEDGPO_CORE_STATE_H_
