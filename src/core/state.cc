#include "core/state.h"

#include <cassert>
#include <sstream>

#include "device/network_model.h"

namespace fedgpo {
namespace core {

std::size_t
bucketConv(std::size_t n_conv)
{
    if (n_conv < 10)
        return 0;
    if (n_conv < 20)
        return 1;
    if (n_conv < 30)
        return 2;
    return 3;
}

std::size_t
bucketFc(std::size_t n_fc)
{
    return n_fc < 10 ? 0 : 1;
}

std::size_t
bucketRc(std::size_t n_rc)
{
    if (n_rc < 5)
        return 0;
    if (n_rc < 10)
        return 1;
    return 2;
}

std::size_t
bucketCoUsage(double usage)
{
    assert(usage >= 0.0 && usage <= 1.0);
    if (usage <= 0.0)
        return 0;
    if (usage < 0.25)
        return 1;
    if (usage < 0.75)
        return 2;
    return 3;
}

std::size_t
bucketNetwork(double bandwidth_mbps)
{
    return bandwidth_mbps > device::kBadNetworkMbps ? 0 : 1;
}

std::size_t
bucketData(std::size_t classes_held, std::size_t total_classes)
{
    assert(total_classes > 0);
    const double frac = static_cast<double>(classes_held) /
                        static_cast<double>(total_classes);
    if (frac < 0.25)
        return 0;
    if (frac < 1.0)
        return 1;
    return 2;
}

std::size_t
StateKey::index() const
{
    std::size_t idx = conv;
    idx = idx * kFcLevels + fc;
    idx = idx * kRcLevels + rc;
    idx = idx * kCoCpuLevels + co_cpu;
    idx = idx * kCoMemLevels + co_mem;
    idx = idx * kNetworkLevels + network;
    idx = idx * kDataLevels + data;
    assert(idx < kNumStates);
    return idx;
}

std::string
StateKey::toString() const
{
    std::ostringstream os;
    os << "{conv=" << conv << " fc=" << fc << " rc=" << rc
       << " cpu=" << co_cpu << " mem=" << co_mem << " net=" << network
       << " data=" << data << "}";
    return os.str();
}

StateKey
encodeState(const nn::LayerCensus &census, const fl::DeviceObservation &obs)
{
    StateKey key;
    key.conv = bucketConv(census.conv);
    key.fc = bucketFc(census.dense);
    key.rc = bucketRc(census.recurrent);
    key.co_cpu = bucketCoUsage(obs.interference.co_cpu);
    key.co_mem = bucketCoUsage(obs.interference.co_mem);
    key.network = bucketNetwork(obs.network.bandwidth_mbps);
    key.data = bucketData(obs.data_classes, obs.total_classes);
    return key;
}

std::size_t
encodeGlobalState(const nn::LayerCensus &census, std::size_t data_bucket)
{
    assert(data_bucket < kDataLevels);
    std::size_t idx = bucketConv(census.conv);
    idx = idx * kFcLevels + bucketFc(census.dense);
    idx = idx * kRcLevels + bucketRc(census.recurrent);
    idx = idx * kDataLevels + data_bucket;
    assert(idx < kNumGlobalStates);
    return idx;
}

} // namespace core
} // namespace fedgpo
