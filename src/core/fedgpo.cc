#include "core/fedgpo.h"

#include <algorithm>
#include <cmath>
#include <cassert>
#include <map>
#include <set>

namespace fedgpo {
namespace core {

FedGpo::FedGpo(const FedGpoConfig &config)
    : config_(config), rng_(config.seed),
      codec_rng_(config.seed ^ 0xC0DECULL)
{
    // One shared Q-table per performance category (Section 3.3). With
    // shared_tables disabled (footnote 2's per-device variant) these act
    // only as fallbacks; tableFor() lazily creates a private table per
    // device instead.
    for (std::size_t c = 0; c < device::kNumCategories; ++c) {
        category_tables_.push_back(std::make_unique<QTable>(
            kNumStates, kNumDeviceActions, rng_, 0.0, config_.optimism));
    }
    k_table_ = std::make_unique<QTable>(kNumGlobalStates,
                                        kNumClientActions, rng_, 0.0,
                                        config_.optimism);
    // The fourth knob's table initializes from its own stream so the
    // (B, E, K) tables — and every draw rng_ makes after construction —
    // are bit-identical whether or not codec adaptation is enabled.
    if (config_.adapt_codec)
        codec_table_ = std::make_unique<QTable>(kNumGlobalStates,
                                                kNumCodecActions,
                                                codec_rng_, 0.0,
                                                config_.optimism);
}

QTable &
FedGpo::tableFor(device::Category c, std::size_t client_id)
{
    if (config_.shared_tables)
        return *category_tables_[static_cast<std::size_t>(c)];
    auto it = device_tables_.find(client_id);
    if (it == device_tables_.end()) {
        it = device_tables_
                 .emplace(client_id,
                          std::make_unique<QTable>(kNumStates,
                                                   kNumDeviceActions, rng_,
                                                   0.0, config_.optimism))
                 .first;
    }
    return *it->second;
}

const QTable &
FedGpo::categoryTable(device::Category c) const
{
    return *category_tables_[static_cast<std::size_t>(c)];
}

int
FedGpo::chooseClients(int max_k)
{
    // The global state for K uses the census recorded at the last assign
    // (the model architecture is fixed over a run) plus the most recent
    // average data-heterogeneity bucket.
    if (!has_pending_k_ && pending_.empty() && rounds_seen_ == 0) {
        // First round: no state context yet; start from the FedAvg
        // default K = 20 clipped to the fleet (paper Algorithm 1 setup).
        pending_k_state_ = last_data_bucket_;  // census folded in later
    }
    const std::size_t state = pending_k_state_;
    std::size_t action;
    bool explored = false;
    if (k_table_->stateSwept(state)) {
        action = k_table_->bestAction(state);
    } else if (rng_.uniform() < config_.epsilon) {
        action = rng_.index(kNumClientActions);
        explored = true;
    } else {
        action = k_table_->bestAction(state);
    }
    pending_k_action_ = action;
    has_pending_k_ = true;
    const int k = std::min(clientActionValue(action), max_k);

    // Start this round's decision record. Everything recorded below is a
    // read of already-computed policy state — no RNG draws, no Q writes —
    // so the record is observationally inert.
    decision_ = obs::DecisionRecord{};
    decision_.round = static_cast<int>(rounds_seen_) + 1;
    decision_.epsilon = config_.epsilon;
    decision_.k_state = state;
    decision_.k_action = action;
    decision_.k_value = k;
    decision_.k_explored = explored;
    decision_.k_swept = k_table_->stateSwept(state);
    decision_.k_qrow.reserve(kNumClientActions);
    for (std::size_t a = 0; a < kNumClientActions; ++a)
        decision_.k_qrow.push_back(k_table_->q(state, a));
    return k;
}

std::vector<fl::PerDeviceParams>
FedGpo::assign(const std::vector<fl::DeviceObservation> &devices,
               const nn::LayerCensus &census)
{
    pending_.clear();
    decision_.devices.clear();
    decision_.devices.reserve(devices.size());
    std::vector<fl::PerDeviceParams> out;
    out.reserve(devices.size());
    std::size_t data_bucket_sum = 0;
    // Within-round spread: devices sharing a (table, state) take distinct
    // top-valued actions rather than all repeating the current greedy
    // one, so one aggregation round samples several actions per state —
    // the parallel design-space exploration that shared per-category
    // tables enable (Section 3.3).
    std::map<std::pair<std::size_t, std::size_t>, std::set<std::size_t>>
        taken;
    for (const auto &obs : devices) {
        const StateKey key = encodeState(census, obs);
        const std::size_t state = key.index();
        data_bucket_sum += key.data;
        const auto table_key = std::make_pair(
            static_cast<std::size_t>(obs.category), state);
        const QTable &table = tableFor(obs.category, obs.client_id);
        std::size_t action;
        bool explored = false;
        if (table.stateSwept(state)) {
            // Learning phase over for this state: exploit the greedy
            // action (paper Section 3.3), with occasional *neighborhood*
            // exploration — revisiting actions adjacent in (B, E) keeps
            // their sample means fresh so the greedy can drift to the
            // true local optimum, while bounding the straggler cost an
            // exploratory action can inflict on the round.
            action = table.bestAction(state);
            if (rng_.uniform() < config_.epsilon) {
                explored = true;
                const auto greedy = deviceActionParams(action);
                std::vector<std::size_t> neighbors;
                for (std::size_t a = 0; a < kNumDeviceActions; ++a) {
                    const auto p = deviceActionParams(a);
                    const bool b_adj = p.epochs == greedy.epochs &&
                                       (p.batch == greedy.batch * 2 ||
                                        greedy.batch == p.batch * 2);
                    const bool e_adj =
                        p.batch == greedy.batch &&
                        std::abs(p.epochs - greedy.epochs) <= 5 &&
                        p.epochs != greedy.epochs;
                    if (b_adj || e_adj)
                        neighbors.push_back(a);
                }
                if (!neighbors.empty())
                    action = neighbors[rng_.index(neighbors.size())];
            }
        } else if (rng_.uniform() < config_.epsilon) {
            action = rng_.index(kNumDeviceActions);
            explored = true;
        } else {
            action = table.bestAction(state);
            if (taken[table_key].count(action) != 0) {
                // Greedy already dispatched to a peer this round: spend
                // this device on the best never-tried action, if any
                // remain.
                for (std::size_t a : table.actionsByValue(state)) {
                    if (table.visits(state, a) == 0 &&
                        taken[table_key].count(a) == 0) {
                        action = a;
                        break;
                    }
                }
            }
        }
        taken[table_key].insert(action);
        pending_.push_back(
            Decision{obs.client_id, obs.category, state, action});
        const auto chosen = deviceActionParams(action);
        obs::DeviceDecision dd;
        dd.client_id = obs.client_id;
        dd.state = state;
        dd.action = action;
        dd.batch = chosen.batch;
        dd.epochs = chosen.epochs;
        dd.explored = explored;
        dd.q = table.q(state, action);
        dd.visits = table.visits(state, action);
        decision_.devices.push_back(dd);
        out.push_back(deviceActionParams(action));
    }
    // Refresh the global state used by the next chooseClients().
    if (!devices.empty()) {
        last_data_bucket_ =
            data_bucket_sum / devices.size();  // rounded-down mean bucket
    }
    pending_k_state_ = encodeGlobalState(census, last_data_bucket_);
    return out;
}

void
FedGpo::feedback(const fl::RoundResult &result)
{
    ++rounds_seen_;
    global_energy_norm_.observe(result.energy_total);
    const double e_global =
        global_energy_norm_.normalize(result.energy_total);

    // Smooth the accuracy signal before it enters Eq. 1: the raw
    // per-round test accuracy is jumpy on small evaluation sets, and an
    // unsmoothed signal flips the reward between Eq. 1's two branches at
    // random, burying the per-action energy differences in noise.
    const double prev_smooth = accuracy_smooth_;
    accuracy_smooth_ = rounds_seen_ == 1
                           ? result.test_accuracy
                           : 0.5 * accuracy_smooth_ +
                                 0.5 * result.test_accuracy;

    // Per-device updates: each participating device's decision earns the
    // Eq. 1 reward with its own local-energy term. Improvement credit is
    // split in proportion to each device's share of the round's training
    // work (epochs), mirroring FedAvg's own update weighting.
    double mean_epochs = 0.0;
    std::size_t kept = 0;
    for (const auto &p : result.participants) {
        if (!p.dropped) {
            mean_epochs += p.params.epochs;
            ++kept;
        }
    }
    mean_epochs = kept > 0 ? mean_epochs / static_cast<double>(kept) : 1.0;
    double device_reward_sum = 0.0;
    std::size_t devices_rewarded = 0;
    for (const auto &p : result.participants) {
        local_energy_norm_.observe(p.cost.e_total);
        const double e_local = local_energy_norm_.normalize(p.cost.e_total);
        // Concave (square-root) credit: marginal epochs have
        // diminishing returns on the aggregate, so credit must not grow
        // linearly or every tier is pushed to the maximum E.
        const double share = std::clamp(
            std::sqrt(static_cast<double>(p.params.epochs) /
                      std::max(mean_epochs, 1.0)),
            0.3, 2.5);
        double reward = fedgpoReward(e_global, e_local, accuracy_smooth_,
                                     prev_smooth, share, config_.reward);
        // A dropped straggler wasted its whole budget: its decision is
        // penalized below any stall-branch outcome.
        if (p.dropped) {
            reward = accuracy_smooth_ * 100.0 - 100.0 -
                     config_.reward.energy_weight * (e_global + e_local) -
                     30.0;
        }
        for (const auto &d : pending_) {
            if (d.client_id == p.client_id) {
                QTable &table = tableFor(d.category, d.client_id);
                // Sample-average schedule: the first visit overwrites the
                // random initialization entirely, later visits average —
                // then the rate floors at config gamma so the estimate
                // keeps tracking the (mildly nonstationary) environment.
                const double gamma = std::max(
                    config_.gamma,
                    1.0 / (1.0 + table.visits(d.state, d.action)));
                table.update(d.state, d.action, reward, d.state, gamma,
                             config_.mu);
                device_reward_sum += reward;
                ++devices_rewarded;
                break;
            }
        }
    }

    // Global K update with the device-agnostic reward. K directly scales
    // how much data each round aggregates, so its improvement term keeps
    // a much higher cap than the per-device one — masking the progress
    // difference between K=20 and K=5 would push the policy to tiny
    // cohorts long before the model has converged.
    double global_reward = 0.0;
    if (has_pending_k_ || has_pending_codec_) {
        RewardConfig k_reward = config_.reward;
        k_reward.delta_cap = 8.0;
        const RewardBreakdown breakdown = fedgpoRewardDetailed(
            e_global, 0.0, accuracy_smooth_, prev_smooth, 1.0, k_reward);
        global_reward = breakdown.total;
        decision_.reward.total = breakdown.total;
        decision_.reward.energy_global_term = breakdown.energy_global_term;
        decision_.reward.energy_local_term = breakdown.energy_local_term;
        decision_.reward.accuracy_term = breakdown.accuracy_term;
        decision_.reward.improvement_term = breakdown.improvement_term;
        decision_.reward.stall_penalty = breakdown.stall_penalty;
        decision_.reward.stall_branch = breakdown.stall;
        // An aborted round (quorum missed under fault injection) burned
        // energy and made zero progress: penalize the chosen K below any
        // stall-branch outcome so the learner raises the cohort size —
        // over-provisioning against dropout — rather than shrinking it.
        if (result.aborted) {
            global_reward = accuracy_smooth_ * 100.0 - 100.0 - 50.0;
            decision_.reward = obs::RewardTerms{};
            decision_.reward.total = global_reward;
            decision_.reward.accuracy_term = accuracy_smooth_ * 100.0;
            decision_.reward.stall_penalty = -100.0;
            decision_.reward.abort_penalty = -50.0;
            decision_.reward.stall_branch = true;
            decision_.reward.aborted = true;
        }
    }
    if (has_pending_k_) {
        const double k_gamma = std::max(
            config_.gamma,
            1.0 / (1.0 + k_table_->visits(pending_k_state_,
                                          pending_k_action_)));
        k_table_->update(pending_k_state_, pending_k_action_, global_reward,
                         pending_k_state_, k_gamma, config_.mu);
        has_pending_k_ = false;
    }

    // Codec axis: the codec level sees the same global reward as K. Comm
    // energy enters Eq. 1 through the round's total energy and accuracy
    // through the smoothed signal, so a lossy codec that cuts upload
    // energy without stalling convergence earns a higher Q than identity
    // — and one that stalls the model pays through the accuracy branch.
    if (has_pending_codec_) {
        const double c_gamma = std::max(
            config_.gamma,
            1.0 / (1.0 + codec_table_->visits(pending_codec_state_,
                                              pending_codec_action_)));
        codec_table_->update(pending_codec_state_, pending_codec_action_,
                             global_reward, pending_codec_state_, c_gamma,
                             config_.mu);
        has_pending_codec_ = false;
    }

    decision_.device_reward_mean =
        devices_rewarded > 0
            ? device_reward_sum / static_cast<double>(devices_rewarded)
            : 0.0;
    decision_.devices_rewarded = devices_rewarded;
    decision_.complete = true;

    accuracy_prev_ = result.test_accuracy;
    pending_.clear();
}

comm::Codec
FedGpo::chooseCodec(comm::Codec configured)
{
    if (!config_.adapt_codec)
        return configured;
    // Same global state as the K decision (chooseCodec runs after
    // assign(), so pending_k_state_ already reflects this round's census
    // and data bucket — the state feedback() will update against).
    const std::size_t state = pending_k_state_;
    const bool swept = codec_table_->stateSwept(state);
    std::size_t action;
    bool explored = false;
    if (swept) {
        action = codec_table_->bestAction(state);
    } else if (codec_rng_.uniform() < config_.epsilon) {
        action = codec_rng_.index(kNumCodecActions);
        explored = true;
    } else {
        action = codec_table_->bestAction(state);
    }
    pending_codec_state_ = state;
    pending_codec_action_ = action;
    has_pending_codec_ = true;
    const comm::Codec codec = codecActionValue(action);

    decision_.has_codec = true;
    decision_.codec_state = state;
    decision_.codec_action = action;
    decision_.codec_name = comm::codecName(codec);
    decision_.codec_explored = explored;
    decision_.codec_swept = swept;
    decision_.codec_qrow.clear();
    decision_.codec_qrow.reserve(kNumCodecActions);
    for (std::size_t a = 0; a < kNumCodecActions; ++a)
        decision_.codec_qrow.push_back(codec_table_->q(state, a));
    return codec;
}

const obs::DecisionRecord *
FedGpo::lastDecision() const
{
    return decision_.complete ? &decision_ : nullptr;
}

std::size_t
FedGpo::qTableBytes() const
{
    std::size_t total = k_table_->bytes();
    if (codec_table_)
        total += codec_table_->bytes();
    for (const auto &t : category_tables_)
        total += t->bytes();
    for (const auto &[id, t] : device_tables_)
        total += t->bytes();
    return total;
}

void
FedGpo::saveState(std::ostream &os) const
{
    // Only the shared tables persist; per-device tables are tied to a
    // concrete fleet and are regenerated on load.
    for (const auto &t : category_tables_)
        t->serialize(os);
    k_table_->serialize(os);
    if (codec_table_)
        codec_table_->serialize(os);
}

void
FedGpo::loadState(std::istream &is)
{
    for (auto &t : category_tables_)
        t->deserialize(is);
    k_table_->deserialize(is);
    if (codec_table_)
        codec_table_->deserialize(is);
    device_tables_.clear();
}

double
FedGpo::learningDelta() const
{
    double max_delta = k_table_->recentMaxDelta();
    if (codec_table_)
        max_delta = std::max(max_delta, codec_table_->recentMaxDelta());
    for (const auto &t : category_tables_)
        max_delta = std::max(max_delta, t->recentMaxDelta());
    return max_delta;
}

} // namespace core
} // namespace fedgpo
