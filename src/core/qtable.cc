#include "core/qtable.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/logging.h"

namespace fedgpo {
namespace core {

namespace {

constexpr std::uint32_t kMagic = 0x51544231;  // "QTB1"

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
readPod(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
}

} // namespace

QTable::QTable(std::size_t n_states, std::size_t n_actions, util::Rng &rng,
               double init_lo, double init_hi)
    : n_states_(n_states), n_actions_(n_actions),
      values_(n_states * n_actions),
      visit_counts_(n_states * n_actions, 0), recent_deltas_(64, 0.0)
{
    assert(n_states > 0 && n_actions > 0);
    for (auto &v : values_)
        v = rng.uniform(init_lo, init_hi);
}

double
QTable::q(std::size_t state, std::size_t action) const
{
    assert(state < n_states_ && action < n_actions_);
    return values_[state * n_actions_ + action];
}

std::size_t
QTable::bestAction(std::size_t state) const
{
    assert(state < n_states_);
    const double *row = values_.data() + state * n_actions_;
    std::size_t best = 0;
    for (std::size_t a = 1; a < n_actions_; ++a)
        if (row[a] > row[best])
            best = a;
    return best;
}

double
QTable::maxQ(std::size_t state) const
{
    return q(state, bestAction(state));
}

void
QTable::update(std::size_t state, std::size_t action, double reward,
               std::size_t next_state, double gamma, double mu)
{
    assert(state < n_states_ && action < n_actions_);
    assert(next_state < n_states_);
    double &cell = values_[state * n_actions_ + action];
    const double target = reward + mu * maxQ(next_state);
    const double delta = gamma * (target - cell);
    cell += delta;
    ++visit_counts_[state * n_actions_ + action];
    recent_deltas_[delta_pos_] = std::fabs(delta);
    delta_pos_ = (delta_pos_ + 1) % recent_deltas_.size();
    ++updates_;
}

std::size_t
QTable::bytes() const
{
    return values_.size() * sizeof(double) +
           visit_counts_.size() * sizeof(std::uint32_t);
}

std::uint32_t
QTable::visits(std::size_t state, std::size_t action) const
{
    assert(state < n_states_ && action < n_actions_);
    return visit_counts_[state * n_actions_ + action];
}

bool
QTable::stateSwept(std::size_t state) const
{
    assert(state < n_states_);
    const std::uint32_t *row = visit_counts_.data() + state * n_actions_;
    for (std::size_t a = 0; a < n_actions_; ++a)
        if (row[a] == 0)
            return false;
    return true;
}

std::vector<std::size_t>
QTable::actionsByValue(std::size_t state) const
{
    assert(state < n_states_);
    const double *row = values_.data() + state * n_actions_;
    std::vector<std::size_t> order(n_actions_);
    for (std::size_t a = 0; a < n_actions_; ++a)
        order[a] = a;
    std::sort(order.begin(), order.end(),
              [row](std::size_t a, std::size_t b) {
                  return row[a] > row[b];
              });
    return order;
}

void
QTable::serialize(std::ostream &os) const
{
    writePod(os, kMagic);
    writePod(os, static_cast<std::uint64_t>(n_states_));
    writePod(os, static_cast<std::uint64_t>(n_actions_));
    os.write(reinterpret_cast<const char *>(values_.data()),
             static_cast<std::streamsize>(values_.size() *
                                          sizeof(double)));
    os.write(reinterpret_cast<const char *>(visit_counts_.data()),
             static_cast<std::streamsize>(visit_counts_.size() *
                                          sizeof(std::uint32_t)));
}

void
QTable::deserialize(std::istream &is)
{
    std::uint32_t magic = 0;
    std::uint64_t states = 0, actions = 0;
    readPod(is, magic);
    readPod(is, states);
    readPod(is, actions);
    if (!is || magic != kMagic)
        util::fatal("QTable::deserialize: bad header");
    if (states != n_states_ || actions != n_actions_) {
        util::fatal("QTable::deserialize: dimension mismatch (" +
                    std::to_string(states) + "x" +
                    std::to_string(actions) + " vs " +
                    std::to_string(n_states_) + "x" +
                    std::to_string(n_actions_) + ")");
    }
    is.read(reinterpret_cast<char *>(values_.data()),
            static_cast<std::streamsize>(values_.size() * sizeof(double)));
    is.read(reinterpret_cast<char *>(visit_counts_.data()),
            static_cast<std::streamsize>(visit_counts_.size() *
                                         sizeof(std::uint32_t)));
    if (!is)
        util::fatal("QTable::deserialize: truncated payload");
}

double
QTable::recentMaxDelta(std::size_t window) const
{
    const std::size_t n = std::min(window, recent_deltas_.size());
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        max_delta = std::max(max_delta, recent_deltas_[i]);
    return max_delta;
}

} // namespace core
} // namespace fedgpo
