/**
 * @file
 * FedGPO: the paper's heterogeneity-aware global-parameter optimizer
 * (Section 3).
 *
 * A tabular Q-learning agent with epsilon-greedy exploration picks each
 * selected device's (B, E) from a Q-table *shared across the devices of
 * the same performance category* (Section 3.3), and a compact global
 * Q-table picks K for the next round. After every aggregation round the
 * Eq. 1 reward updates all tables with Algorithm 2's rule.
 *
 * One interpretation note (also in DESIGN.md): Algorithm 2 bootstraps on
 * the post-round state S'. Device states persist across rounds (the
 * co-runner/network processes are sticky) and the paper selects mu = 0.1
 * precisely because "sequential states have a weak mutual relationship",
 * so this implementation bootstraps on the recorded round state — with
 * mu = 0.1 the bootstrap term is an order of magnitude below the reward
 * term either way.
 */

#ifndef FEDGPO_CORE_FEDGPO_H_
#define FEDGPO_CORE_FEDGPO_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <vector>

#include "core/action_space.h"
#include "core/qtable.h"
#include "core/reward.h"
#include "core/state.h"
#include "device/device_profile.h"
#include "obs/decision.h"
#include "optim/optimizer.h"

namespace fedgpo {
namespace core {

/**
 * FedGPO hyperparameters (paper values from the Section 4.1 sensitivity
 * study: gamma = 0.9, mu = 0.1, epsilon = 0.1).
 */
struct FedGpoConfig
{
    /**
     * Q-learning learning-rate floor. The paper's sensitivity study
     * selects a fixed 0.9 for its emulation testbed; this reproduction
     * uses a sample-average schedule — the first visit to a (state,
     * action) cell overwrites its random initialization, later visits
     * average with rate max(gamma, 1/(1+visits)) — because the round
     * reward here is noisier and a fixed high rate makes Q track only
     * the most recent sample (see bench/ablation_hyperparams).
     */
    double gamma = 0.3;
    double mu = 0.1;        //!< discount factor
    double epsilon = 0.1;   //!< exploration probability
    RewardConfig reward;    //!< Eq. 1 coefficients
    bool shared_tables = true; //!< share Q-tables within a category
                               //!< (footnote 2: per-device also possible)
    /**
     * Upper bound of the random Q initialization (values are U(0,
     * optimism)). A band above typical rewards makes untried actions
     * attractive, and combined with the within-round spread (devices in
     * the same state take different top actions) the shared tables sweep
     * the action space in a handful of rounds — the expedited exploration
     * Section 3.3 attributes to table sharing.
     */
    double optimism = 40.0;
    std::uint64_t seed = 1;

    /**
     * Learn the update-codec level as a fourth (global) action axis over
     * the same global state as K. Off by default: the codec Q-table and
     * its exploration stream exist only when enabled, so the default
     * learning trajectory is bit-identical to the three-knob policy.
     */
    bool adapt_codec = false;
};

/**
 * The FedGPO policy.
 */
class FedGpo : public optim::ParamOptimizer
{
  public:
    explicit FedGpo(const FedGpoConfig &config = FedGpoConfig{});

    std::string name() const override { return "FedGPO"; }
    int chooseClients(int max_k) override;
    std::vector<fl::PerDeviceParams>
    assign(const std::vector<fl::DeviceObservation> &devices,
           const nn::LayerCensus &census) override;
    comm::Codec chooseCodec(comm::Codec configured) override;
    void feedback(const fl::RoundResult &result) override;

    /**
     * The decision record of the last completed round (null before the
     * first feedback). Recording only *reads* policy state — Q-values,
     * visit counts, the branch taken — never the RNG, so the record's
     * existence cannot perturb the learning trajectory.
     */
    const obs::DecisionRecord *lastDecision() const override;

    /** Total Q-table memory (Section 5.4 reports 0.4 MB). */
    std::size_t qTableBytes() const;

    /**
     * Persist all Q-tables (binary) — ship a trained policy to a fresh
     * server, the post-learning-phase deployment of Section 3.3.
     */
    void saveState(std::ostream &os) const;

    /** Restore tables written by saveState(). */
    void loadState(std::istream &is);

    /** Category Q-table, for tests and the overhead bench. */
    const QTable &categoryTable(device::Category c) const;

    /** Global K Q-table. */
    const QTable &clientTable() const { return *k_table_; }

    /**
     * Global codec Q-table (the fourth action axis). Only exists with
     * config.adapt_codec; null otherwise.
     */
    const QTable *codecTable() const { return codec_table_.get(); }

    /**
     * Largest recent Q-update magnitude across all tables — the paper's
     * learning-phase convergence signal (settles after 30-40 rounds).
     */
    double learningDelta() const;

    /** Rounds of feedback received. */
    std::size_t roundsSeen() const { return rounds_seen_; }

  private:
    /** Pending decision awaiting its reward. */
    struct Decision
    {
        std::size_t client_id;
        device::Category category;
        std::size_t state;
        std::size_t action;
    };

    /**
     * The Q-table a device's decisions read and write: the category's
     * shared table by default, or the device's own table in the
     * per-device variant (paper footnote 2 — avoids cross-device usage
     * leakage at the cost of slower exploration).
     */
    QTable &tableFor(device::Category c, std::size_t client_id);

    FedGpoConfig config_;
    util::Rng rng_;
    std::vector<std::unique_ptr<QTable>> category_tables_;
    std::map<std::size_t, std::unique_ptr<QTable>> device_tables_;
    std::unique_ptr<QTable> k_table_;
    /**
     * Codec axis state. The codec table draws its initialization and
     * exploration from codec_rng_, a stream independent of rng_, so
     * enabling the fourth knob cannot perturb the (B, E, K) trajectory.
     */
    std::unique_ptr<QTable> codec_table_;
    util::Rng codec_rng_;
    std::size_t pending_codec_state_ = 0;
    std::size_t pending_codec_action_ = 0;
    bool has_pending_codec_ = false;
    std::vector<Decision> pending_;
    std::size_t pending_k_state_ = 0;
    std::size_t pending_k_action_ = 0;
    bool has_pending_k_ = false;
    double accuracy_prev_ = 0.0;
    double accuracy_smooth_ = 0.0;  //!< EMA of test accuracy (reward input)
    EnergyNormalizer global_energy_norm_;
    EnergyNormalizer local_energy_norm_;
    std::size_t last_data_bucket_ = 1;
    std::size_t rounds_seen_ = 0;
    obs::DecisionRecord decision_; //!< filled across one round's calls
};

} // namespace core
} // namespace fedgpo

#endif // FEDGPO_CORE_FEDGPO_H_
