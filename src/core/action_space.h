/**
 * @file
 * The discrete global-parameter action space (paper Table 2):
 * B in {1,2,4,8,16,32}, E in {1,5,10,15,20}, K in {1,5,10,15,20}.
 *
 * FedGPO's per-device action is a (B, E) pair (30 actions per Q-table);
 * K is a separate global action (5 choices). The baselines search the
 * full 150-point (B, E, K) grid.
 */

#ifndef FEDGPO_CORE_ACTION_SPACE_H_
#define FEDGPO_CORE_ACTION_SPACE_H_

#include <array>
#include <cstddef>
#include <vector>

#include "comm/codec.h"
#include "fl/types.h"

namespace fedgpo {
namespace core {

/** Table 2 value sets. */
inline constexpr std::array<int, 6> kBatchSet = {1, 2, 4, 8, 16, 32};
inline constexpr std::array<int, 5> kEpochSet = {1, 5, 10, 15, 20};
inline constexpr std::array<int, 5> kClientSet = {1, 5, 10, 15, 20};

/** Number of per-device (B, E) actions. */
inline constexpr std::size_t kNumDeviceActions =
    kBatchSet.size() * kEpochSet.size();

/** Number of global K actions. */
inline constexpr std::size_t kNumClientActions = kClientSet.size();

/**
 * Update-codec levels — the fourth (global) action axis this
 * reproduction adds on top of the paper's (B, E, K): how aggressively
 * each round's uplink is compressed (see src/comm/codec.h).
 */
inline constexpr std::array<comm::Codec, comm::kNumCodecs> kCodecSet = {
    comm::Codec::Identity, comm::Codec::Int8Quant, comm::Codec::TopK};

/** Number of global codec actions. */
inline constexpr std::size_t kNumCodecActions = kCodecSet.size();

/** Decode a per-device action index into (B, E). */
fl::PerDeviceParams deviceActionParams(std::size_t action);

/** Encode (B, E) into the action index; values must be in Table 2. */
std::size_t deviceActionIndex(const fl::PerDeviceParams &params);

/** Decode a K action index into the participant count. */
int clientActionValue(std::size_t action);

/** Encode a K value into its action index; must be in Table 2. */
std::size_t clientActionIndex(int k);

/** Decode a codec action index into the codec level. */
comm::Codec codecActionValue(std::size_t action);

/** Encode a codec level into its action index. */
std::size_t codecActionIndex(comm::Codec codec);

/** Every (B, E, K) combination, in a fixed enumeration order. */
std::vector<fl::GlobalParams> allGlobalParams();

} // namespace core
} // namespace fedgpo

#endif // FEDGPO_CORE_ACTION_SPACE_H_
