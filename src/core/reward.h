/**
 * @file
 * FedGPO's reward function (paper Eq. 1):
 *
 *   if R_accuracy - R_accuracy_prev <= 0:
 *       R = R_accuracy - 100
 *   else:
 *       R = -R_energy_global - R_energy_local
 *           + alpha * R_accuracy + beta * (R_accuracy - R_accuracy_prev)
 *
 * Accuracies enter as percentages (so the penalty branch is strongly
 * negative); energies enter normalized to a running fleet-energy scale so
 * the terms share magnitude. The same reward drives the adaptive
 * baselines, making the comparison a pure search-mechanism comparison —
 * which is the paper's framing (sample efficiency of RL vs BO/GA).
 */

#ifndef FEDGPO_CORE_REWARD_H_
#define FEDGPO_CORE_REWARD_H_

#include "fl/types.h"

namespace fedgpo {
namespace core {

/**
 * Eq. 1 coefficients; the paper leaves alpha/beta unspecified.
 * energy_weight maps the normalized [0,1] energy terms onto the same
 * 0-100 scale the accuracy terms live on, so "maximize efficiency without
 * degrading accuracy" is a real trade-off rather than a no-op.
 */
struct RewardConfig
{
    /**
     * Weight of the absolute-accuracy term. Kept small: within one
     * learning phase the absolute accuracy is nearly constant across
     * actions, so a large alpha only inflates the reward gap between the
     * improving and stalled phases (drowning the per-action energy
     * signal) without helping the action ranking.
     */
    double alpha = 0.1;
    double beta = 30.0;
    double energy_weight = 80.0;
    /**
     * Cap (in accuracy percentage points) on the per-round improvement
     * term. Early training improves by tens of points per round; without
     * a cap those rounds imprint jackpot Q-values on whatever actions
     * happened to be tried, and the policy chases those ghosts long after
     * the environment has moved on.
     */
    double delta_cap = 2.0;
    /**
     * Energy tie-break inside the no-improvement branch, as a fraction of
     * energy_weight. Eq. 1 as printed makes the stall branch
     * action-independent; on synthetic data accuracy can plateau exactly,
     * and an action-independent reward lets the greedy policy drift
     * through arbitrarily expensive actions. The tie-break preserves
     * Eq. 1's ordering (any improvement beats any stall) while keeping
     * "cheaper is better" visible at the plateau. Set to 0 for the
     * literal Eq. 1.
     */
    double stall_energy_factor = 0.5;
};

/**
 * Eq. 1.
 *
 * @param energy_global_norm R_energy_global, normalized to [0, ~1].
 * @param energy_local_norm  R_energy_local of the device, normalized.
 * @param accuracy           R_accuracy in [0, 1].
 * @param accuracy_prev      R_accuracy_prev in [0, 1].
 * @param improvement_share  Fraction of the round's improvement credited
 *                           to this decision. FedAvg attributes the
 *                           aggregate update to clients in proportion to
 *                           their training work; crediting the accuracy
 *                           improvement the same way lets devices whose
 *                           extra epochs actually drive progress see that
 *                           in their reward (1.0 = fully shared credit).
 */
double fedgpoReward(double energy_global_norm, double energy_local_norm,
                    double accuracy, double accuracy_prev,
                    double improvement_share = 1.0,
                    const RewardConfig &cfg = RewardConfig{});

/**
 * Eq. 1, decomposed term by term — the reward the decision log records.
 * `total` is computed with the exact expression fedgpoReward() uses, so
 * it matches bit-for-bit (fedgpoReward delegates here); the term fields
 * are the decomposition and sum to `total` up to rounding.
 */
struct RewardBreakdown
{
    double total = 0.0;
    bool stall = false;              //!< no-improvement branch taken
    double energy_global_term = 0.0; //!< signed (<= 0)
    double energy_local_term = 0.0;  //!< signed (<= 0)
    double accuracy_term = 0.0;      //!< stall: acc_pct; else alpha*acc_pct
    double improvement_term = 0.0;   //!< beta*min(delta,cap)*share, else 0
    double stall_penalty = 0.0;      //!< -100 in the stall branch, else 0
};

/** Decomposed Eq. 1; see fedgpoReward for the parameters. */
RewardBreakdown
fedgpoRewardDetailed(double energy_global_norm, double energy_local_norm,
                     double accuracy, double accuracy_prev,
                     double improvement_share = 1.0,
                     const RewardConfig &cfg = RewardConfig{});

/**
 * Running normalizer for the energy terms: tracks the largest round
 * energy seen so far and maps energies into [0, 1] against it.
 */
class EnergyNormalizer
{
  public:
    /** Fold a new observation into the scale. */
    void observe(double energy);

    /** Normalize a value against the current scale (1 before any data). */
    double normalize(double energy) const;

  private:
    double max_seen_ = 0.0;
};

} // namespace core
} // namespace fedgpo

#endif // FEDGPO_CORE_REWARD_H_
