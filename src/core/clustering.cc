#include "core/clustering.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace fedgpo {
namespace core {

Clustering1D
kmeans1d(std::vector<double> values, std::size_t k, int max_iter)
{
    if (values.empty() || k == 0 || k > values.size())
        util::fatal("kmeans1d: need 1 <= k <= sample size");
    std::sort(values.begin(), values.end());

    Clustering1D out;
    out.centroids.resize(k);
    // Quantile seeding: deterministic and well spread.
    for (std::size_t c = 0; c < k; ++c) {
        const std::size_t idx =
            (2 * c + 1) * (values.size() - 1) / (2 * k);
        out.centroids[c] = values[idx];
    }

    // Lloyd iterations. With sorted values and sorted centroids, the
    // assignment is a set of contiguous ranges found by boundary search.
    std::vector<std::size_t> assign(values.size());
    for (out.iterations = 0; out.iterations < max_iter;
         ++out.iterations) {
        bool changed = false;
        for (std::size_t i = 0; i < values.size(); ++i) {
            std::size_t best = 0;
            double best_d = std::abs(values[i] - out.centroids[0]);
            for (std::size_t c = 1; c < k; ++c) {
                const double d = std::abs(values[i] - out.centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assign[i] != best) {
                assign[i] = best;
                changed = true;
            }
        }
        if (!changed && out.iterations > 0)
            break;
        // Recompute centroids; empty clusters keep their position.
        std::vector<double> sum(k, 0.0);
        std::vector<std::size_t> count(k, 0);
        for (std::size_t i = 0; i < values.size(); ++i) {
            sum[assign[i]] += values[i];
            ++count[assign[i]];
        }
        for (std::size_t c = 0; c < k; ++c)
            if (count[c] > 0)
                out.centroids[c] = sum[c] / static_cast<double>(count[c]);
        std::sort(out.centroids.begin(), out.centroids.end());
    }

    out.boundaries.resize(k - 1);
    for (std::size_t c = 0; c + 1 < k; ++c)
        out.boundaries[c] =
            0.5 * (out.centroids[c] + out.centroids[c + 1]);
    return out;
}

std::size_t
bucketOf(double value, const std::vector<double> &boundaries)
{
    std::size_t level = 0;
    for (double b : boundaries)
        if (value > b)
            ++level;
    return level;
}

} // namespace core
} // namespace fedgpo
