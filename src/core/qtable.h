/**
 * @file
 * Tabular Q-value store with the update rule of the paper's Algorithm 2:
 *
 *   Q(S,A) <- Q(S,A) + gamma * [R + mu * Q(S',A') - Q(S,A)]
 *
 * where gamma is the learning rate and mu the discount factor, and A' is
 * the greedy action at S'. Tables are dense (state x action) so lookups
 * and updates are O(1)/O(actions) — the property that gives FedGPO its
 * microsecond decision latency (paper Section 5.4).
 */

#ifndef FEDGPO_CORE_QTABLE_H_
#define FEDGPO_CORE_QTABLE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/rng.h"

namespace fedgpo {
namespace core {

/**
 * Dense Q-table.
 */
class QTable
{
  public:
    /**
     * @param n_states  Number of discrete states.
     * @param n_actions Number of discrete actions.
     * @param rng     Random-initialization stream (Algorithm 2
     *                initializes Q(S,A) with random values).
     * @param init_lo Lower bound of the random initial values.
     * @param init_hi Upper bound. Initializing optimistically (a positive
     *                band above typical rewards) makes untried actions
     *                look attractive, so the epsilon-greedy sweep covers
     *                the action space quickly — classic optimistic
     *                initial values.
     */
    QTable(std::size_t n_states, std::size_t n_actions, util::Rng &rng,
           double init_lo = -0.01, double init_hi = 0.01);

    std::size_t numStates() const { return n_states_; }
    std::size_t numActions() const { return n_actions_; }

    /** Q(s, a). */
    double q(std::size_t state, std::size_t action) const;

    /** Greedy action argmax_a Q(s, a). */
    std::size_t bestAction(std::size_t state) const;

    /** max_a Q(s, a). */
    double maxQ(std::size_t state) const;

    /**
     * Algorithm 2 update.
     *
     * @param state      S
     * @param action     A
     * @param reward     R
     * @param next_state S'
     * @param gamma      Learning rate (paper value 0.9).
     * @param mu         Discount factor (paper value 0.1).
     */
    void update(std::size_t state, std::size_t action, double reward,
                std::size_t next_state, double gamma, double mu);

    /** Number of updates applied so far. */
    std::size_t updates() const { return updates_; }

    /** Memory footprint of the value store in bytes. */
    std::size_t bytes() const;

    /** Number of updates applied to one (state, action) cell. */
    std::uint32_t visits(std::size_t state, std::size_t action) const;

    /**
     * True when every action of the state has been tried at least once —
     * the per-state end of the learning phase. Algorithm 2 keeps
     * updating values afterwards, but action selection can switch to
     * pure exploitation (paper Section 3.3: once the tables converge,
     * FedGPO "uses the shared Q-tables to select A").
     */
    bool stateSwept(std::size_t state) const;

    /**
     * Actions of a state ordered by descending Q value — used by the
     * within-round exploration spread (devices sharing a state take
     * different high-value actions instead of piling onto one).
     */
    std::vector<std::size_t> actionsByValue(std::size_t state) const;

    /**
     * Largest |delta| applied to any entry over the last `window` updates;
     * the learning phase is complete once this settles near zero (paper:
     * "the largest Q(S,A) value is converged for each S").
     */
    double recentMaxDelta(std::size_t window = 64) const;

    /**
     * Serialize values + visit counts (binary). Lets a deployment ship
     * pre-trained tables to a fresh aggregation server — the post-
     * learning-phase operating mode of Section 3.3.
     */
    void serialize(std::ostream &os) const;

    /**
     * Restore from serialize()'s format. Dimensions must match this
     * table's; throws util::FatalError otherwise.
     */
    void deserialize(std::istream &is);

  private:
    std::size_t n_states_;
    std::size_t n_actions_;
    std::vector<double> values_;
    std::vector<std::uint32_t> visit_counts_;
    std::vector<double> recent_deltas_;  //!< ring buffer
    std::size_t delta_pos_ = 0;
    std::size_t updates_ = 0;
};

} // namespace core
} // namespace fedgpo

#endif // FEDGPO_CORE_QTABLE_H_
