/**
 * @file
 * Minimal dense float32 tensor used by the NN training library.
 *
 * Tensors are row-major, owning, and resizable. The API is deliberately
 * small: the NN layers only need construction, element access, fill,
 * elementwise arithmetic, and GEMM (provided in ops.h). No views or
 * broadcasting — shapes must match exactly, which keeps the gradient code
 * easy to audit.
 */

#ifndef FEDGPO_TENSOR_TENSOR_H_
#define FEDGPO_TENSOR_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace fedgpo {
namespace tensor {

/** Shape of a tensor: one extent per dimension. */
using Shape = std::vector<std::size_t>;

/** Total number of elements implied by a shape (1 for scalars). */
std::size_t shapeNumel(const Shape &shape);

/** Human-readable rendering, e.g. "[32, 1, 12, 12]". */
std::string shapeToString(const Shape &shape);

/**
 * Dense row-major float tensor.
 */
class Tensor
{
  public:
    /** Empty 0-d tensor. */
    Tensor() = default;

    /** Allocate a zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Allocate with an explicit fill value. */
    Tensor(Shape shape, float fill);

    /** Construct from shape + data; data.size() must equal numel. */
    Tensor(Shape shape, std::vector<float> data);

    /** The tensor's shape. */
    const Shape &shape() const { return shape_; }

    /** Number of dimensions. */
    std::size_t ndim() const { return shape_.size(); }

    /** Extent of dimension d. */
    std::size_t dim(std::size_t d) const { return shape_.at(d); }

    /** Total element count. */
    std::size_t numel() const { return data_.size(); }

    /** Raw storage access. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access. */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** 2-d indexed access (requires ndim() == 2). */
    float &at(std::size_t r, std::size_t c);
    float at(std::size_t r, std::size_t c) const;

    /** Set every element to the given value. */
    void fill(float value);

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /**
     * Reinterpret the underlying buffer with a new shape of equal numel.
     * The data is not moved.
     */
    void reshape(Shape shape);

    /** Elementwise in-place operations; shapes must match exactly. */
    Tensor &operator+=(const Tensor &other);
    Tensor &operator-=(const Tensor &other);
    Tensor &operator*=(float scalar);

    /** this += scalar * other (axpy); shapes must match exactly. */
    void addScaled(const Tensor &other, float scalar);

    /** Sum of all elements. */
    double sum() const;

    /** Squared L2 norm of all elements. */
    double squaredNorm() const;

  private:
    Shape shape_;
    std::vector<float> data_;
};

} // namespace tensor
} // namespace fedgpo

#endif // FEDGPO_TENSOR_TENSOR_H_
