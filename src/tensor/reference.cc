#include "tensor/reference.h"

#include <cassert>

namespace fedgpo {
namespace tensor {
namespace reference {

namespace {

void
prepareOut(Tensor &c, std::size_t m, std::size_t n)
{
    if (c.ndim() != 2 || c.dim(0) != m || c.dim(1) != n)
        c = Tensor({m, n});
    else
        c.zero();
}

} // namespace

void
matmulRef(const Tensor &a, const Tensor &b, Tensor &c)
{
    assert(a.ndim() == 2 && b.ndim() == 2);
    const std::size_t m = a.dim(0), n = b.dim(1);
    assert(b.dim(0) == a.dim(1));
    prepareOut(c, m, n);
    matmulAccumRef(a, b, c);
}

void
matmulAccumRef(const Tensor &a, const Tensor &b, Tensor &c)
{
    assert(a.ndim() == 2 && b.ndim() == 2 && c.ndim() == 2);
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = pa + i * k;
        float *crow = pc + i * n;
        for (std::size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            const float *brow = pb + p * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulTransARef(const Tensor &a, const Tensor &b, Tensor &c)
{
    assert(a.ndim() == 2 && b.ndim() == 2);
    const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
    assert(b.dim(0) == k);
    prepareOut(c, m, n);
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // C[i][j] = sum_p A[p][i] * B[p][j]; p outer keeps both reads
    // row-contiguous and gives each element an ascending-p chain.
    for (std::size_t p = 0; p < k; ++p) {
        const float *arow = pa + p * m;
        const float *brow = pb + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            float *crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulTransBRef(const Tensor &a, const Tensor &b, Tensor &c)
{
    assert(a.ndim() == 2 && b.ndim() == 2);
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    assert(b.dim(1) == k);
    prepareOut(c, m, n);
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = pa + i * k;
        float *crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] = acc;
        }
    }
}

void
matmulBiasRef(const Tensor &a, const Tensor &b, const Tensor &bias,
              Tensor &c)
{
    assert(bias.ndim() == 1 && bias.dim(0) == b.dim(1));
    matmulRef(a, b, c);
    const std::size_t m = c.dim(0), n = c.dim(1);
    float *pc = c.data();
    const float *pb = bias.data();
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            pc[i * n + j] += pb[j];
}

void
im2colRef(const Tensor &input, std::size_t kh, std::size_t kw,
          std::size_t stride, std::size_t pad, Tensor &columns)
{
    assert(input.ndim() == 4);
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t h = input.dim(2), w = input.dim(3);
    const std::size_t oh = (h + 2 * pad - kh) / stride + 1;
    const std::size_t ow = (w + 2 * pad - kw) / stride + 1;
    const std::size_t rows = n * oh * ow;
    const std::size_t cols = c * kh * kw;
    if (columns.ndim() != 2 || columns.dim(0) != rows ||
        columns.dim(1) != cols) {
        columns = Tensor({rows, cols});
    }
    float *out = columns.data();
    const float *in = input.data();
    for (std::size_t img = 0; img < n; ++img) {
        const float *img_base = in + img * c * h * w;
        for (std::size_t oy = 0; oy < oh; ++oy) {
            for (std::size_t ox = 0; ox < ow; ++ox) {
                float *row = out + ((img * oh + oy) * ow + ox) * cols;
                std::size_t idx = 0;
                for (std::size_t ch = 0; ch < c; ++ch) {
                    const float *ch_base = img_base + ch * h * w;
                    for (std::size_t ky = 0; ky < kh; ++ky) {
                        const long iy = static_cast<long>(oy * stride + ky) -
                                        static_cast<long>(pad);
                        for (std::size_t kx = 0; kx < kw; ++kx, ++idx) {
                            const long ix =
                                static_cast<long>(ox * stride + kx) -
                                static_cast<long>(pad);
                            if (iy < 0 || iy >= static_cast<long>(h) ||
                                ix < 0 || ix >= static_cast<long>(w)) {
                                row[idx] = 0.0f;
                            } else {
                                row[idx] = ch_base[iy * w + ix];
                            }
                        }
                    }
                }
            }
        }
    }
}

void
col2imRef(const Tensor &columns, std::size_t kh, std::size_t kw,
          std::size_t stride, std::size_t pad, Tensor &input_grad)
{
    assert(input_grad.ndim() == 4);
    const std::size_t n = input_grad.dim(0), c = input_grad.dim(1);
    const std::size_t h = input_grad.dim(2), w = input_grad.dim(3);
    const std::size_t oh = (h + 2 * pad - kh) / stride + 1;
    const std::size_t ow = (w + 2 * pad - kw) / stride + 1;
    const std::size_t cols = c * kh * kw;
    assert(columns.ndim() == 2);
    assert(columns.dim(0) == n * oh * ow && columns.dim(1) == cols);
    input_grad.zero();
    const float *in = columns.data();
    float *out = input_grad.data();
    for (std::size_t img = 0; img < n; ++img) {
        float *img_base = out + img * c * h * w;
        for (std::size_t oy = 0; oy < oh; ++oy) {
            for (std::size_t ox = 0; ox < ow; ++ox) {
                const float *row = in + ((img * oh + oy) * ow + ox) * cols;
                std::size_t idx = 0;
                for (std::size_t ch = 0; ch < c; ++ch) {
                    float *ch_base = img_base + ch * h * w;
                    for (std::size_t ky = 0; ky < kh; ++ky) {
                        const long iy = static_cast<long>(oy * stride + ky) -
                                        static_cast<long>(pad);
                        for (std::size_t kx = 0; kx < kw; ++kx, ++idx) {
                            const long ix =
                                static_cast<long>(ox * stride + kx) -
                                static_cast<long>(pad);
                            if (iy >= 0 && iy < static_cast<long>(h) &&
                                ix >= 0 && ix < static_cast<long>(w)) {
                                ch_base[iy * w + ix] += row[idx];
                            }
                        }
                    }
                }
            }
        }
    }
}

} // namespace reference
} // namespace tensor
} // namespace fedgpo
