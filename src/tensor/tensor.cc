#include "tensor/tensor.h"

#include <cassert>
#include <sstream>

#include "util/logging.h"

namespace fedgpo {
namespace tensor {

std::size_t
shapeNumel(const Shape &shape)
{
    std::size_t n = 1;
    for (auto d : shape)
        n *= d;
    return n;
}

std::string
shapeToString(const Shape &shape)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i)
            os << ", ";
        os << shape[i];
    }
    os << "]";
    return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shapeNumel(shape_), 0.0f)
{
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shapeNumel(shape_), fill)
{
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    if (data_.size() != shapeNumel(shape_)) {
        util::fatal("Tensor: data size " + std::to_string(data_.size()) +
                    " does not match shape " + shapeToString(shape_));
    }
}

float &
Tensor::at(std::size_t r, std::size_t c)
{
    assert(ndim() == 2);
    assert(r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
}

float
Tensor::at(std::size_t r, std::size_t c) const
{
    assert(ndim() == 2);
    assert(r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::reshape(Shape shape)
{
    if (shapeNumel(shape) != data_.size()) {
        util::fatal("Tensor::reshape: numel mismatch " +
                    shapeToString(shape_) + " -> " + shapeToString(shape));
    }
    shape_ = std::move(shape);
}

Tensor &
Tensor::operator+=(const Tensor &other)
{
    assert(shape_ == other.shape_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Tensor &
Tensor::operator-=(const Tensor &other)
{
    assert(shape_ == other.shape_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Tensor &
Tensor::operator*=(float scalar)
{
    for (auto &x : data_)
        x *= scalar;
    return *this;
}

void
Tensor::addScaled(const Tensor &other, float scalar)
{
    assert(shape_ == other.shape_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += scalar * other.data_[i];
}

double
Tensor::sum() const
{
    double total = 0.0;
    for (float x : data_)
        total += x;
    return total;
}

double
Tensor::squaredNorm() const
{
    double total = 0.0;
    for (float x : data_)
        total += static_cast<double>(x) * x;
    return total;
}

} // namespace tensor
} // namespace fedgpo
