/**
 * @file
 * Tensor kernels: GEMM variants and the im2col transforms used by the
 * convolution layers.
 *
 * All GEMMs take 2-d tensors and write into a caller-provided output so
 * the training loop can reuse buffers. The implementations are the
 * cache-blocked, register-tiled kernels from gemm.h; every output element
 * accumulates its k terms in ascending-p order (the same chain as the
 * naive triple loop retained in reference.h), so results are bit-exact
 * with the scalar kernels for all inputs — including non-finite ones:
 * `0 * Inf` is NaN, never a skipped term. Outputs must not alias inputs.
 *
 * With FEDGPO_METRICS=profile, each entry point folds its wall time into
 * a `kernel.*` span (kernel.matmul, kernel.matmul_bias, kernel.im2col,
 * ...); at lower levels the probe is a single cached level check.
 */

#ifndef FEDGPO_TENSOR_OPS_H_
#define FEDGPO_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace fedgpo {
namespace tensor {

/**
 * C = A * B, with A of shape [m, k] and B of shape [k, n].
 * C is resized to [m, n] and fully overwritten.
 */
void matmul(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * C = A * B + bias, with bias of shape [n] broadcast over rows — the
 * fused epilogue used by the Dense and Conv2D forward passes. The bias
 * is added after each element's k-chain completes, so the result is
 * bit-identical to matmul followed by a separate bias-add pass.
 */
void matmulBias(const Tensor &a, const Tensor &b, const Tensor &bias,
                Tensor &c);

/**
 * C = A^T * B, with A of shape [k, m] and B of shape [k, n].
 * C is resized/zeroed to [m, n].
 */
void matmulTransA(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * C = A * B^T, with A of shape [m, k] and B of shape [n, k].
 * C is resized to [m, n] and fully overwritten.
 */
void matmulTransB(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * Like matmul but accumulates into C (C += A * B); C must already be
 * [m, n].
 */
void matmulAccum(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * im2col for NCHW batches.
 *
 * Expands input of shape [n, c, h, w] into columns of shape
 * [n * out_h * out_w, c * kh * kw] so convolution becomes one GEMM per
 * batch. Zero padding `pad` on all sides; stride `stride`. Interior
 * output positions are written as contiguous kw-wide row strips per
 * (channel, tap-row); 1x1/stride-1/pad-0 kernels take a pure-transpose
 * fast path (the MobileNet pointwise convolutions).
 */
void im2col(const Tensor &input, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, Tensor &columns);

/**
 * Inverse of im2col: scatter-add columns back into an input-shaped
 * gradient tensor of shape [n, c, h, w] (must be pre-shaped; it is
 * zeroed first). Each input pixel accumulates its contributions in
 * ascending (oy, ox) order, matching the reference scatter bit-exactly.
 */
void col2im(const Tensor &columns, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, Tensor &input_grad);

/** Output spatial extent of a convolution: (in + 2*pad - k) / stride + 1. */
std::size_t convOutExtent(std::size_t in, std::size_t k, std::size_t stride,
                          std::size_t pad);

} // namespace tensor
} // namespace fedgpo

#endif // FEDGPO_TENSOR_OPS_H_
