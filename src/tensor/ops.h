/**
 * @file
 * Tensor kernels: GEMM variants and the im2col transforms used by the
 * convolution layers.
 *
 * All GEMMs take 2-d tensors and write into a caller-provided output so
 * the training loop can reuse buffers. The ikj loop order keeps the inner
 * loop contiguous in both B and C, which is the main thing that matters on
 * the single-core host this simulator targets.
 */

#ifndef FEDGPO_TENSOR_OPS_H_
#define FEDGPO_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace fedgpo {
namespace tensor {

/**
 * C = A * B, with A of shape [m, k] and B of shape [k, n].
 * C is resized/zeroed to [m, n].
 */
void matmul(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * C = A^T * B, with A of shape [k, m] and B of shape [k, n].
 * C is resized/zeroed to [m, n].
 */
void matmulTransA(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * C = A * B^T, with A of shape [m, k] and B of shape [n, k].
 * C is resized/zeroed to [m, n].
 */
void matmulTransB(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * Like matmul but accumulates into C (C += A * B); C must already be
 * [m, n].
 */
void matmulAccum(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * im2col for NCHW batches.
 *
 * Expands input of shape [n, c, h, w] into columns of shape
 * [n * out_h * out_w, c * kh * kw] so convolution becomes one GEMM per
 * batch. Zero padding `pad` on all sides; stride `stride`.
 */
void im2col(const Tensor &input, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, Tensor &columns);

/**
 * Inverse of im2col: scatter-add columns back into an input-shaped
 * gradient tensor of shape [n, c, h, w] (must be pre-shaped; it is
 * zeroed first).
 */
void col2im(const Tensor &columns, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, Tensor &input_grad);

/** Output spatial extent of a convolution: (in + 2*pad - k) / stride + 1. */
std::size_t convOutExtent(std::size_t in, std::size_t k, std::size_t stride,
                          std::size_t pad);

} // namespace tensor
} // namespace fedgpo

#endif // FEDGPO_TENSOR_OPS_H_
