/**
 * @file
 * Naive reference kernels, retained as the semantic ground truth for the
 * blocked kernel layer in gemm.h/ops.h.
 *
 * Each reference is the plain triple loop with every output element
 * accumulating its k terms in ascending-p order from a zero (or
 * caller-provided) start. The blocked kernels must match these BIT-EXACTLY
 * for all inputs — including non-finite ones: `0 * Inf` is NaN here, never
 * a skipped term (the pre-kernel-layer GEMMs skipped zero multiplicands,
 * which silently masked diverged client updates; see
 * tests/kernel_property_test.cc).
 *
 * These run at scalar speed and exist for the property-equivalence suite
 * and for kernel_bench's before/after speedup measurement. The training
 * loop never calls them.
 */

#ifndef FEDGPO_TENSOR_REFERENCE_H_
#define FEDGPO_TENSOR_REFERENCE_H_

#include "tensor/tensor.h"

namespace fedgpo {
namespace tensor {
namespace reference {

/** C = A * B with A [m, k], B [k, n]; C resized to [m, n]. */
void matmulRef(const Tensor &a, const Tensor &b, Tensor &c);

/** C += A * B; C must already be [m, n]. */
void matmulAccumRef(const Tensor &a, const Tensor &b, Tensor &c);

/** C = A^T * B with A [k, m], B [k, n]; C resized to [m, n]. */
void matmulTransARef(const Tensor &a, const Tensor &b, Tensor &c);

/** C = A * B^T with A [m, k], B [n, k]; C resized to [m, n]. */
void matmulTransBRef(const Tensor &a, const Tensor &b, Tensor &c);

/** C = A * B + row-broadcast bias [n]; C resized to [m, n]. */
void matmulBiasRef(const Tensor &a, const Tensor &b, const Tensor &bias,
                   Tensor &c);

/** Per-tap scalar-gather im2col (NCHW), identical contract to ops.h. */
void im2colRef(const Tensor &input, std::size_t kh, std::size_t kw,
               std::size_t stride, std::size_t pad, Tensor &columns);

/** Per-tap scalar-scatter col2im, identical contract to ops.h. */
void col2imRef(const Tensor &columns, std::size_t kh, std::size_t kw,
               std::size_t stride, std::size_t pad, Tensor &input_grad);

} // namespace reference
} // namespace tensor
} // namespace fedgpo

#endif // FEDGPO_TENSOR_REFERENCE_H_
