#include "tensor/gemm.h"

#include <cstring>
#include <vector>

// Vector microkernels: x86-64 builds get an AVX path selected at runtime
// via per-function target attributes, so the baseline build stays plain
// SSE2 and other architectures compile the portable scalar tiles. The AVX
// tiles use separate mul/add intrinsics (target("avx") does not enable
// FMA), so every lane is the same ascending-p add chain as the scalar
// code — bit-exact, just eight lanes at a time.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FEDGPO_GEMM_AVX_DISPATCH 1
#include <immintrin.h>
#endif

namespace fedgpo {
namespace tensor {
namespace blocked {

namespace {

/**
 * Thread-local B-panel scratch. Each runtime worker packs into its own
 * buffer, so the kernels stay lock-free and allocation-free once the
 * buffer has grown to the largest panel seen on that thread.
 */
thread_local std::vector<float> tl_bpack;

/**
 * Pack the column strip B[0:k, j0:j0+nr] (or the rows of B^T playing that
 * role) into a p-major [k x kNr] panel. Tail strips (nr < kNr) are
 * zero-padded; the padded lanes are computed but never stored.
 */
void
packB(const float *b, std::size_t ldb, bool trans_b, std::size_t k,
      std::size_t j0, std::size_t nr, float *bp)
{
    if (!trans_b) {
        for (std::size_t p = 0; p < k; ++p) {
            const float *src = b + p * ldb + j0;
            float *dst = bp + p * kNr;
            for (std::size_t jj = 0; jj < nr; ++jj)
                dst[jj] = src[jj];
            for (std::size_t jj = nr; jj < kNr; ++jj)
                dst[jj] = 0.0f;
        }
    } else {
        if (nr < kNr)
            std::memset(bp, 0, k * kNr * sizeof(float));
        for (std::size_t jj = 0; jj < nr; ++jj) {
            const float *src = b + (j0 + jj) * ldb;
            for (std::size_t p = 0; p < k; ++p)
                bp[p * kNr + jj] = src[p];
        }
    }
}

/**
 * Full kMr x kNr register tile: each acc[ii][jj] is one ascending-p
 * chain; the jj loop is lane-parallel and autovectorizes.
 */
template <bool Accum>
void
microFull(const float *__restrict a, std::size_t lda,
          const float *__restrict bp, float *__restrict c, std::size_t ldc,
          std::size_t k, const float *__restrict bias)
{
    float acc[kMr][kNr];
    for (std::size_t ii = 0; ii < kMr; ++ii)
        for (std::size_t jj = 0; jj < kNr; ++jj)
            acc[ii][jj] = Accum ? c[ii * ldc + jj] : 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
        const float *__restrict bv = bp + p * kNr;
        for (std::size_t ii = 0; ii < kMr; ++ii) {
            const float av = a[ii * lda + p];
            for (std::size_t jj = 0; jj < kNr; ++jj)
                acc[ii][jj] += av * bv[jj];
        }
    }
    if (bias != nullptr)
        for (std::size_t ii = 0; ii < kMr; ++ii)
            for (std::size_t jj = 0; jj < kNr; ++jj)
                acc[ii][jj] += bias[jj];
    for (std::size_t ii = 0; ii < kMr; ++ii)
        for (std::size_t jj = 0; jj < kNr; ++jj)
            c[ii * ldc + jj] = acc[ii][jj];
}

/** Edge tile: mr <= kMr rows and/or nr <= kNr columns. */
template <bool Accum>
void
microEdge(const float *__restrict a, std::size_t lda,
          const float *__restrict bp, float *__restrict c, std::size_t ldc,
          std::size_t k, std::size_t mr, std::size_t nr,
          const float *__restrict bias)
{
    float acc[kMr][kNr];
    for (std::size_t ii = 0; ii < mr; ++ii)
        for (std::size_t jj = 0; jj < nr; ++jj)
            acc[ii][jj] = Accum ? c[ii * ldc + jj] : 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
        const float *__restrict bv = bp + p * kNr;
        for (std::size_t ii = 0; ii < mr; ++ii) {
            const float av = a[ii * lda + p];
            for (std::size_t jj = 0; jj < nr; ++jj)
                acc[ii][jj] += av * bv[jj];
        }
    }
    for (std::size_t ii = 0; ii < mr; ++ii)
        for (std::size_t jj = 0; jj < nr; ++jj)
            c[ii * ldc + jj] =
                bias != nullptr ? acc[ii][jj] + bias[jj] : acc[ii][jj];
}

#if FEDGPO_GEMM_AVX_DISPATCH

/** True when the CPU can run the AVX tiles; probed once. */
bool
haveAvx()
{
    static const bool have = __builtin_cpu_supports("avx");
    return have;
}

/**
 * AVX full tile: one 8-lane accumulator per row, held in registers for
 * the whole k loop (the autovectorized scalar tile round-trips the
 * accumulators through the stack every p step, which caps it at memory
 * latency). Lane jj of acc{ii} is exactly the scalar chain for
 * C[i0+ii][j0+jj].
 */
__attribute__((target("avx"))) void
microFullAvx(const float *__restrict a, std::size_t lda,
             const float *__restrict bp, float *__restrict c,
             std::size_t ldc, std::size_t k, const float *__restrict bias,
             bool accumulate)
{
    static_assert(kMr == 4 && kNr == 8,
                  "AVX tile is written for 4x8 registers");
    __m256 acc0, acc1, acc2, acc3;
    if (accumulate) {
        acc0 = _mm256_loadu_ps(c);
        acc1 = _mm256_loadu_ps(c + ldc);
        acc2 = _mm256_loadu_ps(c + 2 * ldc);
        acc3 = _mm256_loadu_ps(c + 3 * ldc);
    } else {
        acc0 = acc1 = acc2 = acc3 = _mm256_setzero_ps();
    }
    for (std::size_t p = 0; p < k; ++p) {
        const __m256 bv = _mm256_loadu_ps(bp + p * kNr);
        acc0 = _mm256_add_ps(acc0,
                             _mm256_mul_ps(_mm256_broadcast_ss(a + p), bv));
        acc1 = _mm256_add_ps(
            acc1, _mm256_mul_ps(_mm256_broadcast_ss(a + lda + p), bv));
        acc2 = _mm256_add_ps(
            acc2, _mm256_mul_ps(_mm256_broadcast_ss(a + 2 * lda + p), bv));
        acc3 = _mm256_add_ps(
            acc3, _mm256_mul_ps(_mm256_broadcast_ss(a + 3 * lda + p), bv));
    }
    if (bias != nullptr) {
        const __m256 bb = _mm256_loadu_ps(bias);
        acc0 = _mm256_add_ps(acc0, bb);
        acc1 = _mm256_add_ps(acc1, bb);
        acc2 = _mm256_add_ps(acc2, bb);
        acc3 = _mm256_add_ps(acc3, bb);
    }
    _mm256_storeu_ps(c, acc0);
    _mm256_storeu_ps(c + ldc, acc1);
    _mm256_storeu_ps(c + 2 * ldc, acc2);
    _mm256_storeu_ps(c + 3 * ldc, acc3);
}

/** AVX interior tile for the A^T kernel; always extends the chains in C. */
__attribute__((target("avx"))) void
microTransAFullAvx(const float *__restrict a, std::size_t lda,
                   const float *__restrict b, std::size_t ldb,
                   float *__restrict c, std::size_t ldc, std::size_t kp)
{
    __m256 acc0 = _mm256_loadu_ps(c);
    __m256 acc1 = _mm256_loadu_ps(c + ldc);
    __m256 acc2 = _mm256_loadu_ps(c + 2 * ldc);
    __m256 acc3 = _mm256_loadu_ps(c + 3 * ldc);
    for (std::size_t p = 0; p < kp; ++p) {
        const float *ar = a + p * lda;
        const __m256 bv = _mm256_loadu_ps(b + p * ldb);
        acc0 = _mm256_add_ps(acc0,
                             _mm256_mul_ps(_mm256_broadcast_ss(ar), bv));
        acc1 = _mm256_add_ps(acc1,
                             _mm256_mul_ps(_mm256_broadcast_ss(ar + 1), bv));
        acc2 = _mm256_add_ps(acc2,
                             _mm256_mul_ps(_mm256_broadcast_ss(ar + 2), bv));
        acc3 = _mm256_add_ps(acc3,
                             _mm256_mul_ps(_mm256_broadcast_ss(ar + 3), bv));
    }
    _mm256_storeu_ps(c, acc0);
    _mm256_storeu_ps(c + ldc, acc1);
    _mm256_storeu_ps(c + 2 * ldc, acc2);
    _mm256_storeu_ps(c + 3 * ldc, acc3);
}

#else

constexpr bool
haveAvx()
{
    return false;
}

void
microFullAvx(const float *, std::size_t, const float *, float *,
             std::size_t, std::size_t, const float *, bool)
{
}

void
microTransAFullAvx(const float *, std::size_t, const float *, std::size_t,
                   float *, std::size_t, std::size_t)
{
}

#endif // FEDGPO_GEMM_AVX_DISPATCH

template <bool Accum>
void
gemmImpl(const float *a, std::size_t lda, const float *b, std::size_t ldb,
         bool trans_b, float *c, std::size_t ldc, std::size_t m,
         std::size_t n, std::size_t k, const float *bias)
{
    if (tl_bpack.size() < k * kNr)
        tl_bpack.resize(k * kNr);
    float *bp = tl_bpack.data();
    const bool avx = haveAvx();
    for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
        const std::size_t nr = n - j0 < kNr ? n - j0 : kNr;
        packB(b, ldb, trans_b, k, j0, nr, bp);
        const float *bias_j = bias != nullptr ? bias + j0 : nullptr;
        std::size_t i0 = 0;
        if (nr == kNr) {
            if (avx)
                for (; i0 + kMr <= m; i0 += kMr)
                    microFullAvx(a + i0 * lda, lda, bp,
                                 c + i0 * ldc + j0, ldc, k, bias_j, Accum);
            else
                for (; i0 + kMr <= m; i0 += kMr)
                    microFull<Accum>(a + i0 * lda, lda, bp,
                                     c + i0 * ldc + j0, ldc, k, bias_j);
        }
        for (; i0 < m; i0 += kMr) {
            const std::size_t mr = m - i0 < kMr ? m - i0 : kMr;
            microEdge<Accum>(a + i0 * lda, lda, bp, c + i0 * ldc + j0, ldc,
                             k, mr, nr, bias_j);
        }
    }
}

/**
 * Rank-1-structured tile for the A^T kernel: for each p, a[ii] lanes and
 * b[jj] lanes are both contiguous loads. Chains round-trip through C so
 * ascending p-blocks extend them in order.
 */
void
microTransA(const float *__restrict a, std::size_t lda,
            const float *__restrict b, std::size_t ldb,
            float *__restrict c, std::size_t ldc, std::size_t kp,
            std::size_t mr, std::size_t nr)
{
    float acc[kMr][kNr];
    for (std::size_t ii = 0; ii < mr; ++ii)
        for (std::size_t jj = 0; jj < nr; ++jj)
            acc[ii][jj] = c[ii * ldc + jj];
    for (std::size_t p = 0; p < kp; ++p) {
        const float *__restrict ar = a + p * lda;
        const float *__restrict br = b + p * ldb;
        for (std::size_t ii = 0; ii < mr; ++ii) {
            const float av = ar[ii];
            for (std::size_t jj = 0; jj < nr; ++jj)
                acc[ii][jj] += av * br[jj];
        }
    }
    for (std::size_t ii = 0; ii < mr; ++ii)
        for (std::size_t jj = 0; jj < nr; ++jj)
            c[ii * ldc + jj] = acc[ii][jj];
}

/** Fully-unrolled variant for interior tiles (compile-time extents). */
void
microTransAFull(const float *__restrict a, std::size_t lda,
                const float *__restrict b, std::size_t ldb,
                float *__restrict c, std::size_t ldc, std::size_t kp)
{
    float acc[kMr][kNr];
    for (std::size_t ii = 0; ii < kMr; ++ii)
        for (std::size_t jj = 0; jj < kNr; ++jj)
            acc[ii][jj] = c[ii * ldc + jj];
    for (std::size_t p = 0; p < kp; ++p) {
        const float *__restrict ar = a + p * lda;
        const float *__restrict br = b + p * ldb;
        for (std::size_t ii = 0; ii < kMr; ++ii) {
            const float av = ar[ii];
            for (std::size_t jj = 0; jj < kNr; ++jj)
                acc[ii][jj] += av * br[jj];
        }
    }
    for (std::size_t ii = 0; ii < kMr; ++ii)
        for (std::size_t jj = 0; jj < kNr; ++jj)
            c[ii * ldc + jj] = acc[ii][jj];
}

} // namespace

void
gemm(const float *a, std::size_t lda, const float *b, std::size_t ldb,
     bool trans_b, float *c, std::size_t ldc, std::size_t m, std::size_t n,
     std::size_t k, bool accumulate, const float *bias)
{
    if (m == 0 || n == 0)
        return;
    if (accumulate)
        gemmImpl<true>(a, lda, b, ldb, trans_b, c, ldc, m, n, k, bias);
    else
        gemmImpl<false>(a, lda, b, ldb, trans_b, c, ldc, m, n, k, bias);
}

void
gemmTransA(const float *a, std::size_t lda, const float *b, std::size_t ldb,
           float *c, std::size_t ldc, std::size_t m, std::size_t n,
           std::size_t k)
{
    const bool avx = haveAvx();
    for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
        const std::size_t kp = k - p0 < kKc ? k - p0 : kKc;
        const float *ap = a + p0 * lda;
        const float *bp = b + p0 * ldb;
        for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
            const std::size_t nr = n - j0 < kNr ? n - j0 : kNr;
            std::size_t i0 = 0;
            if (nr == kNr) {
                if (avx)
                    for (; i0 + kMr <= m; i0 += kMr)
                        microTransAFullAvx(ap + i0, lda, bp + j0, ldb,
                                           c + i0 * ldc + j0, ldc, kp);
                else
                    for (; i0 + kMr <= m; i0 += kMr)
                        microTransAFull(ap + i0, lda, bp + j0, ldb,
                                        c + i0 * ldc + j0, ldc, kp);
            }
            for (; i0 < m; i0 += kMr) {
                const std::size_t mr = m - i0 < kMr ? m - i0 : kMr;
                microTransA(ap + i0, lda, bp + j0, ldb, c + i0 * ldc + j0,
                            ldc, kp, mr, nr);
            }
        }
    }
}

} // namespace blocked
} // namespace tensor
} // namespace fedgpo
