#include "tensor/ops.h"

#include <cassert>
#include <cstring>

#include "obs/metrics.h"
#include "tensor/gemm.h"

namespace fedgpo {
namespace tensor {

namespace {

void
prepareOut(Tensor &c, std::size_t m, std::size_t n, bool zero)
{
    if (c.ndim() != 2 || c.dim(0) != m || c.dim(1) != n)
        c = Tensor({m, n});
    else if (zero)
        c.zero();
}

/**
 * Profile-level kernel span: below profile this is one cached level
 * check; at profile it is a registry lookup per kernel call (the names
 * fit SSO, and a GEMM call amortizes the lookup over thousands of
 * FLOPs).
 */
obs::SpanNode *
kernelSpan(const char *name)
{
    if (!obs::enabled(obs::Level::Profile))
        return nullptr;
    return obs::spanIf(obs::Level::Profile, name);
}

} // namespace

void
matmul(const Tensor &a, const Tensor &b, Tensor &c)
{
    assert(a.ndim() == 2 && b.ndim() == 2);
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    assert(b.dim(0) == k);
    prepareOut(c, m, n, /*zero=*/false);
    obs::ScopedTimer timer(kernelSpan("kernel.matmul"));
    blocked::gemm(a.data(), k, b.data(), n, /*trans_b=*/false, c.data(), n,
                  m, n, k, /*accumulate=*/false, nullptr);
}

void
matmulBias(const Tensor &a, const Tensor &b, const Tensor &bias, Tensor &c)
{
    assert(a.ndim() == 2 && b.ndim() == 2);
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    assert(b.dim(0) == k);
    assert(bias.ndim() == 1 && bias.dim(0) == n);
    prepareOut(c, m, n, /*zero=*/false);
    obs::ScopedTimer timer(kernelSpan("kernel.matmul_bias"));
    blocked::gemm(a.data(), k, b.data(), n, /*trans_b=*/false, c.data(), n,
                  m, n, k, /*accumulate=*/false, bias.data());
}

void
matmulAccum(const Tensor &a, const Tensor &b, Tensor &c)
{
    assert(a.ndim() == 2 && b.ndim() == 2 && c.ndim() == 2);
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
    obs::ScopedTimer timer(kernelSpan("kernel.matmul_accum"));
    blocked::gemm(a.data(), k, b.data(), n, /*trans_b=*/false, c.data(), n,
                  m, n, k, /*accumulate=*/true, nullptr);
}

void
matmulTransA(const Tensor &a, const Tensor &b, Tensor &c)
{
    assert(a.ndim() == 2 && b.ndim() == 2);
    const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
    assert(b.dim(0) == k);
    prepareOut(c, m, n, /*zero=*/true);
    obs::ScopedTimer timer(kernelSpan("kernel.matmul_trans_a"));
    blocked::gemmTransA(a.data(), m, b.data(), n, c.data(), n, m, n, k);
}

void
matmulTransB(const Tensor &a, const Tensor &b, Tensor &c)
{
    assert(a.ndim() == 2 && b.ndim() == 2);
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    assert(b.dim(1) == k);
    prepareOut(c, m, n, /*zero=*/false);
    obs::ScopedTimer timer(kernelSpan("kernel.matmul_trans_b"));
    blocked::gemm(a.data(), k, b.data(), k, /*trans_b=*/true, c.data(), n,
                  m, n, k, /*accumulate=*/false, nullptr);
}

std::size_t
convOutExtent(std::size_t in, std::size_t k, std::size_t stride,
              std::size_t pad)
{
    assert(in + 2 * pad >= k);
    return (in + 2 * pad - k) / stride + 1;
}

namespace {

/**
 * Interior ox range [lo, hi) where the whole kw-wide tap row lies inside
 * the image: ox*stride - pad >= 0 and ox*stride - pad + kw <= w.
 */
void
interiorRange(std::size_t w, std::size_t kw, std::size_t stride,
              std::size_t pad, std::size_t ow, std::size_t &lo,
              std::size_t &hi)
{
    lo = (pad + stride - 1) / stride;
    const long last = static_cast<long>(w) - static_cast<long>(kw) +
                      static_cast<long>(pad);
    hi = last < 0 ? 0
                  : static_cast<std::size_t>(last) /
                            stride + 1;
    if (lo > ow)
        lo = ow;
    if (hi > ow)
        hi = ow;
    if (hi < lo)
        hi = lo;
}

} // namespace

void
im2col(const Tensor &input, std::size_t kh, std::size_t kw,
       std::size_t stride, std::size_t pad, Tensor &columns)
{
    assert(input.ndim() == 4);
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t h = input.dim(2), w = input.dim(3);
    const std::size_t oh = convOutExtent(h, kh, stride, pad);
    const std::size_t ow = convOutExtent(w, kw, stride, pad);
    const std::size_t rows = n * oh * ow;
    const std::size_t cols = c * kh * kw;
    if (columns.ndim() != 2 || columns.dim(0) != rows ||
        columns.dim(1) != cols) {
        columns = Tensor({rows, cols});
    }
    obs::ScopedTimer timer(kernelSpan("kernel.im2col"));
    float *out = columns.data();
    const float *in = input.data();

    if (kh == 1 && kw == 1 && pad == 0 && stride == 1) {
        // Pointwise convolution: columns is just a per-image [c, h*w] ->
        // [h*w, c] transpose (the MobileNet 1x1 layers).
        const std::size_t hw = h * w;
        for (std::size_t img = 0; img < n; ++img) {
            const float *src = in + img * c * hw;
            float *dst = out + img * hw * c;
            for (std::size_t ch = 0; ch < c; ++ch) {
                const float *s = src + ch * hw;
                for (std::size_t i = 0; i < hw; ++i)
                    dst[i * c + ch] = s[i];
            }
        }
        return;
    }

    std::size_t ox_lo, ox_hi;
    interiorRange(w, kw, stride, pad, ow, ox_lo, ox_hi);
    for (std::size_t img = 0; img < n; ++img) {
        const float *img_base = in + img * c * h * w;
        for (std::size_t oy = 0; oy < oh; ++oy) {
            float *rowblock = out + (img * oh + oy) * ow * cols;
            for (std::size_t ch = 0; ch < c; ++ch) {
                const float *ch_base = img_base + ch * h * w;
                for (std::size_t ky = 0; ky < kh; ++ky) {
                    const long iy = static_cast<long>(oy * stride + ky) -
                                    static_cast<long>(pad);
                    float *dst0 = rowblock + (ch * kh + ky) * kw;
                    if (iy < 0 || iy >= static_cast<long>(h)) {
                        for (std::size_t ox = 0; ox < ow; ++ox) {
                            float *dst = dst0 + ox * cols;
                            for (std::size_t kx = 0; kx < kw; ++kx)
                                dst[kx] = 0.0f;
                        }
                        continue;
                    }
                    const float *src_row = ch_base + iy * w;
                    // Left border: clip each tap against the image edge.
                    for (std::size_t ox = 0; ox < ox_lo; ++ox) {
                        const long ix0 = static_cast<long>(ox * stride) -
                                         static_cast<long>(pad);
                        float *dst = dst0 + ox * cols;
                        for (std::size_t kx = 0; kx < kw; ++kx) {
                            const long ix = ix0 + static_cast<long>(kx);
                            dst[kx] = (ix < 0 || ix >= static_cast<long>(w))
                                          ? 0.0f
                                          : src_row[ix];
                        }
                    }
                    // Interior: one contiguous kw-wide strip per position.
                    // Plain copy loop, not memcpy: kw is tiny (3-4 floats
                    // for the zoo's kernels), so a libc call per strip
                    // costs more than the copy itself.
                    for (std::size_t ox = ox_lo; ox < ox_hi; ++ox) {
                        const float *src = src_row + ox * stride - pad;
                        float *dst = dst0 + ox * cols;
                        for (std::size_t kx = 0; kx < kw; ++kx)
                            dst[kx] = src[kx];
                    }
                    // Right border.
                    for (std::size_t ox = ox_hi; ox < ow; ++ox) {
                        const long ix0 = static_cast<long>(ox * stride) -
                                         static_cast<long>(pad);
                        float *dst = dst0 + ox * cols;
                        for (std::size_t kx = 0; kx < kw; ++kx) {
                            const long ix = ix0 + static_cast<long>(kx);
                            dst[kx] = (ix < 0 || ix >= static_cast<long>(w))
                                          ? 0.0f
                                          : src_row[ix];
                        }
                    }
                }
            }
        }
    }
}

void
col2im(const Tensor &columns, std::size_t kh, std::size_t kw,
       std::size_t stride, std::size_t pad, Tensor &input_grad)
{
    assert(input_grad.ndim() == 4);
    const std::size_t n = input_grad.dim(0), c = input_grad.dim(1);
    const std::size_t h = input_grad.dim(2), w = input_grad.dim(3);
    const std::size_t oh = convOutExtent(h, kh, stride, pad);
    const std::size_t ow = convOutExtent(w, kw, stride, pad);
    const std::size_t cols = c * kh * kw;
    assert(columns.ndim() == 2);
    assert(columns.dim(0) == n * oh * ow && columns.dim(1) == cols);
    input_grad.zero();
    obs::ScopedTimer timer(kernelSpan("kernel.col2im"));
    const float *in = columns.data();
    float *out = input_grad.data();

    if (kh == 1 && kw == 1 && pad == 0 && stride == 1) {
        const std::size_t hw = h * w;
        for (std::size_t img = 0; img < n; ++img) {
            const float *src = in + img * hw * c;
            float *dst = out + img * c * hw;
            for (std::size_t ch = 0; ch < c; ++ch) {
                float *d = dst + ch * hw;
                for (std::size_t i = 0; i < hw; ++i)
                    d[i] += src[i * c + ch];
            }
        }
        return;
    }

    // Per input pixel, contributions arrive in ascending (oy, ox) order —
    // within an oy only one ky can reach a given pixel row, and within an
    // ox only one kx can reach a given pixel column — so this loop nest
    // reproduces the reference scatter's accumulation order bit-exactly.
    std::size_t ox_lo, ox_hi;
    interiorRange(w, kw, stride, pad, ow, ox_lo, ox_hi);
    for (std::size_t img = 0; img < n; ++img) {
        float *img_base = out + img * c * h * w;
        for (std::size_t oy = 0; oy < oh; ++oy) {
            const float *rowblock = in + (img * oh + oy) * ow * cols;
            for (std::size_t ch = 0; ch < c; ++ch) {
                float *ch_base = img_base + ch * h * w;
                for (std::size_t ky = 0; ky < kh; ++ky) {
                    const long iy = static_cast<long>(oy * stride + ky) -
                                    static_cast<long>(pad);
                    if (iy < 0 || iy >= static_cast<long>(h))
                        continue;
                    const float *src0 = rowblock + (ch * kh + ky) * kw;
                    float *dst_row = ch_base + iy * w;
                    for (std::size_t ox = 0; ox < ox_lo; ++ox) {
                        const long ix0 = static_cast<long>(ox * stride) -
                                         static_cast<long>(pad);
                        const float *src = src0 + ox * cols;
                        for (std::size_t kx = 0; kx < kw; ++kx) {
                            const long ix = ix0 + static_cast<long>(kx);
                            if (ix >= 0 && ix < static_cast<long>(w))
                                dst_row[ix] += src[kx];
                        }
                    }
                    for (std::size_t ox = ox_lo; ox < ox_hi; ++ox) {
                        float *d = dst_row + ox * stride - pad;
                        const float *src = src0 + ox * cols;
                        for (std::size_t kx = 0; kx < kw; ++kx)
                            d[kx] += src[kx];
                    }
                    for (std::size_t ox = ox_hi; ox < ow; ++ox) {
                        const long ix0 = static_cast<long>(ox * stride) -
                                         static_cast<long>(pad);
                        const float *src = src0 + ox * cols;
                        for (std::size_t kx = 0; kx < kw; ++kx) {
                            const long ix = ix0 + static_cast<long>(kx);
                            if (ix >= 0 && ix < static_cast<long>(w))
                                dst_row[ix] += src[kx];
                        }
                    }
                }
            }
        }
    }
}

} // namespace tensor
} // namespace fedgpo
