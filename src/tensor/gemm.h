/**
 * @file
 * Blocked, register-tiled single-precision GEMM microkernels.
 *
 * This is the internal engine behind the public tensor::matmul* entry
 * points in ops.h. It is exposed as its own header so the property suite
 * (tests/kernel_property_test.cc) can drive the blocked code directly on
 * adversarial shapes and compare it bit-exactly against the retained naive
 * kernels in reference.h.
 *
 * ## The reduction-order invariant
 *
 * For every output element C[i][j], the k multiply-add terms are folded in
 * ascending-p order into a single float accumulator chain, exactly like
 * the naive triple loop:
 *
 *     acc = start; acc += a(i,0)*b(0,j); acc += a(i,1)*b(1,j); ...
 *
 * where `start` is 0 (overwrite), the bias (never — bias is added after
 * the chain, see below), or the existing C value (accumulate). Blocking is
 * therefore restricted to transformations that cannot reorder a chain:
 * i/j tiles may be visited in any order (different elements), B may be
 * repacked into contiguous panels (pure data movement), and the k loop may
 * be split into ascending blocks whose partial chains round-trip through
 * the accumulator (same associativity). Lane-parallel SIMD across j is
 * fine — each lane is its own chain — but reductions across p lanes are
 * forbidden. This is what lets tests/round_golden_test.cc's hexfloat
 * goldens survive the kernel rebuild unchanged.
 *
 * There is no `a == 0` fast path: `0 * Inf` and `0 * NaN` must produce
 * NaN so a diverged client update cannot masquerade as finite (the round
 * pipeline's divergence rejection depends on it).
 *
 * ## Blocking scheme
 *
 * C is swept in kMr x kNr register tiles. B is packed one kNr-wide column
 * strip at a time into a thread-local panel laid out p-major
 * (bpack[p*kNr + jj]), so the microkernel's inner loop reads one
 * contiguous kNr vector per p regardless of the original B layout — the
 * same packing routine serves both B and B^T operands, which is how
 * matmulTransB shares the microkernel. The A operand is read directly:
 * its kMr rows are contiguous in p, so no packing is needed. The panel
 * (k * kNr floats) fits L1 for every shape the model zoo produces, so no
 * further k blocking is applied on this path.
 *
 * The A^T kernel (gemmTransA) has the opposite shape regime: k is the
 * large (batch*spatial) dimension and C is small. It keeps the naive
 * kernel's p-outer rank-1 structure — both A and B rows are already
 * contiguous — and adds kMr x kNr register tiles plus p-blocking (kKc)
 * so A and B stream through cache once while C tiles stay register- and
 * L1-resident. Partial chains round-trip through C between p-blocks,
 * preserving the invariant.
 *
 * All kernels are single-threaded by design: parallelism lives in the
 * runtime layer (one client per worker), which keeps results independent
 * of FEDGPO_THREADS.
 */

#ifndef FEDGPO_TENSOR_GEMM_H_
#define FEDGPO_TENSOR_GEMM_H_

#include <cstddef>

namespace fedgpo {
namespace tensor {
namespace blocked {

/** Register tile height (rows of C per microkernel). */
constexpr std::size_t kMr = 4;
/** Register tile width (columns of C per microkernel); SIMD-friendly. */
constexpr std::size_t kNr = 8;
/** p-block extent for the A^T kernel's cache blocking. */
constexpr std::size_t kKc = 256;

/**
 * General row-major GEMM: C = A * op(B) (+ bias), or C += A * op(B).
 *
 * A is [m, k] with leading dimension lda; op(B) is B [k, n] (ldb) when
 * trans_b is false, or B^T with B stored [n, k] (ldb) when true. C is
 * [m, n] with leading dimension ldc and must not alias A or B.
 *
 * @param accumulate  When true, each element's chain starts from the
 *                    existing C value (C += ...); bias must be null.
 * @param bias        Optional [n] vector added to every output row AFTER
 *                    the k-chain completes — bit-identical to a separate
 *                    bias-add pass, but fused into the store epilogue.
 */
void gemm(const float *a, std::size_t lda, const float *b, std::size_t ldb,
          bool trans_b, float *c, std::size_t ldc, std::size_t m,
          std::size_t n, std::size_t k, bool accumulate, const float *bias);

/**
 * C += A^T * B with A [k, m] (lda), B [k, n] (ldb), C [m, n] (ldc).
 * C must be initialized by the caller (the public entry zeroes it) and
 * must not alias A or B.
 */
void gemmTransA(const float *a, std::size_t lda, const float *b,
                std::size_t ldb, float *c, std::size_t ldc, std::size_t m,
                std::size_t n, std::size_t k);

} // namespace blocked
} // namespace tensor
} // namespace fedgpo

#endif // FEDGPO_TENSOR_GEMM_H_
