#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace fedgpo {
namespace util {

std::string
fmt(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
fmtX(double value, int decimals)
{
    return fmt(value, decimals) + "x";
}

std::string
fmtPct(double fraction, int decimals)
{
    return fmt(fraction * 100.0, decimals) + "%";
}

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    assert(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    if (!title.empty())
        os << title << "\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
        }
        os << "\n";
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
}

bool
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write CSV to " << path << "\n";
        return false;
    }
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ",";
            // Quote cells containing separators.
            if (row[c].find_first_of(",\"\n") != std::string::npos) {
                out << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        out << '"';
                    out << ch;
                }
                out << '"';
            } else {
                out << row[c];
            }
        }
        out << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return true;
}

} // namespace util
} // namespace fedgpo
