/**
 * @file
 * Small statistics helpers shared by the simulator and the benches.
 */

#ifndef FEDGPO_UTIL_STATS_H_
#define FEDGPO_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace fedgpo {
namespace util {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    RunningStat();

    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Number of observations folded in so far. */
    std::size_t count() const { return n_; }

    /** Mean of the observations (0 when empty). */
    double mean() const;

    /** Unbiased sample variance (0 when fewer than two observations). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /**
     * Fold another accumulator into this one, as if every observation
     * added to `other` had been added here too (Chan et al.'s parallel
     * variance combination). Used to aggregate per-thread histogram
     * stripes without shared mutation.
     */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n_;
    double mean_;
    double m2_;
    double min_;
    double max_;
    double sum_;
};

/**
 * Quantile of a sample via linear interpolation between order statistics.
 *
 * @param values Sample (copied and sorted internally).
 * @param q      Quantile in [0, 1].
 */
double quantile(std::vector<double> values, double q);

/** Arithmetic mean of a sample (0 when empty). */
double mean(const std::vector<double> &values);

/** Geometric mean of a positive sample (0 when empty). */
double geomean(const std::vector<double> &values);

/**
 * Trailing moving average of the last `window` entries of `values`
 * (or all of them when fewer are available).
 */
double trailingMean(const std::vector<double> &values, std::size_t window);

} // namespace util
} // namespace fedgpo

#endif // FEDGPO_UTIL_STATS_H_
