#include "util/logging.h"

#include <iostream>

namespace fedgpo {
namespace util {

namespace {

LogLevel g_level = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off:   return "off";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < g_level || g_level == LogLevel::Off)
        return;
    std::cerr << "[fedgpo:" << levelName(level) << "] " << msg << "\n";
}

void
logDebug(const std::string &msg)
{
    logMessage(LogLevel::Debug, msg);
}

void
logInfo(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

void
logWarn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
logError(const std::string &msg)
{
    logMessage(LogLevel::Error, msg);
}

void
fatal(const std::string &msg)
{
    logError(msg);
    throw FatalError(msg);
}

} // namespace util
} // namespace fedgpo
