/**
 * @file
 * Console table and CSV emission for bench/example output.
 *
 * Every bench binary prints a human-readable aligned table (the "paper
 * row/series" view) and can mirror the same rows into a CSV file for
 * plotting. Cells are strings; helpers format numbers consistently.
 */

#ifndef FEDGPO_UTIL_TABLE_H_
#define FEDGPO_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace fedgpo {
namespace util {

/** Format a double with the given number of decimals (fixed notation). */
std::string fmt(double value, int decimals = 3);

/** Format a ratio as e.g. "3.6x". */
std::string fmtX(double value, int decimals = 1);

/** Format a fraction as a percentage, e.g. "94.7%". */
std::string fmtPct(double fraction, int decimals = 1);

/**
 * Simple column-aligned table builder.
 *
 * Usage:
 * @code
 *   Table t({"B", "E", "K", "PPW"});
 *   t.addRow({"8", "10", "20", fmt(1.0)});
 *   t.print(std::cout);
 *   t.writeCsv("fig01.csv");
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Print the aligned table, with an optional title line. */
    void print(std::ostream &os, const std::string &title = "") const;

    /**
     * Write header + rows as CSV. Returns false (and logs) when the file
     * cannot be opened; bench output on stdout is still complete.
     */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace util
} // namespace fedgpo

#endif // FEDGPO_UTIL_TABLE_H_
