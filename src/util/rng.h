/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * Every stochastic process in the simulator (dataset synthesis, client
 * selection, runtime variance, epsilon-greedy exploration, ...) draws from
 * an Rng instance derived from a single root seed, so whole experiment
 * campaigns are reproducible bit-for-bit. Rng is a small wrapper around the
 * xoshiro256** generator seeded via SplitMix64; split() derives an
 * independent child stream, which lets each subsystem own its stream
 * without coupling the draw order across subsystems.
 */

#ifndef FEDGPO_UTIL_RNG_H_
#define FEDGPO_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace fedgpo {
namespace util {

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 *
 * Not thread-safe; create one instance per logical stream via split().
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Derive an independent child generator.
     *
     * Splitting advances the parent by one draw and seeds the child from
     * that output mixed with the tag, so (a) the same (parent state, tag)
     * always yields the same child, (b) children with different tags are
     * decorrelated, and (c) sequential splits from one parent are
     * decorrelated even with equal tags.
     *
     * This is the backbone of deterministic parallelism: to give each
     * unit of concurrent work its own stream, chain splits over the
     * coordinates that identify the unit — e.g. the runtime derives each
     * client's training stream as
     * `Rng(seed).split(round).split(client_id)` *before* dispatching to
     * the thread pool. The stream then depends only on
     * (seed, round, client), never on scheduling or on how many draws
     * other streams consumed, so parallel execution is bit-identical to
     * serial.
     *
     * @param tag Distinguishes children split from the same parent state.
     */
    Rng split(std::uint64_t tag);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    int uniformInt(int lo, int hi);

    /** Uniform size_t index in [0, n). Requires n > 0. */
    std::size_t index(std::size_t n);

    /** Standard normal variate (Box-Muller, cached second value). */
    double gaussian();

    /** Normal variate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Gamma variate with the given shape (scale 1), Marsaglia-Tsang.
     * Valid for any shape > 0.
     */
    double gamma(double shape);

    /**
     * Dirichlet sample with symmetric concentration alpha over k classes.
     * The returned vector has k nonnegative entries summing to 1.
     */
    std::vector<double> dirichlet(double alpha, std::size_t k);

    /**
     * Sample an index according to the (not necessarily normalized)
     * nonnegative weights. Requires a positive total weight.
     */
    std::size_t categorical(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of the container in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = index(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Sample n distinct indices from [0, pool) uniformly without
     * replacement. Requires n <= pool.
     */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t pool);

  private:
    std::uint64_t s_[4];
    double cached_gaussian_;
    bool has_cached_gaussian_;
};

} // namespace util
} // namespace fedgpo

#endif // FEDGPO_UTIL_RNG_H_
