/**
 * @file
 * Minimal JSON value and recursive-descent parser — just enough to read
 * back the JSONL round traces the simulator writes (objects, arrays,
 * strings with basic escapes, numbers, booleans, null). No external
 * dependencies, no DOM mutation API: parse, then navigate.
 *
 * Consumers: tools/trace_summarize and the trace round-trip tests.
 */

#ifndef FEDGPO_UTIL_JSON_H_
#define FEDGPO_UTIL_JSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fedgpo {
namespace util {

/**
 * One parsed JSON value. Missing-key lookups return a shared Null value
 * rather than throwing, so chained navigation over optional trace fields
 * stays terse: `line.at("decision").at("k").at("value").asNumber()`.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    /**
     * Parse one JSON document. Returns false (and fills `error` with a
     * position-annotated message, when given) on malformed input.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string *error = nullptr);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; type-mismatched reads return the neutral value. */
    bool asBool() const { return isBool() && bool_; }
    double asNumber() const { return isNumber() ? number_ : 0.0; }
    const std::string &asString() const { return string_; }

    /**
     * True when the number was written as a pure integer token (no '.',
     * no exponent) that fits an int64 — its exact value is then available
     * through asInt64(), lossless beyond double's 2^53 integer range.
     * Byte counters in the round traces rely on this.
     */
    bool isInteger() const { return isNumber() && is_int_; }

    /**
     * The exact integer value. Falls back to truncating the double for
     * numbers not stored as integers; 0 for non-numbers.
     */
    std::int64_t asInt64() const
    {
        if (!isNumber())
            return 0;
        return is_int_ ? int_ : static_cast<std::int64_t>(number_);
    }

    /** Element count of an array or object; 0 otherwise. */
    std::size_t size() const;

    /** Array element i; the shared Null value out of range. */
    const JsonValue &at(std::size_t i) const;

    /** Object member by key; the shared Null value when missing. */
    const JsonValue &at(const std::string &key) const;

    /** True when an object carries the key. */
    bool has(const std::string &key) const;

    /** Object members in document order (empty for non-objects). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return object_;
    }

    /** Array elements (empty for non-arrays). */
    const std::vector<JsonValue> &elements() const { return array_; }

  private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    bool is_int_ = false;
    std::int64_t int_ = 0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

} // namespace util
} // namespace fedgpo

#endif // FEDGPO_UTIL_JSON_H_
