#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fedgpo {
namespace util {

namespace {

/** SplitMix64 step; used to expand seeds into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cached_gaussian_(0.0), has_cached_gaussian_(false)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

Rng
Rng::split(std::uint64_t tag)
{
    // Mix the tag with fresh output so that children with different tags
    // (and children of sequential splits) are decorrelated.
    std::uint64_t seed = next() ^ (tag * 0xd1342543de82ef95ULL + 1);
    return Rng(seed);
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    assert(lo <= hi);
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
}

std::size_t
Rng::index(std::size_t n)
{
    assert(n > 0);
    return static_cast<std::size_t>(next() % n);
}

double
Rng::gaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::gamma(double shape)
{
    if (shape <= 0.0)
        throw std::invalid_argument("gamma shape must be positive");
    if (shape < 1.0) {
        // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
        double u = 0.0;
        while (u <= 1e-300)
            u = uniform();
        return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        double x = gaussian();
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 1e-300 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v;
        }
    }
}

std::vector<double>
Rng::dirichlet(double alpha, std::size_t k)
{
    std::vector<double> out(k);
    double total = 0.0;
    for (auto &x : out) {
        x = gamma(alpha);
        total += x;
    }
    if (total <= 0.0) {
        // Numerically degenerate draw (tiny alpha): put all mass on one
        // uniformly chosen class, the correct limit of Dirichlet(alpha->0).
        std::fill(out.begin(), out.end(), 0.0);
        out[index(k)] = 1.0;
        return out;
    }
    for (auto &x : out)
        x /= total;
    return out;
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    if (total <= 0.0)
        throw std::invalid_argument("categorical needs positive total mass");
    double r = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t>
Rng::sampleWithoutReplacement(std::size_t n, std::size_t pool)
{
    assert(n <= pool);
    std::vector<std::size_t> all(pool);
    for (std::size_t i = 0; i < pool; ++i)
        all[i] = i;
    // Partial Fisher-Yates: only the first n positions need shuffling.
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t j = i + index(pool - i);
        std::swap(all[i], all[j]);
    }
    all.resize(n);
    return all;
}

} // namespace util
} // namespace fedgpo
