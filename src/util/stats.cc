#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fedgpo {
namespace util {

RunningStat::RunningStat()
{
    reset();
}

void
RunningStat::reset()
{
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n_total = na + nb;
    mean_ += delta * nb / n_total;
    m2_ += other.m2_ + delta * delta * na * nb / n_total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::mean() const
{
    return n_ == 0 ? 0.0 : mean_;
}

double
RunningStat::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
quantile(std::vector<double> values, double q)
{
    assert(!values.empty());
    assert(q >= 0.0 && q <= 1.0);
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values[0];
    double pos = q * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    auto hi = std::min(lo + 1, values.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
trailingMean(const std::vector<double> &values, std::size_t window)
{
    if (values.empty())
        return 0.0;
    std::size_t n = std::min(window, values.size());
    double total = 0.0;
    for (std::size_t i = values.size() - n; i < values.size(); ++i)
        total += values[i];
    return total / static_cast<double>(n);
}

} // namespace util
} // namespace fedgpo
