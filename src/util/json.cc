#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace fedgpo {
namespace util {

namespace {

const JsonValue &
nullValue()
{
    static const JsonValue kNull;
    return kNull;
}

} // namespace

/**
 * Hand-rolled recursive-descent parser over the input buffer. Depth is
 * capped so a pathological input cannot blow the stack.
 */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool run(JsonValue &out)
    {
        if (!parseValue(out, 0))
            return false;
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;

    bool fail(const std::string &what)
    {
        if (error_ != nullptr)
            *error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool consume(char expected)
    {
        if (pos_ >= text_.size() || text_[pos_] != expected)
            return fail(std::string("expected '") + expected + "'");
        ++pos_;
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case '{':
            return parseObject(out, depth);
        case '[':
            return parseArray(out, depth);
        case '"':
            out.type_ = JsonValue::Type::String;
            return parseString(out.string_);
        case 't':
        case 'f':
            return parseKeyword(out);
        case 'n':
            return parseNull(out);
        default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out, int depth)
    {
        out.type_ = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.object_.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        out.type_ = JsonValue::Type::Array;
        ++pos_; // '['
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.array_.push_back(std::move(value));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume(']');
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // The traces only emit ASCII; encode the BMP code point
                // as UTF-8 so arbitrary valid input still round-trips.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseKeyword(JsonValue &out)
    {
        if (text_.compare(pos_, 4, "true") == 0) {
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = false;
            pos_ += 5;
            return true;
        }
        return fail("unknown keyword");
    }

    bool parseNull(JsonValue &out)
    {
        if (text_.compare(pos_, 4, "null") == 0) {
            out.type_ = JsonValue::Type::Null;
            pos_ += 4;
            return true;
        }
        return fail("unknown keyword");
    }

    bool parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                digits = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (!digits)
            return fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            return fail("malformed number");
        }
        out.type_ = JsonValue::Type::Number;
        out.number_ = value;
        // Pure-integer tokens additionally keep their exact int64 value:
        // byte counters in the traces exceed double's 2^53 integer range
        // in principle, and asInt64() must round-trip them losslessly.
        if (token.find_first_of(".eE") == std::string::npos) {
            errno = 0;
            char *iend = nullptr;
            const long long exact = std::strtoll(token.c_str(), &iend, 10);
            if (errno == 0 && iend != nullptr && *iend == '\0') {
                out.is_int_ = true;
                out.int_ = exact;
            }
        }
        return true;
    }
};

bool
JsonValue::parse(const std::string &text, JsonValue &out, std::string *error)
{
    out = JsonValue();
    JsonParser parser(text, error);
    return parser.run(out);
}

std::size_t
JsonValue::size() const
{
    if (isArray())
        return array_.size();
    if (isObject())
        return object_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (isArray() && i < array_.size())
        return array_[i];
    return nullValue();
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    for (const auto &member : object_) {
        if (member.first == key)
            return member.second;
    }
    return nullValue();
}

bool
JsonValue::has(const std::string &key) const
{
    for (const auto &member : object_) {
        if (member.first == key)
            return true;
    }
    return false;
}

} // namespace util
} // namespace fedgpo
