/**
 * @file
 * Minimal leveled logging for the library.
 *
 * Defaults to Warn so library users are not spammed; benches and examples
 * raise the level explicitly. Follows the gem5 inform/warn/fatal split:
 * fatal() is for user errors (bad configuration) and throws, so callers and
 * tests can observe it; internal invariant violations use assert.
 */

#ifndef FEDGPO_UTIL_LOGGING_H_
#define FEDGPO_UTIL_LOGGING_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace fedgpo {
namespace util {

/** Log severity levels, ordered by verbosity. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Set the global log threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/** Emit a message at the given level to stderr (if enabled). */
void logMessage(LogLevel level, const std::string &msg);

/** Convenience wrappers. */
void logDebug(const std::string &msg);
void logInfo(const std::string &msg);
void logWarn(const std::string &msg);
void logError(const std::string &msg);

/**
 * Error thrown for unrecoverable user-facing misconfiguration
 * (gem5's fatal()).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Report a user error: log it and throw FatalError. */
[[noreturn]] void fatal(const std::string &msg);

} // namespace util
} // namespace fedgpo

#endif // FEDGPO_UTIL_LOGGING_H_
