#include "obs/decision.h"

#include <cstdio>
#include <sstream>

namespace fedgpo {
namespace obs {

namespace {

/** Shortest round-trip-exact double formatting ("%.17g"). */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

const char *
b(bool v)
{
    return v ? "true" : "false";
}

} // namespace

std::string
decisionJson(const DecisionRecord &r)
{
    std::ostringstream os;
    os << "{\"round\":" << r.round;
    os << ",\"epsilon\":" << num(r.epsilon);
    os << ",\"k\":{\"state\":" << r.k_state << ",\"action\":" << r.k_action
       << ",\"value\":" << r.k_value << ",\"explored\":" << b(r.k_explored)
       << ",\"swept\":" << b(r.k_swept) << ",\"q_row\":[";
    for (std::size_t i = 0; i < r.k_qrow.size(); ++i) {
        if (i > 0)
            os << ",";
        os << num(r.k_qrow[i]);
    }
    os << "]}";
    if (r.has_codec) {
        os << ",\"codec\":{\"state\":" << r.codec_state
           << ",\"action\":" << r.codec_action << ",\"name\":\""
           << r.codec_name << "\",\"explored\":" << b(r.codec_explored)
           << ",\"swept\":" << b(r.codec_swept) << ",\"q_row\":[";
        for (std::size_t i = 0; i < r.codec_qrow.size(); ++i) {
            if (i > 0)
                os << ",";
            os << num(r.codec_qrow[i]);
        }
        os << "]}";
    }
    os << ",\"devices\":[";
    for (std::size_t i = 0; i < r.devices.size(); ++i) {
        const DeviceDecision &d = r.devices[i];
        if (i > 0)
            os << ",";
        os << "{\"id\":" << d.client_id << ",\"state\":" << d.state
           << ",\"action\":" << d.action << ",\"batch\":" << d.batch
           << ",\"epochs\":" << d.epochs
           << ",\"explored\":" << b(d.explored) << ",\"q\":" << num(d.q)
           << ",\"visits\":" << d.visits << "}";
    }
    os << "]";
    os << ",\"reward\":{\"total\":" << num(r.reward.total)
       << ",\"energy_global_term\":" << num(r.reward.energy_global_term)
       << ",\"energy_local_term\":" << num(r.reward.energy_local_term)
       << ",\"accuracy_term\":" << num(r.reward.accuracy_term)
       << ",\"improvement_term\":" << num(r.reward.improvement_term)
       << ",\"stall_penalty\":" << num(r.reward.stall_penalty)
       << ",\"abort_penalty\":" << num(r.reward.abort_penalty)
       << ",\"stall_branch\":" << b(r.reward.stall_branch)
       << ",\"aborted\":" << b(r.reward.aborted) << "}";
    os << ",\"device_reward_mean\":" << num(r.device_reward_mean);
    os << ",\"devices_rewarded\":" << r.devices_rewarded;
    os << ",\"complete\":" << b(r.complete);
    os << "}";
    return os.str();
}

} // namespace obs
} // namespace fedgpo
