/**
 * @file
 * Structured record of one FedGPO control decision: the observed state,
 * the chosen action (B, E, K), the Q-row backing the K choice, the
 * exploration outcome, and — once the round's feedback has been applied —
 * the decomposed Eq. 1 reward terms. This is the "why did the controller
 * pick that" record the round trace carries as its `decision` section.
 *
 * The record is plain data filled by core::FedGpo across its
 * chooseClients / assign / feedback calls; it never feeds back into the
 * learner or the simulator, so logging it is provably inert.
 */

#ifndef FEDGPO_OBS_DECISION_H_
#define FEDGPO_OBS_DECISION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fedgpo {
namespace obs {

/** One selected device's (B, E) pick. */
struct DeviceDecision
{
    std::size_t client_id = 0;
    std::size_t state = 0;    //!< discretized Table 1 state index
    std::size_t action = 0;   //!< (B, E) action index
    int batch = 0;            //!< decoded B
    int epochs = 0;           //!< decoded E
    bool explored = false;    //!< epsilon branch taken for this device
    double q = 0.0;           //!< Q(state, action) at decision time
    std::uint32_t visits = 0; //!< prior visits of the chosen cell
};

/** Decomposed Eq. 1 reward, plus the fault-injection penalties. */
struct RewardTerms
{
    double total = 0.0;
    double energy_global_term = 0.0; //!< -w * R_energy_global (PPW term)
    double energy_local_term = 0.0;  //!< -w * R_energy_local
    double accuracy_term = 0.0;      //!< alpha * R_accuracy
    double improvement_term = 0.0;   //!< beta * capped accuracy delta
    double stall_penalty = 0.0;      //!< R_accuracy - 100 (stall branch)
    double abort_penalty = 0.0;      //!< extra below-stall quorum penalty
    bool stall_branch = false;       //!< Eq. 1 took the no-improvement arm
    bool aborted = false;            //!< round missed quorum
};

/**
 * One round's complete FedGPO decision.
 */
struct DecisionRecord
{
    int round = 0;          //!< 1-based round (the policy's own count)
    double epsilon = 0.0;   //!< exploration probability in force

    // Global K choice.
    std::size_t k_state = 0;
    std::size_t k_action = 0;
    int k_value = 0;            //!< decoded (fleet-clamped) K
    bool k_explored = false;    //!< epsilon branch taken for K
    bool k_swept = false;       //!< every K action tried at this state
    std::vector<double> k_qrow; //!< Q-row of k_state at decision time

    // Global codec choice (the fourth knob; recorded only when the
    // policy adapts the codec level).
    bool has_codec = false;
    std::size_t codec_state = 0;
    std::size_t codec_action = 0;
    std::string codec_name;         //!< decoded level ("identity"/...)
    bool codec_explored = false;    //!< epsilon branch taken for codec
    bool codec_swept = false;       //!< every codec action tried here
    std::vector<double> codec_qrow; //!< Q-row at decision time

    // Per-device (B, E) choices.
    std::vector<DeviceDecision> devices;

    // Filled by feedback(): the global K reward decomposition plus the
    // mean per-device reward actually applied.
    RewardTerms reward;
    double device_reward_mean = 0.0;
    std::size_t devices_rewarded = 0;

    /** True once feedback() has filled the reward terms. */
    bool complete = false;
};

/** Serialize a record as one compact JSON object (%.17g numbers). */
std::string decisionJson(const DecisionRecord &record);

} // namespace obs
} // namespace fedgpo

#endif // FEDGPO_OBS_DECISION_H_
