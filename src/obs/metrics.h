/**
 * @file
 * Process-wide metrics and profiling registry for host-side observability.
 *
 * Everything here measures the *host* — wall-clock spans, thread-pool
 * queueing, fault/retry counters — never the simulated fleet: modeled
 * time and energy live in the device cost model and must stay
 * bit-identical whether metrics are off or on (asserted by
 * tests/round_golden_test.cc). Instrumentation is gated by a process
 * level read once from the FEDGPO_METRICS environment variable
 * (off | basic | profile, default off):
 *
 *   off     — every probe compiles down to a null-pointer check; no
 *             clock reads, no allocation, no registry traffic.
 *   basic   — round-stage spans, thread-pool queue-wait/busy histograms,
 *             fault and round counters.
 *   profile — basic plus the hot-path spans: per-layer nn::Model
 *             forward/backward and the SGD parameter update.
 *
 * All mutation paths are thread-safe under the worker pool: counters,
 * gauges, and span accumulators are atomics; histograms stripe their
 * state by thread and merge via util::RunningStat::merge at snapshot
 * time. Exporters (Prometheus text, JSON section for the round trace,
 * util::Table summary) read one consistent, name-sorted snapshot.
 */

#ifndef FEDGPO_OBS_METRICS_H_
#define FEDGPO_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/stats.h"

namespace fedgpo {
namespace obs {

/** Instrumentation levels, ordered by cost. */
enum class Level { Off = 0, Basic = 1, Profile = 2 };

/**
 * The process instrumentation level: the first call reads FEDGPO_METRICS
 * (off | basic | profile; unset or unrecognized values log a warning and
 * mean off), later calls return the cached value. setLevel() overrides it.
 */
Level level();

/** Override the level (tests and embedders). */
void setLevel(Level level);

/** True when the current level is at least `min`. */
inline bool
enabled(Level min = Level::Basic)
{
    return level() >= min;
}

/** RAII level override for tests: restores the previous level on exit. */
class ScopedLevel
{
  public:
    explicit ScopedLevel(Level l) : prev_(level()) { setLevel(l); }
    ~ScopedLevel() { setLevel(prev_); }
    ScopedLevel(const ScopedLevel &) = delete;
    ScopedLevel &operator=(const ScopedLevel &) = delete;

  private:
    Level prev_;
};

/** Monotonic counter. Increments are lock-free. */
class Counter
{
  public:
    void add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value gauge. Stores are lock-free. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram with running mean/min/max/sum.
 *
 * Observations land in a stripe chosen by the calling thread, so worker
 * threads never contend on one mutex; snapshot() folds the stripes
 * together with util::RunningStat::merge.
 */
class Histogram
{
  public:
    /** @param bounds Ascending upper bucket bounds; +inf is implicit. */
    explicit Histogram(std::vector<double> bounds);

    /** Fold one observation in (thread-safe). */
    void add(double x);

    struct Snapshot
    {
        util::RunningStat stat;                 //!< merged across stripes
        std::vector<double> bounds;             //!< upper bucket bounds
        std::vector<std::uint64_t> bucket_counts; //!< cumulative (le-style)
    };
    Snapshot snapshot() const;

  private:
    static constexpr std::size_t kStripes = 8;
    struct Stripe
    {
        mutable std::mutex mutex;
        util::RunningStat stat;
        std::vector<std::uint64_t> buckets;
    };
    std::vector<double> bounds_;
    std::array<Stripe, kStripes> stripes_;
};

/**
 * One node of the hierarchical host-time profile. Nodes are identified
 * by dotted paths ("round.train", "model.forward.02_conv", ...); the
 * hierarchy is the path prefix structure, so accumulation needs no
 * parent links and is lock-free.
 */
struct SpanNode
{
    std::string name;
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> count{0};

    explicit SpanNode(std::string n) : name(std::move(n)) {}

    void
    addNs(std::uint64_t delta_ns)
    {
        ns.fetch_add(delta_ns, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
    }
};

/** Record an externally measured duration (milliseconds). Null-safe. */
inline void
addSpanMs(SpanNode *node, double ms)
{
    if (node != nullptr && ms >= 0.0)
        node->addNs(static_cast<std::uint64_t>(ms * 1e6));
}

/**
 * RAII span timer: times construction-to-destruction and folds the
 * elapsed time into the node. A null node disables the timer entirely
 * (no clock reads) — pass `spanIf(...)`'s result directly.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(SpanNode *node) : node_(node)
    {
        if (node_ != nullptr)
            t0_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer()
    {
        if (node_ != nullptr) {
            const auto dt = std::chrono::steady_clock::now() - t0_;
            node_->addNs(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count()));
        }
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    SpanNode *node_;
    std::chrono::steady_clock::time_point t0_;
};

/** Name-sorted point-in-time view of the whole registry. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    struct Span
    {
        std::string name;
        std::uint64_t count = 0;
        double total_ms = 0.0;
    };
    std::vector<Span> spans;
    double uptime_s = 0.0; //!< host seconds since registry creation
};

/**
 * The process-wide registry. Metric objects are created on first lookup
 * and live for the process; returned pointers are stable, so hot paths
 * resolve them once and then mutate lock-free.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Find-or-create; never null. */
    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);
    /** `bounds` applies only when the histogram does not exist yet. */
    Histogram *histogram(const std::string &name,
                         std::vector<double> bounds);
    SpanNode *span(const std::string &path);

    MetricsSnapshot snapshot() const;

    /**
     * Zero every metric and drop every registration (tests). Pointers
     * previously handed out become dangling — re-resolve after reset.
     */
    void reset();

  private:
    MetricsRegistry();

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::unique_ptr<SpanNode>> spans_;
    std::chrono::steady_clock::time_point start_;
};

/** Level-gated lookups: null below `min`, so probes vanish when off. */
SpanNode *spanIf(Level min, const std::string &path);
Counter *counterIf(Level min, const std::string &name);
Gauge *gaugeIf(Level min, const std::string &name);
Histogram *histogramIf(Level min, const std::string &name,
                       std::vector<double> bounds);

/** Null-safe counter bump. */
inline void
addCount(Counter *c, std::uint64_t delta = 1)
{
    if (c != nullptr)
        c->add(delta);
}

/** Convenience: level-gated one-shot counter bump by name. */
void count(const std::string &name, std::uint64_t delta = 1,
           Level min = Level::Basic);

/**
 * Prometheus text exposition of a snapshot: counters and span totals as
 * counters, gauges as gauges, histograms with cumulative le-buckets.
 * Metric names are prefixed "fedgpo_" and mangled to [a-zA-Z0-9_].
 */
std::string prometheusText(const MetricsSnapshot &snapshot);

/** Write prometheusText(snapshot()) to `path`. Logs and returns false
 *  on failure (exporting must never kill a run). */
bool writePrometheusFile(const std::string &path);

/**
 * Compact JSON object ({"counters":{...},"gauges":{...}}) of the current
 * counters and gauges — the `metrics` section of the round trace.
 */
std::string metricsJson();

/**
 * End-of-campaign summary: top-N spans by cumulative time, thread-pool
 * utilization, and non-zero counters, rendered via util::Table.
 */
void printSummary(std::ostream &os, std::size_t top_n = 12);

/**
 * End-of-run hook for campaign runners and examples: with metrics
 * enabled, writes a Prometheus snapshot to $FEDGPO_METRICS_FILE (when
 * set) and prints the summary table — to `os` when given, else to
 * stderr when the log level admits Info. A no-op at level off.
 */
void finishRun(std::ostream *os = nullptr);

} // namespace obs
} // namespace fedgpo

#endif // FEDGPO_OBS_METRICS_H_
