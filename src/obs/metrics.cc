#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <thread>

#include "util/logging.h"
#include "util/table.h"

namespace fedgpo {
namespace obs {

namespace {

/** -1 = not yet resolved from the environment. */
std::atomic<int> g_level{-1};

Level
levelFromEnv()
{
    const char *env = std::getenv("FEDGPO_METRICS");
    if (env == nullptr || *env == '\0')
        return Level::Off;
    const std::string v(env);
    if (v == "off")
        return Level::Off;
    if (v == "basic")
        return Level::Basic;
    if (v == "profile")
        return Level::Profile;
    util::logWarn("FEDGPO_METRICS: unrecognized value '" + v +
                  "' (want off|basic|profile); metrics stay off");
    return Level::Off;
}

/** Shortest round-trip-exact double formatting ("%.17g"). */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

Level
level()
{
    int v = g_level.load(std::memory_order_acquire);
    if (v < 0) {
        v = static_cast<int>(levelFromEnv());
        int expected = -1;
        // First resolver wins; a concurrent setLevel() is preserved.
        g_level.compare_exchange_strong(expected, v,
                                        std::memory_order_acq_rel);
        v = g_level.load(std::memory_order_acquire);
    }
    return static_cast<Level>(v);
}

void
setLevel(Level l)
{
    g_level.store(static_cast<int>(l), std::memory_order_release);
}

// --- Histogram. ---------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds))
{
    for (Stripe &s : stripes_)
        s.buckets.assign(bounds_.size() + 1, 0);
}

void
Histogram::add(double x)
{
    const std::size_t stripe =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
    Stripe &s = stripes_[stripe];
    std::lock_guard<std::mutex> lock(s.mutex);
    s.stat.add(x);
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
    ++s.buckets[static_cast<std::size_t>(it - bounds_.begin())];
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot out;
    out.bounds = bounds_;
    std::vector<std::uint64_t> raw(bounds_.size() + 1, 0);
    for (const Stripe &s : stripes_) {
        std::lock_guard<std::mutex> lock(s.mutex);
        out.stat.merge(s.stat);
        for (std::size_t b = 0; b < raw.size(); ++b)
            raw[b] += s.buckets[b];
    }
    // Cumulative counts, Prometheus le-style (last bucket = +inf = count).
    out.bucket_counts.resize(raw.size());
    std::uint64_t running = 0;
    for (std::size_t b = 0; b < raw.size(); ++b) {
        running += raw[b];
        out.bucket_counts[b] = running;
    }
    return out;
}

// --- Registry. ----------------------------------------------------------

MetricsRegistry::MetricsRegistry() : start_(std::chrono::steady_clock::now())
{
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    return it->second.get();
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    return it->second.get();
}

Histogram *
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name,
                          std::make_unique<Histogram>(std::move(bounds)))
                 .first;
    }
    return it->second.get();
}

SpanNode *
MetricsRegistry::span(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = spans_.find(path);
    if (it == spans_.end())
        it = spans_.emplace(path, std::make_unique<SpanNode>(path)).first;
    return it->second.get();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_)
        out.counters.emplace_back(name, c->value());
    for (const auto &[name, g] : gauges_)
        out.gauges.emplace_back(name, g->value());
    for (const auto &[name, h] : histograms_)
        out.histograms.emplace_back(name, h->snapshot());
    for (const auto &[name, s] : spans_) {
        MetricsSnapshot::Span span;
        span.name = name;
        span.count = s->count.load(std::memory_order_relaxed);
        span.total_ms =
            static_cast<double>(s->ns.load(std::memory_order_relaxed)) /
            1e6;
        out.spans.push_back(std::move(span));
    }
    out.uptime_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    spans_.clear();
    start_ = std::chrono::steady_clock::now();
}

// --- Gated lookups. -----------------------------------------------------

SpanNode *
spanIf(Level min, const std::string &path)
{
    return enabled(min) ? MetricsRegistry::instance().span(path) : nullptr;
}

Counter *
counterIf(Level min, const std::string &name)
{
    return enabled(min) ? MetricsRegistry::instance().counter(name)
                        : nullptr;
}

Gauge *
gaugeIf(Level min, const std::string &name)
{
    return enabled(min) ? MetricsRegistry::instance().gauge(name) : nullptr;
}

Histogram *
histogramIf(Level min, const std::string &name, std::vector<double> bounds)
{
    return enabled(min) ? MetricsRegistry::instance().histogram(
                              name, std::move(bounds))
                        : nullptr;
}

void
count(const std::string &name, std::uint64_t delta, Level min)
{
    if (enabled(min))
        MetricsRegistry::instance().counter(name)->add(delta);
}

// --- Exporters. ---------------------------------------------------------

namespace {

/** "round.train" -> "fedgpo_round_train". */
std::string
promName(const std::string &name)
{
    std::string out = "fedgpo_";
    for (char c : name) {
        out += std::isalnum(static_cast<unsigned char>(c))
                   ? c
                   : '_';
    }
    return out;
}

} // namespace

std::string
prometheusText(const MetricsSnapshot &snapshot)
{
    std::ostringstream os;
    for (const auto &[name, value] : snapshot.counters) {
        const std::string p = promName(name) + "_total";
        os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n" << p << " " << num(value)
           << "\n";
    }
    for (const auto &[name, h] : snapshot.histograms) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            os << p << "_bucket{le=\"" << num(h.bounds[b])
               << "\"} " << h.bucket_counts[b] << "\n";
        }
        os << p << "_bucket{le=\"+Inf\"} " << h.bucket_counts.back()
           << "\n";
        os << p << "_sum " << num(h.stat.sum()) << "\n";
        os << p << "_count " << h.stat.count() << "\n";
    }
    for (const auto &span : snapshot.spans) {
        const std::string p = promName("span." + span.name);
        os << "# TYPE " << p << "_ms_total counter\n"
           << p << "_ms_total " << num(span.total_ms) << "\n";
        os << "# TYPE " << p << "_count_total counter\n"
           << p << "_count_total " << span.count << "\n";
    }
    return os.str();
}

bool
writePrometheusFile(const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out.good()) {
        util::logWarn("metrics: cannot open '" + path +
                      "' for the Prometheus snapshot");
        return false;
    }
    out << prometheusText(MetricsRegistry::instance().snapshot());
    out.flush();
    if (!out.good()) {
        util::logWarn("metrics: write failed on '" + path + "'");
        return false;
    }
    return true;
}

std::string
metricsJson()
{
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    std::ostringstream os;
    os << "{\"counters\":{";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\"" << snap.counters[i].first
           << "\":" << snap.counters[i].second;
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\"" << snap.gauges[i].first
           << "\":" << num(snap.gauges[i].second);
    }
    os << "}}";
    return os.str();
}

void
printSummary(std::ostream &os, std::size_t top_n)
{
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();

    std::vector<MetricsSnapshot::Span> spans = snap.spans;
    std::sort(spans.begin(), spans.end(),
              [](const auto &a, const auto &b) {
                  return a.total_ms > b.total_ms;
              });
    if (spans.size() > top_n)
        spans.resize(top_n);
    util::Table span_table({"span", "count", "total ms", "mean ms"});
    for (const auto &s : spans) {
        span_table.addRow(
            {s.name, std::to_string(s.count), util::fmt(s.total_ms, 2),
             util::fmt(s.count > 0
                           ? s.total_ms / static_cast<double>(s.count)
                           : 0.0,
                       4)});
    }
    if (span_table.rows() > 0)
        span_table.print(os, "Top spans by cumulative host time");

    // Pool utilization: busy time across workers vs. available host time.
    double busy_ms = 0.0, wait_mean_ms = 0.0;
    std::size_t tasks = 0;
    bool have_pool = false;
    for (const auto &[name, h] : snap.histograms) {
        if (name == "pool.task_ms") {
            busy_ms = h.stat.sum();
            tasks = h.stat.count();
            have_pool = true;
        } else if (name == "pool.queue_wait_ms") {
            wait_mean_ms = h.stat.mean();
        }
    }
    if (have_pool) {
        double threads = 1.0;
        for (const auto &[name, value] : snap.gauges)
            if (name == "pool.threads")
                threads = std::max(value, 1.0);
        const double avail_ms = snap.uptime_s * 1e3 * threads;
        util::Table pool_table({"pool tasks", "busy ms", "mean wait ms",
                                "threads", "utilization"});
        pool_table.addRow(
            {std::to_string(tasks), util::fmt(busy_ms, 2),
             util::fmt(wait_mean_ms, 4), util::fmt(threads, 0),
             util::fmtPct(avail_ms > 0.0 ? busy_ms / avail_ms : 0.0)});
        os << "\n";
        pool_table.print(os, "Thread pool");
    }

    util::Table counter_table({"counter", "value"});
    for (const auto &[name, value] : snap.counters) {
        if (value > 0)
            counter_table.addRow({name, std::to_string(value)});
    }
    if (counter_table.rows() > 0) {
        os << "\n";
        counter_table.print(os, "Counters");
    }
}

void
finishRun(std::ostream *os)
{
    if (!enabled())
        return;
    if (const char *path = std::getenv("FEDGPO_METRICS_FILE")) {
        if (*path != '\0')
            writePrometheusFile(path);
    }
    if (os != nullptr)
        printSummary(*os);
    else if (util::logLevel() <= util::LogLevel::Info)
        printSummary(std::cerr);
}

} // namespace obs
} // namespace fedgpo
