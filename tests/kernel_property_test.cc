/**
 * @file
 * Property-based equivalence suite for the blocked kernel layer.
 *
 * The blocked GEMM/im2col kernels in tensor/ops.h promise bit-exact
 * agreement with the naive reference kernels in tensor/reference.h for
 * every input — the blocking may reorder i/j tiles and pack B panels, but
 * each output element must fold its k terms in the same ascending-p order.
 * These tests sweep random shapes (including k=1, n=1, and extents that
 * are not multiples of the register tile) and compare bit patterns, which
 * is NaN-safe where operator== is not.
 *
 * Also pins the non-finite contract: 0 * Inf must produce NaN instead of
 * being skipped (the pre-kernel-layer accumulate/transA GEMMs skipped
 * zero multiplicands, silently masking diverged updates).
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/reference.h"
#include "tensor/tensor.h"

namespace {

using fedgpo::tensor::Tensor;
namespace ops = fedgpo::tensor;
namespace ref = fedgpo::tensor::reference;

void
fillRandom(Tensor &t, std::mt19937 &gen)
{
    std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = dist(gen);
}

::testing::AssertionResult
bitEqual(const Tensor &got, const Tensor &want)
{
    if (got.shape() != want.shape())
        return ::testing::AssertionFailure()
               << "shape mismatch: " << fedgpo::tensor::shapeToString(
                      got.shape())
               << " vs " << fedgpo::tensor::shapeToString(want.shape());
    for (std::size_t i = 0; i < got.numel(); ++i) {
        std::uint32_t gb, wb;
        const float gv = got[i], wv = want[i];
        std::memcpy(&gb, &gv, sizeof(gb));
        std::memcpy(&wb, &wv, sizeof(wb));
        // NaN payload/sign is not part of the contract: which source NaN
        // a multiply-add propagates depends on instruction operand order,
        // which differs between the vectorized and scalar compilations.
        // Any NaN matches any NaN; everything else (finite values, Inf
        // signs, zero signs) must match bit for bit.
        if (std::isnan(gv) && std::isnan(wv))
            continue;
        if (gb != wb)
            return ::testing::AssertionFailure()
                   << "element " << i << ": " << gv << " (0x" << std::hex
                   << gb << ") vs " << wv << " (0x" << wb << ")";
    }
    return ::testing::AssertionSuccess();
}

struct GemmShape {
    std::size_t m, k, n;
};

// Degenerate extents, register-tile edges (tiles are 4x8), and the actual
// GEMM shapes the model zoo produces.
const GemmShape kShapes[] = {
    {1, 1, 1},   {1, 1, 8},    {4, 1, 8},   {3, 17, 5},  {5, 3, 1},
    {8, 2, 9},   {17, 31, 33}, {33, 9, 8},  {13, 8, 16}, {9, 300, 7},
    {2, 28, 128}, {6, 72, 16}, {12, 512, 20}, {40, 9, 8},
};

TEST(KernelEquivalence, MatmulMatchesReferenceBitExactly)
{
    std::mt19937 gen(20260806);
    for (const auto &s : kShapes) {
        Tensor a({s.m, s.k}), b({s.k, s.n});
        fillRandom(a, gen);
        fillRandom(b, gen);
        Tensor got, want;
        ops::matmul(a, b, got);
        ref::matmulRef(a, b, want);
        EXPECT_TRUE(bitEqual(got, want))
            << "matmul m=" << s.m << " k=" << s.k << " n=" << s.n;
    }
}

TEST(KernelEquivalence, MatmulBiasMatchesReferenceBitExactly)
{
    std::mt19937 gen(7);
    for (const auto &s : kShapes) {
        Tensor a({s.m, s.k}), b({s.k, s.n}), bias({s.n});
        fillRandom(a, gen);
        fillRandom(b, gen);
        fillRandom(bias, gen);
        Tensor got, want;
        ops::matmulBias(a, b, bias, got);
        ref::matmulBiasRef(a, b, bias, want);
        EXPECT_TRUE(bitEqual(got, want))
            << "matmulBias m=" << s.m << " k=" << s.k << " n=" << s.n;
    }
}

TEST(KernelEquivalence, MatmulBiasMatchesSeparateBiasPass)
{
    // The fused epilogue must equal matmul followed by a bias add: the
    // bias joins after the k-chain, never as the accumulator seed.
    std::mt19937 gen(11);
    for (const auto &s : kShapes) {
        Tensor a({s.m, s.k}), b({s.k, s.n}), bias({s.n});
        fillRandom(a, gen);
        fillRandom(b, gen);
        fillRandom(bias, gen);
        Tensor fused, separate;
        ops::matmulBias(a, b, bias, fused);
        ops::matmul(a, b, separate);
        for (std::size_t r = 0; r < s.m; ++r)
            for (std::size_t c = 0; c < s.n; ++c)
                separate.at(r, c) += bias[c];
        EXPECT_TRUE(bitEqual(fused, separate))
            << "fused bias m=" << s.m << " k=" << s.k << " n=" << s.n;
    }
}

TEST(KernelEquivalence, MatmulAccumMatchesReferenceBitExactly)
{
    std::mt19937 gen(13);
    for (const auto &s : kShapes) {
        Tensor a({s.m, s.k}), b({s.k, s.n});
        fillRandom(a, gen);
        fillRandom(b, gen);
        Tensor got({s.m, s.n});
        fillRandom(got, gen);
        Tensor want = got;
        ops::matmulAccum(a, b, got);
        ref::matmulAccumRef(a, b, want);
        EXPECT_TRUE(bitEqual(got, want))
            << "matmulAccum m=" << s.m << " k=" << s.k << " n=" << s.n;
    }
}

TEST(KernelEquivalence, MatmulTransAMatchesReferenceBitExactly)
{
    std::mt19937 gen(17);
    for (const auto &s : kShapes) {
        Tensor a({s.k, s.m}), b({s.k, s.n});
        fillRandom(a, gen);
        fillRandom(b, gen);
        Tensor got, want;
        ops::matmulTransA(a, b, got);
        ref::matmulTransARef(a, b, want);
        EXPECT_TRUE(bitEqual(got, want))
            << "matmulTransA m=" << s.m << " k=" << s.k << " n=" << s.n;
    }
}

TEST(KernelEquivalence, MatmulTransBMatchesReferenceBitExactly)
{
    std::mt19937 gen(19);
    for (const auto &s : kShapes) {
        Tensor a({s.m, s.k}), b({s.n, s.k});
        fillRandom(a, gen);
        fillRandom(b, gen);
        Tensor got, want;
        ops::matmulTransB(a, b, got);
        ref::matmulTransBRef(a, b, want);
        EXPECT_TRUE(bitEqual(got, want))
            << "matmulTransB m=" << s.m << " k=" << s.k << " n=" << s.n;
    }
}

TEST(KernelEquivalence, NonFiniteInputsMatchReferenceBitExactly)
{
    // Sprinkle Inf/NaN into A and B: the blocked kernels run the same
    // multiply-add chain as the reference, so even non-finite results must
    // agree bit for bit.
    std::mt19937 gen(23);
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    for (const auto &s : kShapes) {
        Tensor a({s.m, s.k}), b({s.k, s.n});
        fillRandom(a, gen);
        fillRandom(b, gen);
        a[0] = inf;
        b[s.k * s.n / 2] = nan;
        if (s.k > 1) {
            a[s.k - 1] = 0.0f;
            b[(s.k - 1) * s.n] = inf;
        }
        Tensor got, want;
        ops::matmul(a, b, got);
        ref::matmulRef(a, b, want);
        EXPECT_TRUE(bitEqual(got, want))
            << "non-finite matmul m=" << s.m << " k=" << s.k
            << " n=" << s.n;
    }
}

TEST(KernelNonFinite, AccumPropagatesZeroTimesInfAsNaN)
{
    // Regression for the old `av == 0.0f` skip in matmulAccum: a zero
    // activation against an Inf weight must produce NaN, not leave the
    // accumulator untouched.
    Tensor a({1, 1});
    Tensor b({1, 1});
    Tensor c({1, 1});
    a[0] = 0.0f;
    b[0] = std::numeric_limits<float>::infinity();
    c[0] = 5.0f;
    ops::matmulAccum(a, b, c);
    EXPECT_TRUE(std::isnan(c[0]))
        << "0 * Inf was masked in matmulAccum: " << c[0];
}

TEST(KernelNonFinite, TransAPropagatesZeroTimesInfAsNaN)
{
    // Same regression for the old skip in matmulTransA (the dW GEMM): a
    // zero activation column against an Inf upstream gradient must yield a
    // NaN weight gradient so divergence is visible in the update.
    Tensor a({1, 1});
    Tensor b({1, 1});
    Tensor c;
    a[0] = 0.0f;
    b[0] = std::numeric_limits<float>::infinity();
    ops::matmulTransA(a, b, c);
    ASSERT_EQ(c.numel(), 1u);
    EXPECT_TRUE(std::isnan(c[0]))
        << "0 * Inf was masked in matmulTransA: " << c[0];
}

struct ConvCase {
    std::size_t n, c, h, w, k, stride, pad;
};

const ConvCase kConvCases[] = {
    {1, 1, 1, 1, 1, 1, 0},  // degenerate
    {2, 3, 5, 5, 1, 1, 0},  // 1x1 fast path (MobileNet pointwise)
    {2, 3, 5, 5, 1, 2, 1},  // 1x1 but NOT the fast path (stride/pad)
    {1, 2, 7, 9, 3, 1, 1},  // interior strips + clipped borders
    {2, 1, 8, 8, 3, 2, 1},  // strided
    {1, 3, 9, 7, 4, 3, 2},  // even kernel, stride 3, pad 2
    {3, 2, 6, 6, 2, 2, 0},  // no padding, even kernel
    {1, 1, 5, 5, 3, 1, 2},  // pad larger than usual: full border rows
    {2, 2, 16, 16, 3, 2, 1}, // the zoo's MobileNet stem geometry
};

TEST(KernelEquivalence, Im2colMatchesReferenceBitExactly)
{
    std::mt19937 gen(29);
    for (const auto &cc : kConvCases) {
        Tensor in({cc.n, cc.c, cc.h, cc.w});
        fillRandom(in, gen);
        Tensor got, want;
        ops::im2col(in, cc.k, cc.k, cc.stride, cc.pad, got);
        ref::im2colRef(in, cc.k, cc.k, cc.stride, cc.pad, want);
        EXPECT_TRUE(bitEqual(got, want))
            << "im2col n=" << cc.n << " c=" << cc.c << " h=" << cc.h
            << " w=" << cc.w << " k=" << cc.k << " s=" << cc.stride
            << " p=" << cc.pad;
    }
}

TEST(KernelEquivalence, Col2imMatchesReferenceBitExactly)
{
    std::mt19937 gen(31);
    for (const auto &cc : kConvCases) {
        const std::size_t oh =
            ops::convOutExtent(cc.h, cc.k, cc.stride, cc.pad);
        const std::size_t ow =
            ops::convOutExtent(cc.w, cc.k, cc.stride, cc.pad);
        Tensor cols({cc.n * oh * ow, cc.c * cc.k * cc.k});
        fillRandom(cols, gen);
        Tensor got({cc.n, cc.c, cc.h, cc.w});
        Tensor want({cc.n, cc.c, cc.h, cc.w});
        ops::col2im(cols, cc.k, cc.k, cc.stride, cc.pad, got);
        ref::col2imRef(cols, cc.k, cc.k, cc.stride, cc.pad, want);
        EXPECT_TRUE(bitEqual(got, want))
            << "col2im n=" << cc.n << " c=" << cc.c << " h=" << cc.h
            << " w=" << cc.w << " k=" << cc.k << " s=" << cc.stride
            << " p=" << cc.pad;
    }
}

TEST(KernelEquivalence, Col2imIsAdjointOfIm2col)
{
    // <im2col(x), y> == <x, col2im(y)> — the transforms are transposes of
    // the same linear map, which pins the scatter geometry independently
    // of the reference implementation. Double accumulation, small
    // tolerance (the two dot products associate differently).
    std::mt19937 gen(37);
    for (const auto &cc : kConvCases) {
        const std::size_t oh =
            ops::convOutExtent(cc.h, cc.k, cc.stride, cc.pad);
        const std::size_t ow =
            ops::convOutExtent(cc.w, cc.k, cc.stride, cc.pad);
        Tensor x({cc.n, cc.c, cc.h, cc.w});
        Tensor y({cc.n * oh * ow, cc.c * cc.k * cc.k});
        fillRandom(x, gen);
        fillRandom(y, gen);
        Tensor cols;
        ops::im2col(x, cc.k, cc.k, cc.stride, cc.pad, cols);
        Tensor xg({cc.n, cc.c, cc.h, cc.w});
        ops::col2im(y, cc.k, cc.k, cc.stride, cc.pad, xg);
        double lhs = 0.0, rhs = 0.0;
        for (std::size_t i = 0; i < cols.numel(); ++i)
            lhs += static_cast<double>(cols[i]) * y[i];
        for (std::size_t i = 0; i < x.numel(); ++i)
            rhs += static_cast<double>(x[i]) * xg[i];
        EXPECT_NEAR(lhs, rhs, 1e-3 * (std::abs(lhs) + 1.0))
            << "adjoint n=" << cc.n << " c=" << cc.c << " k=" << cc.k
            << " s=" << cc.stride << " p=" << cc.pad;
    }
}

} // namespace
