/**
 * @file
 * Unit tests for util/logging: threshold filtering, message formatting,
 * fatal(), and the JsonlTraceWriter warn-once path that rides on it.
 */

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>

#include "fl/round/trace_writer.h"
#include "util/logging.h"

namespace fedgpo {
namespace util {
namespace {

/** Capture std::cerr for the duration of one test body. */
class CerrCapture
{
  public:
    CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
    ~CerrCapture() { std::cerr.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

  private:
    std::ostringstream buffer_;
    std::streambuf *old_;
};

/** Restore the global log level after each test. */
class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { prev_ = logLevel(); }
    void TearDown() override { setLogLevel(prev_); }

  private:
    LogLevel prev_;
};

TEST_F(LoggingTest, DefaultsDropInfoAndDebug)
{
    setLogLevel(LogLevel::Warn);
    CerrCapture cap;
    logDebug("quiet-debug");
    logInfo("quiet-info");
    logWarn("loud-warn");
    EXPECT_EQ(cap.text().find("quiet-debug"), std::string::npos);
    EXPECT_EQ(cap.text().find("quiet-info"), std::string::npos);
    EXPECT_NE(cap.text().find("loud-warn"), std::string::npos);
}

TEST_F(LoggingTest, MessagesCarryLevelTag)
{
    setLogLevel(LogLevel::Debug);
    CerrCapture cap;
    logDebug("d-msg");
    logInfo("i-msg");
    logWarn("w-msg");
    logError("e-msg");
    const std::string text = cap.text();
    EXPECT_NE(text.find("d-msg"), std::string::npos);
    EXPECT_NE(text.find("i-msg"), std::string::npos);
    EXPECT_NE(text.find("w-msg"), std::string::npos);
    EXPECT_NE(text.find("e-msg"), std::string::npos);
    // The formatter brands every line with the library prefix.
    EXPECT_NE(text.find("fedgpo"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything)
{
    setLogLevel(LogLevel::Off);
    CerrCapture cap;
    logDebug("a");
    logInfo("b");
    logWarn("c");
    logError("d");
    EXPECT_TRUE(cap.text().empty());
}

TEST_F(LoggingTest, ThresholdIsReadable)
{
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
}

TEST_F(LoggingTest, FatalThrowsWithMessage)
{
    setLogLevel(LogLevel::Off); // the throw must not depend on the level
    try {
        fatal("bad config value");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad config value"),
                  std::string::npos);
    }
}

TEST_F(LoggingTest, TraceWriterWarnsOnceOnUnopenablePath)
{
    setLogLevel(LogLevel::Warn);
    CerrCapture cap;
    // A directory that does not exist: the open fails, the writer keeps
    // running, and exactly one warning names the path.
    fl::round::JsonlTraceWriter writer(
        "/nonexistent-dir-for-logging-test/trace.jsonl");
    EXPECT_FALSE(writer.ok());

    // Writing rounds through the broken writer must neither crash nor
    // warn again.
    fl::RoundResult result;
    result.round = 1;
    writer.onRoundEnd(result);
    result.round = 2;
    writer.onRoundEnd(result);

    const std::string text = cap.text();
    const auto first = text.find("trace.jsonl");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("trace.jsonl", first + 1), std::string::npos)
        << "warning repeated:\n"
        << text;
}

} // namespace
} // namespace util
} // namespace fedgpo
