/**
 * @file
 * Unit tests for the Dataset container and the synthetic data
 * generators.
 */

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fedgpo {
namespace data {
namespace {

using tensor::Shape;
using tensor::Tensor;

Dataset
tinyDataset()
{
    Tensor feat({4, 2}, std::vector<float>{0, 1, 2, 3, 4, 5, 6, 7});
    return Dataset(std::move(feat), {0, 1, 0, 2}, 3);
}

TEST(Dataset, BasicAccessors)
{
    Dataset ds = tinyDataset();
    EXPECT_EQ(ds.size(), 4u);
    EXPECT_EQ(ds.numClasses(), 3u);
    EXPECT_EQ(ds.sampleShape(), (Shape{2}));
    EXPECT_EQ(ds.label(3), 2);
}

TEST(Dataset, GatherCopiesRows)
{
    Dataset ds = tinyDataset();
    Tensor batch;
    std::vector<int> labels;
    ds.gather({2, 0}, batch, labels);
    ASSERT_EQ(batch.shape(), (Shape{2, 2}));
    EXPECT_EQ(batch[0], 4.0f);
    EXPECT_EQ(batch[1], 5.0f);
    EXPECT_EQ(batch[2], 0.0f);
    EXPECT_EQ(labels, (std::vector<int>{0, 0}));
}

TEST(Dataset, GatherReusesBuffer)
{
    Dataset ds = tinyDataset();
    Tensor batch;
    std::vector<int> labels;
    ds.gather({0, 1}, batch, labels);
    const float *ptr = batch.data();
    ds.gather({2, 3}, batch, labels);
    EXPECT_EQ(batch.data(), ptr) << "same-shape gather must not realloc";
}

TEST(Dataset, ClassHistogramAndPresence)
{
    Dataset ds = tinyDataset();
    auto hist = ds.classHistogram({0, 1, 2, 3});
    EXPECT_EQ(hist, (std::vector<std::size_t>{2, 1, 1}));
    EXPECT_EQ(ds.classesPresent({0, 2}), 1u);
    EXPECT_EQ(ds.classesPresent({0, 1, 3}), 3u);
    EXPECT_EQ(ds.classesPresent({}), 0u);
}

TEST(Dataset, RejectsMismatchedLabels)
{
    Tensor feat({2, 2});
    EXPECT_THROW(Dataset(std::move(feat), {0}, 2), util::FatalError);
}

TEST(SyntheticMnist, ShapeAndLabels)
{
    util::Rng rng(1);
    Dataset ds = makeSyntheticMnist(100, rng);
    EXPECT_EQ(ds.size(), 100u);
    EXPECT_EQ(ds.numClasses(), 10u);
    EXPECT_EQ(ds.sampleShape(), (Shape{1, 16, 16}));
    for (std::size_t i = 0; i < ds.size(); ++i) {
        EXPECT_GE(ds.label(i), 0);
        EXPECT_LT(ds.label(i), 10);
    }
}

TEST(SyntheticMnist, AllClassesRepresented)
{
    util::Rng rng(2);
    Dataset ds = makeSyntheticMnist(500, rng);
    std::vector<std::size_t> all(ds.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    EXPECT_EQ(ds.classesPresent(all), 10u);
}

TEST(SyntheticMnist, DeterministicGivenSeed)
{
    util::Rng a(3), b(3);
    Dataset da = makeSyntheticMnist(20, a);
    Dataset db = makeSyntheticMnist(20, b);
    Tensor ba, bb;
    std::vector<int> la, lb;
    da.gather({0, 5, 19}, ba, la);
    db.gather({0, 5, 19}, bb, lb);
    EXPECT_EQ(la, lb);
    for (std::size_t i = 0; i < ba.numel(); ++i)
        EXPECT_EQ(ba[i], bb[i]);
}

TEST(SyntheticMnist, ClassesAreSeparable)
{
    // Same-class samples must be closer (on average) than cross-class
    // samples, otherwise nothing is learnable.
    util::Rng rng(4);
    Dataset ds = makeSyntheticMnist(300, rng);
    Tensor a, b;
    std::vector<int> la, lb;
    double same = 0.0, diff = 0.0;
    std::size_t n_same = 0, n_diff = 0;
    for (std::size_t i = 0; i + 1 < 200; i += 2) {
        ds.gather({i}, a, la);
        ds.gather({i + 1}, b, lb);
        double d2 = 0.0;
        for (std::size_t j = 0; j < a.numel(); ++j) {
            const double d = a[j] - b[j];
            d2 += d * d;
        }
        if (la[0] == lb[0]) {
            same += d2;
            ++n_same;
        } else {
            diff += d2;
            ++n_diff;
        }
    }
    ASSERT_GT(n_same, 0u);
    ASSERT_GT(n_diff, 0u);
    EXPECT_LT(same / n_same, diff / n_diff);
}

TEST(SyntheticImageNet, ShapeAndClasses)
{
    util::Rng rng(5);
    Dataset ds = makeSyntheticImageNet(60, rng);
    EXPECT_EQ(ds.numClasses(), 20u);
    EXPECT_EQ(ds.sampleShape(), (Shape{3, 16, 16}));
}

TEST(SyntheticShakespeare, OneHotWindows)
{
    util::Rng rng(6);
    Dataset ds = makeSyntheticShakespeare(50, rng);
    EXPECT_EQ(ds.numClasses(), models::lstmVocab());
    EXPECT_EQ(ds.sampleShape(),
              (Shape{models::lstmSeqLen(), models::lstmVocab()}));
    Tensor batch;
    std::vector<int> labels;
    ds.gather({0, 10}, batch, labels);
    // Every timestep row must be exactly one-hot.
    const std::size_t T = models::lstmSeqLen();
    const std::size_t V = models::lstmVocab();
    for (std::size_t s = 0; s < 2; ++s) {
        for (std::size_t t = 0; t < T; ++t) {
            double row_sum = 0.0;
            for (std::size_t v = 0; v < V; ++v) {
                const float val = batch[(s * T + t) * V + v];
                EXPECT_TRUE(val == 0.0f || val == 1.0f);
                row_sum += val;
            }
            EXPECT_DOUBLE_EQ(row_sum, 1.0);
        }
    }
}

TEST(SyntheticShakespeare, ConsecutiveWindowsOverlap)
{
    // Window i+1 is window i shifted by one character, so the stream is
    // genuinely sequential.
    util::Rng rng(7);
    Dataset ds = makeSyntheticShakespeare(10, rng);
    Tensor b0, b1;
    std::vector<int> l0, l1;
    ds.gather({0}, b0, l0);
    ds.gather({1}, b1, l1);
    const std::size_t T = models::lstmSeqLen();
    const std::size_t V = models::lstmVocab();
    // Timestep t of window 1 equals timestep t+1 of window 0.
    for (std::size_t t = 0; t + 1 < T; ++t)
        for (std::size_t v = 0; v < V; ++v)
            EXPECT_EQ(b1[t * V + v], b0[(t + 1) * V + v]);
}

} // namespace
} // namespace data
} // namespace fedgpo
