/**
 * @file
 * Unit tests for the deterministic RNG and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace fedgpo {
namespace util {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(123), b(124);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng a(9), b(9);
    Rng ca = a.split(5);
    Rng cb = b.split(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, SplitChainGivesCoordinateAddressedStreams)
{
    // The runtime derives per-(round, client) training streams as
    // Rng(seed).split(round).split(client): the chain must be a pure
    // function of its coordinates...
    auto stream = [](std::uint64_t seed, std::uint64_t round,
                     std::uint64_t client) {
        Rng root(seed);
        Rng round_stream = root.split(round);
        return round_stream.split(client);
    };
    Rng a = stream(42, 3, 7);
    Rng b = stream(42, 3, 7);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next(), b.next());

    // ...and distinct coordinates must give decorrelated streams.
    for (auto other : {stream(42, 3, 8), stream(42, 4, 7), stream(43, 3, 7)}) {
        Rng fresh = stream(42, 3, 7);
        int equal = 0;
        for (int i = 0; i < 100; ++i)
            if (fresh.next() == other.next())
                ++equal;
        EXPECT_LT(equal, 3);
    }
}

TEST(Rng, SplitDoesNotDisturbSiblingStreams)
{
    // Consuming one child stream must not change what a sibling split
    // from the same parent state produces — the property that lets
    // workers consume their streams concurrently in any order.
    Rng parent1(7);
    Rng c1a = parent1.split(1);
    (void)c1a; // split to advance the parent exactly as below; never drawn
    Rng c1b = parent1.split(2);
    std::vector<std::uint64_t> b_alone;
    for (int i = 0; i < 20; ++i)
        b_alone.push_back(c1b.next());

    Rng parent2(7);
    Rng c2a = parent2.split(1);
    for (int i = 0; i < 1000; ++i)
        c2a.next(); // burn sibling a heavily first
    Rng c2b = parent2.split(2);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(c2b.next(), b_alone[static_cast<std::size_t>(i)]);
}

TEST(Rng, SplitChildrenIndependentOfTag)
{
    Rng parent(9);
    Rng c1 = parent.split(1);
    Rng parent2(9);
    Rng c2 = parent2.split(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (c1.next() == c2.next())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(2);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(-2, 3);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 3);
        saw_lo |= v == -2;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(4);
    double sum = 0.0, sum2 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(6);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GammaMeanEqualsShape)
{
    Rng rng(7);
    for (double shape : {0.5, 1.0, 3.0}) {
        double sum = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            sum += rng.gamma(shape);
        EXPECT_NEAR(sum / n, shape, shape * 0.05) << "shape=" << shape;
    }
}

TEST(Rng, GammaRejectsNonPositiveShape)
{
    Rng rng(8);
    EXPECT_THROW(rng.gamma(0.0), std::invalid_argument);
    EXPECT_THROW(rng.gamma(-1.0), std::invalid_argument);
}

TEST(Rng, DirichletSumsToOne)
{
    Rng rng(9);
    for (double alpha : {0.1, 1.0, 10.0}) {
        auto v = rng.dirichlet(alpha, 8);
        ASSERT_EQ(v.size(), 8u);
        double total = 0.0;
        for (double x : v) {
            EXPECT_GE(x, 0.0);
            total += x;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(Rng, DirichletLowAlphaIsSkewed)
{
    Rng rng(10);
    // With alpha = 0.1 the max coordinate should usually dominate.
    int dominated = 0;
    for (int i = 0; i < 200; ++i) {
        auto v = rng.dirichlet(0.1, 10);
        double mx = *std::max_element(v.begin(), v.end());
        if (mx > 0.5)
            ++dominated;
    }
    EXPECT_GT(dominated, 120);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng rng(11);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.categorical(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsZeroMass)
{
    Rng rng(12);
    std::vector<double> w = {0.0, 0.0};
    EXPECT_THROW(rng.categorical(w), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(13);
    auto s = rng.sampleWithoutReplacement(10, 20);
    ASSERT_EQ(s.size(), 10u);
    std::sort(s.begin(), s.end());
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    for (auto idx : s)
        EXPECT_LT(idx, 20u);
}

TEST(Rng, SampleWithoutReplacementFullPool)
{
    Rng rng(14);
    auto s = rng.sampleWithoutReplacement(5, 5);
    std::sort(s.begin(), s.end());
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(s[i], i);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(15);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

} // namespace
} // namespace util
} // namespace fedgpo
