/**
 * @file
 * Integration tests of the FedAvg simulator: selection, aggregation
 * algebra, straggler handling, energy bookkeeping (Eqs. 4-6), and
 * determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fl/simulator.h"
#include "util/logging.h"
#include "optim/fixed.h"

namespace fedgpo {
namespace fl {
namespace {

FlConfig
smallConfig()
{
    FlConfig config;
    config.workload = models::Workload::CnnMnist;
    config.n_devices = 12;
    config.train_samples = 240;
    config.test_samples = 80;
    config.seed = 5;
    return config;
}

TEST(Simulator, FleetAndModelSetup)
{
    FlSimulator sim(smallConfig());
    EXPECT_EQ(sim.numDevices(), 12u);
    EXPECT_GT(sim.trainFlopsPerSample(), 0u);
    EXPECT_GT(sim.paramBytes(), 0u);
    EXPECT_EQ(sim.census().conv, 2u);
    EXPECT_EQ(sim.census().dense, 2u);
    // Every device owns a non-empty shard.
    for (std::size_t i = 0; i < sim.numDevices(); ++i)
        EXPECT_FALSE(sim.client(i).shard().empty());
}

TEST(Simulator, RoundWithParamsRunsAndAccounts)
{
    FlSimulator sim(smallConfig());
    RoundResult r = sim.runRoundWithParams(GlobalParams{8, 2, 5});
    EXPECT_EQ(r.round, 1);
    EXPECT_EQ(r.participants.size(), 5u);
    EXPECT_GT(r.round_time, 0.0);
    EXPECT_GT(r.energy_participants, 0.0);
    EXPECT_GT(r.energy_idle, 0.0);
    EXPECT_NEAR(r.energy_total, r.energy_participants + r.energy_idle,
                1e-9);
    EXPECT_GE(r.test_accuracy, 0.0);
    EXPECT_LE(r.test_accuracy, 1.0);
}

TEST(Simulator, KClampedToFleet)
{
    FlSimulator sim(smallConfig());
    RoundResult r = sim.runRoundWithParams(GlobalParams{8, 1, 100});
    EXPECT_EQ(r.participants.size(), sim.numDevices());
}

TEST(Simulator, RoundTimeIsMaxOfKeptParticipants)
{
    FlSimulator sim(smallConfig());
    RoundResult r = sim.runRoundWithParams(GlobalParams{8, 2, 6});
    double max_kept = 0.0;
    for (const auto &p : r.participants)
        if (!p.dropped)
            max_kept = std::max(max_kept, p.cost.t_round);
    EXPECT_GE(r.round_time + 1e-9, max_kept);
}

TEST(Simulator, AccuracyImprovesOverRounds)
{
    FlSimulator sim(smallConfig());
    double first = 0.0, last = 0.0;
    for (int i = 0; i < 8; ++i) {
        RoundResult r = sim.runRoundWithParams(GlobalParams{8, 5, 6});
        if (i == 0)
            first = r.test_accuracy;
        last = r.test_accuracy;
    }
    EXPECT_GT(last, first + 0.2) << "FedAvg must actually learn";
    EXPECT_GT(last, 0.7);
}

TEST(Simulator, DeterministicGivenSeed)
{
    FlSimulator a(smallConfig()), b(smallConfig());
    for (int i = 0; i < 3; ++i) {
        RoundResult ra = a.runRoundWithParams(GlobalParams{8, 2, 5});
        RoundResult rb = b.runRoundWithParams(GlobalParams{8, 2, 5});
        EXPECT_DOUBLE_EQ(ra.test_accuracy, rb.test_accuracy);
        EXPECT_DOUBLE_EQ(ra.energy_total, rb.energy_total);
        EXPECT_DOUBLE_EQ(ra.round_time, rb.round_time);
    }
}

TEST(Simulator, DifferentSeedsDiffer)
{
    FlConfig c1 = smallConfig();
    FlConfig c2 = smallConfig();
    c2.seed = 99;
    FlSimulator a(c1), b(c2);
    RoundResult ra = a.runRoundWithParams(GlobalParams{8, 2, 5});
    RoundResult rb = b.runRoundWithParams(GlobalParams{8, 2, 5});
    EXPECT_NE(ra.energy_total, rb.energy_total);
}

TEST(Simulator, StragglersDroppedUnderHarshDeadline)
{
    FlConfig config = smallConfig();
    config.deadline_factor = 1.01;  // anything above the median is out
    config.interference = true;     // widen the spread
    FlSimulator sim(config);
    std::size_t total_dropped = 0;
    for (int i = 0; i < 5; ++i) {
        RoundResult r = sim.runRoundWithParams(GlobalParams{8, 5, 8});
        total_dropped += r.droppedCount();
        EXPECT_EQ(r.dropped_diverged, 0u);
        EXPECT_EQ(r.dropped_straggler + r.dropped_diverged,
                  r.droppedCount());
        for (const auto &p : r.participants) {
            if (p.dropped) {
                // Dropped devices still burned energy up to the deadline,
                // but never accrue wait energy (they left at the cutoff).
                EXPECT_EQ(p.drop_reason, DropReason::Straggler);
                EXPECT_GT(p.cost.e_total, 0.0);
                EXPECT_EQ(p.cost.e_wait, 0.0);
                EXPECT_DOUBLE_EQ(p.cost.e_total,
                                 p.cost.e_comp + p.cost.e_comm);
            } else {
                EXPECT_EQ(p.drop_reason, DropReason::None);
            }
        }
    }
    EXPECT_GT(total_dropped, 0u);
}

TEST(Simulator, NoDropsWithGenerousDeadlineAndNoVariance)
{
    FlConfig config = smallConfig();
    config.deadline_factor = 50.0;
    FlSimulator sim(config);
    for (int i = 0; i < 3; ++i) {
        RoundResult r = sim.runRoundWithParams(GlobalParams{8, 2, 8});
        EXPECT_EQ(r.droppedCount(), 0u);
    }
}

TEST(Simulator, AggregationIsSampleWeightedAverage)
{
    // With every client dropped, the global model must not move.
    FlConfig config = smallConfig();
    config.deadline_factor = 1e-9;  // drop everyone
    FlSimulator sim(config);
    auto before = sim.globalModel().saveParams();
    RoundResult r = sim.runRoundWithParams(GlobalParams{8, 1, 6});
    EXPECT_EQ(r.droppedCount(), r.participants.size());
    EXPECT_EQ(r.dropped_straggler, r.participants.size());
    EXPECT_EQ(r.samples_aggregated, 0u);
    auto after = sim.globalModel().saveParams();
    EXPECT_EQ(before, after);
}

TEST(Simulator, PredictedRoundTimePositiveAndParamSensitive)
{
    FlSimulator sim(smallConfig());
    sim.runRoundWithParams(GlobalParams{8, 1, 4});  // populate states
    const double t_small = sim.predictedRoundTime(0, PerDeviceParams{8, 1});
    const double t_big = sim.predictedRoundTime(0, PerDeviceParams{8, 20});
    EXPECT_GT(t_small, 0.0);
    EXPECT_GT(t_big, 5.0 * t_small);
}

TEST(Simulator, EvaluateGlobalConsistentWithReportedAccuracy)
{
    FlSimulator sim(smallConfig());
    RoundResult r = sim.runRoundWithParams(GlobalParams{8, 2, 5});
    auto eval = sim.evaluateGlobal();
    EXPECT_NEAR(eval.accuracy, r.test_accuracy, 1e-9);
}

TEST(Simulator, NonIidShardsHoldFewerClasses)
{
    FlConfig iid = smallConfig();
    FlConfig non = smallConfig();
    non.distribution = data::Distribution::NonIid;
    FlSimulator a(iid), b(non);
    // Compare average classes-present across the fleet via observations.
    auto count = [](FlSimulator &sim) {
        RoundResult r = sim.runRoundWithParams(GlobalParams{8, 1, 12});
        (void)r;
        return 0;
    };
    count(a);
    count(b);
    // Direct shard inspection:
    double iid_avg = 0.0, non_avg = 0.0;
    for (std::size_t i = 0; i < a.numDevices(); ++i)
        iid_avg += static_cast<double>(a.client(i).shardSize());
    for (std::size_t i = 0; i < b.numDevices(); ++i)
        non_avg += static_cast<double>(b.client(i).shardSize());
    // Same total data regardless of distribution.
    EXPECT_EQ(iid_avg, non_avg);
}

TEST(Simulator, PolicyDrivenRoundUsesPolicyAssignments)
{
    FlSimulator sim(smallConfig());
    optim::FixedOptimizer policy(GlobalParams{4, 2, 3});
    RoundResult r = sim.runRound(policy);
    EXPECT_EQ(r.participants.size(), 3u);
    for (const auto &p : r.participants) {
        EXPECT_EQ(p.params.batch, 4);
        EXPECT_EQ(p.params.epochs, 2);
    }
}

TEST(Simulator, RejectsZeroDevices)
{
    FlConfig config = smallConfig();
    config.n_devices = 0;
    EXPECT_THROW(FlSimulator sim(config), util::FatalError);
}

} // namespace
} // namespace fl
} // namespace fedgpo
