/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace fedgpo {
namespace util {
namespace {

TEST(RunningStat, EmptyIsNeutral)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, MatchesClosedForm)
{
    RunningStat s;
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double x : xs)
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStatMerge, MatchesBatchAdd)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    RunningStat whole;
    for (double x : xs)
        whole.add(x);

    RunningStat a, b;
    for (std::size_t i = 0; i < xs.size(); ++i)
        (i < 3 ? a : b).add(xs[i]);
    a.merge(b);

    EXPECT_EQ(a.count(), whole.count());
    EXPECT_DOUBLE_EQ(a.mean(), whole.mean());
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
    EXPECT_EQ(a.min(), whole.min());
    EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStatMerge, EmptyOperands)
{
    RunningStat a;
    a.add(3.0);
    a.add(5.0);
    const RunningStat empty;

    RunningStat left = a;
    left.merge(empty); // merging empty changes nothing
    EXPECT_EQ(left.count(), 2u);
    EXPECT_DOUBLE_EQ(left.mean(), 4.0);

    RunningStat right;
    right.merge(a); // merging into empty copies
    EXPECT_EQ(right.count(), 2u);
    EXPECT_DOUBLE_EQ(right.mean(), 4.0);
    EXPECT_EQ(right.min(), 3.0);
    EXPECT_EQ(right.max(), 5.0);

    RunningStat both;
    both.merge(empty); // empty + empty stays empty
    EXPECT_EQ(both.count(), 0u);
    EXPECT_EQ(both.mean(), 0.0);
}

TEST(RunningStatMerge, MinMaxPropagate)
{
    RunningStat a, b;
    a.add(10.0);
    a.add(20.0);
    b.add(-5.0);
    b.add(30.0);
    a.merge(b);
    EXPECT_EQ(a.min(), -5.0);
    EXPECT_EQ(a.max(), 30.0);
    EXPECT_EQ(a.count(), 4u);
}

TEST(RunningStatMerge, ManyShardsMatchSingleStream)
{
    RunningStat whole, merged;
    std::vector<RunningStat> shards(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = std::sin(i * 0.37) * 50.0 + i * 0.01;
        whole.add(x);
        shards[static_cast<std::size_t>(i) % shards.size()].add(x);
    }
    for (const RunningStat &s : shards)
        merged.merge(s);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
}

TEST(Quantile, MedianOfOddSample)
{
    EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenOrderStats)
{
    EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, Extremes)
{
    std::vector<double> v = {5.0, 1.0, 9.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, SingleElement)
{
    EXPECT_DOUBLE_EQ(quantile({7.0}, 0.9), 7.0);
}

TEST(Mean, Basic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Geomean, Basic)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(TrailingMean, WindowedAndClamped)
{
    std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(trailingMean(v, 2), 3.5);
    EXPECT_DOUBLE_EQ(trailingMean(v, 10), 2.5);
    EXPECT_DOUBLE_EQ(trailingMean({}, 3), 0.0);
}

} // namespace
} // namespace util
} // namespace fedgpo
