/**
 * @file
 * Tests for the FedGPO core extensions: 1-d k-means state clustering,
 * Q-table (de)serialization, policy state save/load, and the per-device
 * Q-table variant of footnote 2.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/clustering.h"
#include "core/fedgpo.h"
#include "util/logging.h"

namespace fedgpo {
namespace core {
namespace {

TEST(Kmeans1d, SeparatesObviousClusters)
{
    std::vector<double> values;
    util::Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        values.push_back(rng.gaussian(10.0, 0.5));
        values.push_back(rng.gaussian(50.0, 0.5));
        values.push_back(rng.gaussian(90.0, 0.5));
    }
    auto c = kmeans1d(values, 3);
    ASSERT_EQ(c.centroids.size(), 3u);
    EXPECT_NEAR(c.centroids[0], 10.0, 1.0);
    EXPECT_NEAR(c.centroids[1], 50.0, 1.0);
    EXPECT_NEAR(c.centroids[2], 90.0, 1.0);
    ASSERT_EQ(c.boundaries.size(), 2u);
    EXPECT_GT(c.boundaries[0], 10.0);
    EXPECT_LT(c.boundaries[0], 50.0);
}

TEST(Kmeans1d, CentroidsAndBoundariesSorted)
{
    std::vector<double> values = {5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
    auto c = kmeans1d(values, 4);
    for (std::size_t i = 1; i < c.centroids.size(); ++i)
        EXPECT_LE(c.centroids[i - 1], c.centroids[i]);
    for (std::size_t i = 1; i < c.boundaries.size(); ++i)
        EXPECT_LE(c.boundaries[i - 1], c.boundaries[i]);
}

TEST(Kmeans1d, SingleClusterIsMean)
{
    std::vector<double> values = {1.0, 2.0, 3.0};
    auto c = kmeans1d(values, 1);
    ASSERT_EQ(c.centroids.size(), 1u);
    EXPECT_NEAR(c.centroids[0], 2.0, 1e-9);
    EXPECT_TRUE(c.boundaries.empty());
}

TEST(Kmeans1d, Deterministic)
{
    std::vector<double> values;
    util::Rng rng(2);
    for (int i = 0; i < 200; ++i)
        values.push_back(rng.uniform(0.0, 100.0));
    auto a = kmeans1d(values, 4);
    auto b = kmeans1d(values, 4);
    EXPECT_EQ(a.centroids, b.centroids);
}

TEST(Kmeans1d, RejectsBadK)
{
    std::vector<double> values = {1.0, 2.0};
    EXPECT_THROW(kmeans1d(values, 0), util::FatalError);
    EXPECT_THROW(kmeans1d(values, 3), util::FatalError);
    EXPECT_THROW(kmeans1d({}, 1), util::FatalError);
}

TEST(Kmeans1d, BucketOfCountsBoundariesBelow)
{
    std::vector<double> boundaries = {10.0, 20.0};
    EXPECT_EQ(bucketOf(5.0, boundaries), 0u);
    EXPECT_EQ(bucketOf(15.0, boundaries), 1u);
    EXPECT_EQ(bucketOf(25.0, boundaries), 2u);
    EXPECT_EQ(bucketOf(10.0, boundaries), 0u);  // boundary is exclusive
}

TEST(Kmeans1d, CanReproduceTable1StyleBuckets)
{
    // Bandwidths drawn from the regular/bad mixture should yield a
    // boundary near the paper's 40 Mbps threshold.
    std::vector<double> bw;
    util::Rng rng(3);
    for (int i = 0; i < 300; ++i) {
        bw.push_back(rng.gaussian(85.0, 10.0));
        if (i % 3 == 0)
            bw.push_back(rng.gaussian(15.0, 8.0));
    }
    auto c = kmeans1d(bw, 2);
    ASSERT_EQ(c.boundaries.size(), 1u);
    EXPECT_GT(c.boundaries[0], 25.0);
    EXPECT_LT(c.boundaries[0], 65.0);
}

TEST(QTableSerialize, RoundTrips)
{
    util::Rng rng(4);
    QTable a(8, 5, rng, -1.0, 1.0);
    a.update(3, 2, 7.0, 3, 0.5, 0.1);
    a.update(1, 4, -2.0, 1, 0.5, 0.1);
    std::stringstream buf;
    a.serialize(buf);

    util::Rng rng2(99);
    QTable b(8, 5, rng2);
    b.deserialize(buf);
    for (std::size_t s = 0; s < 8; ++s)
        for (std::size_t act = 0; act < 5; ++act) {
            EXPECT_DOUBLE_EQ(a.q(s, act), b.q(s, act));
            EXPECT_EQ(a.visits(s, act), b.visits(s, act));
        }
}

TEST(QTableSerialize, RejectsDimensionMismatch)
{
    util::Rng rng(5);
    QTable a(4, 3, rng);
    std::stringstream buf;
    a.serialize(buf);
    QTable b(4, 4, rng);
    EXPECT_THROW(b.deserialize(buf), util::FatalError);
}

TEST(QTableSerialize, RejectsGarbage)
{
    util::Rng rng(6);
    QTable t(2, 2, rng);
    std::stringstream buf("not a qtable");
    EXPECT_THROW(t.deserialize(buf), util::FatalError);
}

nn::LayerCensus
cnnCensus()
{
    nn::LayerCensus c;
    c.conv = 2;
    c.dense = 2;
    return c;
}

fl::DeviceObservation
obsFor(std::size_t id, device::Category cat)
{
    fl::DeviceObservation obs;
    obs.client_id = id;
    obs.category = cat;
    obs.network.bandwidth_mbps = 80.0;
    obs.data_classes = 10;
    obs.total_classes = 10;
    obs.shard_size = 25;
    return obs;
}

TEST(FedGpoState, SaveLoadRoundTrips)
{
    FedGpoConfig config;
    config.seed = 7;
    FedGpo trained(config);
    // Exercise a few decisions so the tables hold learned values.
    for (int r = 0; r < 10; ++r) {
        trained.chooseClients(40);
        std::vector<fl::DeviceObservation> devices = {
            obsFor(0, device::Category::High),
            obsFor(1, device::Category::Low)};
        auto params = trained.assign(devices, cnnCensus());
        fl::RoundResult result;
        result.test_accuracy = 0.5 + 0.02 * r;
        result.energy_total = 1000.0;
        for (std::size_t i = 0; i < devices.size(); ++i) {
            fl::ClientRoundReport report;
            report.client_id = i;
            report.category = devices[i].category;
            report.params = params[i];
            report.cost.e_total = 80.0;
            report.samples = 25;
            result.participants.push_back(report);
        }
        trained.feedback(result);
    }
    std::stringstream buf;
    trained.saveState(buf);

    FedGpoConfig config2;
    config2.seed = 99;  // different init; load must overwrite it
    FedGpo restored(config2);
    restored.loadState(buf);
    for (auto cat : device::kAllCategories) {
        const auto &a = trained.categoryTable(cat);
        const auto &b = restored.categoryTable(cat);
        for (std::size_t s = 0; s < 64; ++s)
            EXPECT_DOUBLE_EQ(a.q(s, 0), b.q(s, 0));
    }
}

TEST(FedGpoPerDevice, PrivateTablesLearnIndependently)
{
    FedGpoConfig config;
    config.seed = 11;
    config.shared_tables = false;
    FedGpo policy(config);
    auto census = cnnCensus();
    // Two devices of the SAME category; rewards favor cheap actions for
    // device 0 and are neutral for device 1.
    std::vector<fl::DeviceObservation> devices = {
        obsFor(0, device::Category::Low), obsFor(1, device::Category::Low)};
    const std::size_t shared_before =
        policy.categoryTable(device::Category::Low).updates();
    for (int r = 0; r < 20; ++r) {
        policy.chooseClients(40);
        auto params = policy.assign(devices, census);
        fl::RoundResult result;
        result.test_accuracy = 0.5 + 0.01 * r;
        result.energy_total = 500.0;
        for (std::size_t i = 0; i < devices.size(); ++i) {
            fl::ClientRoundReport report;
            report.client_id = i;
            report.category = devices[i].category;
            report.params = params[i];
            report.cost.e_total = 50.0;
            report.samples = 25;
            result.participants.push_back(report);
        }
        policy.feedback(result);
    }
    // The shared category table must be untouched; memory must now count
    // two private tables on top of the shared ones.
    EXPECT_EQ(policy.categoryTable(device::Category::Low).updates(),
              shared_before);
    FedGpo shared_policy(FedGpoConfig{});
    EXPECT_GT(policy.qTableBytes(), shared_policy.qTableBytes());
}

} // namespace
} // namespace core
} // namespace fedgpo
