/**
 * @file
 * Tests for FedGPO's core machinery: the Table 2 action space, the
 * Table 1 state discretization, the Q-table (Algorithm 2), and the
 * Eq. 1 reward.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/action_space.h"
#include "core/qtable.h"
#include "core/reward.h"
#include "core/state.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fedgpo {
namespace core {
namespace {

TEST(ActionSpace, Table2Sizes)
{
    EXPECT_EQ(kBatchSet.size(), 6u);
    EXPECT_EQ(kEpochSet.size(), 5u);
    EXPECT_EQ(kClientSet.size(), 5u);
    EXPECT_EQ(kNumDeviceActions, 30u);
    EXPECT_EQ(kNumClientActions, 5u);
}

TEST(ActionSpace, DeviceActionRoundTrip)
{
    for (std::size_t a = 0; a < kNumDeviceActions; ++a) {
        auto params = deviceActionParams(a);
        EXPECT_EQ(deviceActionIndex(params), a);
    }
}

TEST(ActionSpace, DeviceActionValuesAreInTable2)
{
    std::set<int> bs(kBatchSet.begin(), kBatchSet.end());
    std::set<int> es(kEpochSet.begin(), kEpochSet.end());
    for (std::size_t a = 0; a < kNumDeviceActions; ++a) {
        auto p = deviceActionParams(a);
        EXPECT_TRUE(bs.count(p.batch));
        EXPECT_TRUE(es.count(p.epochs));
    }
}

TEST(ActionSpace, DeviceActionIndexRejectsOffGrid)
{
    EXPECT_THROW(deviceActionIndex(fl::PerDeviceParams{3, 10}),
                 util::FatalError);
    EXPECT_THROW(deviceActionIndex(fl::PerDeviceParams{8, 7}),
                 util::FatalError);
}

TEST(ActionSpace, ClientActionRoundTrip)
{
    for (std::size_t a = 0; a < kNumClientActions; ++a)
        EXPECT_EQ(clientActionIndex(clientActionValue(a)), a);
    EXPECT_THROW(clientActionIndex(7), util::FatalError);
}

TEST(ActionSpace, FullGridHas150DistinctPoints)
{
    auto all = allGlobalParams();
    EXPECT_EQ(all.size(), 150u);
    std::set<std::string> unique;
    for (const auto &p : all)
        unique.insert(p.toString());
    EXPECT_EQ(unique.size(), 150u);
}

TEST(State, ConvBucketsPerTable1)
{
    EXPECT_EQ(bucketConv(0), 0u);
    EXPECT_EQ(bucketConv(9), 0u);
    EXPECT_EQ(bucketConv(10), 1u);
    EXPECT_EQ(bucketConv(19), 1u);
    EXPECT_EQ(bucketConv(20), 2u);
    EXPECT_EQ(bucketConv(29), 2u);
    EXPECT_EQ(bucketConv(30), 3u);
    EXPECT_EQ(bucketConv(100), 3u);
}

TEST(State, FcBucketsPerTable1)
{
    EXPECT_EQ(bucketFc(0), 0u);
    EXPECT_EQ(bucketFc(9), 0u);
    EXPECT_EQ(bucketFc(10), 1u);
}

TEST(State, RcBucketsPerTable1)
{
    EXPECT_EQ(bucketRc(0), 0u);
    EXPECT_EQ(bucketRc(4), 0u);
    EXPECT_EQ(bucketRc(5), 1u);
    EXPECT_EQ(bucketRc(9), 1u);
    EXPECT_EQ(bucketRc(10), 2u);
}

TEST(State, CoUsageBucketsPerTable1)
{
    EXPECT_EQ(bucketCoUsage(0.0), 0u);
    EXPECT_EQ(bucketCoUsage(0.1), 1u);
    EXPECT_EQ(bucketCoUsage(0.249), 1u);
    EXPECT_EQ(bucketCoUsage(0.25), 2u);
    EXPECT_EQ(bucketCoUsage(0.74), 2u);
    EXPECT_EQ(bucketCoUsage(0.75), 3u);
    EXPECT_EQ(bucketCoUsage(1.0), 3u);
}

TEST(State, NetworkBucketAt40Mbps)
{
    EXPECT_EQ(bucketNetwork(80.0), 0u);
    EXPECT_EQ(bucketNetwork(40.1), 0u);
    EXPECT_EQ(bucketNetwork(40.0), 1u);
    EXPECT_EQ(bucketNetwork(5.0), 1u);
}

TEST(State, DataBucketsPerTable1)
{
    EXPECT_EQ(bucketData(1, 10), 0u);   // 10% < 25% -> small
    EXPECT_EQ(bucketData(2, 10), 0u);   // 20% < 25% -> small
    EXPECT_EQ(bucketData(3, 10), 1u);   // 30% -> medium
    EXPECT_EQ(bucketData(5, 10), 1u);
    EXPECT_EQ(bucketData(9, 10), 1u);
    EXPECT_EQ(bucketData(10, 10), 2u);
}

TEST(State, IndexIsBijectiveOverAllBuckets)
{
    std::set<std::size_t> seen;
    for (std::size_t conv = 0; conv < kConvLevels; ++conv)
        for (std::size_t fc = 0; fc < kFcLevels; ++fc)
            for (std::size_t rc = 0; rc < kRcLevels; ++rc)
                for (std::size_t cpu = 0; cpu < kCoCpuLevels; ++cpu)
                    for (std::size_t mem = 0; mem < kCoMemLevels; ++mem)
                        for (std::size_t net = 0; net < kNetworkLevels;
                             ++net)
                            for (std::size_t d = 0; d < kDataLevels; ++d) {
                                StateKey key{conv, fc, rc, cpu,
                                             mem, net, d};
                                const std::size_t idx = key.index();
                                EXPECT_LT(idx, kNumStates);
                                seen.insert(idx);
                            }
    EXPECT_EQ(seen.size(), kNumStates);
}

TEST(State, EncodeStateWiresObservationFields)
{
    nn::LayerCensus census;
    census.conv = 12;
    census.dense = 2;
    census.recurrent = 0;
    fl::DeviceObservation obs;
    obs.interference.co_cpu = 0.8;
    obs.interference.co_mem = 0.1;
    obs.network.bandwidth_mbps = 20.0;
    obs.data_classes = 10;
    obs.total_classes = 10;
    StateKey key = encodeState(census, obs);
    EXPECT_EQ(key.conv, 1u);
    EXPECT_EQ(key.fc, 0u);
    EXPECT_EQ(key.rc, 0u);
    EXPECT_EQ(key.co_cpu, 3u);
    EXPECT_EQ(key.co_mem, 1u);
    EXPECT_EQ(key.network, 1u);
    EXPECT_EQ(key.data, 2u);
}

TEST(State, GlobalStateWithinRange)
{
    nn::LayerCensus census;
    census.conv = 2;
    census.dense = 2;
    for (std::size_t d = 0; d < kDataLevels; ++d)
        EXPECT_LT(encodeGlobalState(census, d), kNumGlobalStates);
}

TEST(QTable, RandomInitWithinSpan)
{
    util::Rng rng(1);
    QTable table(10, 4, rng, -0.5, 0.5);
    for (std::size_t s = 0; s < 10; ++s)
        for (std::size_t a = 0; a < 4; ++a) {
            EXPECT_GE(table.q(s, a), -0.5);
            EXPECT_LE(table.q(s, a), 0.5);
        }
}

TEST(QTable, BestActionFindsMax)
{
    util::Rng rng(2);
    QTable table(3, 5, rng, -0.001, 0.001);
    table.update(1, 3, 100.0, 1, 1.0, 0.0);  // drive one cell up
    EXPECT_EQ(table.bestAction(1), 3u);
    EXPECT_NEAR(table.maxQ(1), table.q(1, 3), 1e-12);
}

TEST(QTable, UpdateImplementsAlgorithm2)
{
    util::Rng rng(3);
    QTable table(2, 2, rng, 0.0, 0.0);  // all-zero init
    // Q(0,0) += gamma * (r + mu * maxQ(1) - Q(0,0))
    table.update(1, 0, 10.0, 1, 1.0, 0.0);  // Q(1,0) = 10
    table.update(0, 0, 5.0, 1, 0.5, 0.1);
    // target = 5 + 0.1*10 = 6; delta = 0.5*(6-0) = 3.
    EXPECT_NEAR(table.q(0, 0), 3.0, 1e-12);
    EXPECT_EQ(table.updates(), 2u);
}

TEST(QTable, RepeatedUpdatesConvergeToReward)
{
    util::Rng rng(4);
    QTable table(1, 1, rng, -0.01, 0.01);
    for (int i = 0; i < 200; ++i)
        table.update(0, 0, 7.0, 0, 0.9, 0.0);
    EXPECT_NEAR(table.q(0, 0), 7.0, 1e-6);
    EXPECT_LT(table.recentMaxDelta(), 1e-5);
}

TEST(QTable, BytesMatchesDimensions)
{
    util::Rng rng(5);
    QTable table(100, 30, rng);
    EXPECT_EQ(table.bytes(),
              100u * 30u * (sizeof(double) + sizeof(std::uint32_t)));
}

TEST(Reward, PenaltyBranchWhenAccuracyStalls)
{
    // acc <= prev -> R = acc% - 100 minus the stall energy tie-break.
    RewardConfig cfg;
    const double r = fedgpoReward(0.5, 0.5, 0.80, 0.80);
    EXPECT_NEAR(r,
                -20.0 - cfg.stall_energy_factor * cfg.energy_weight * 1.0,
                1e-12);
    EXPECT_LT(fedgpoReward(0.0, 0.0, 0.30, 0.50), -69.9);
}

TEST(Reward, StallBranchStillPrefersCheaperActions)
{
    EXPECT_GT(fedgpoReward(0.2, 0.1, 0.80, 0.80),
              fedgpoReward(0.9, 0.9, 0.80, 0.80));
}

TEST(Reward, ImprovementBranchTradesEnergyAndAccuracy)
{
    RewardConfig cfg;
    const double r = fedgpoReward(0.4, 0.2, 0.85, 0.84, 1.0, cfg);
    const double expected = -cfg.energy_weight * 0.6 + cfg.alpha * 85.0 +
                            cfg.beta * 1.0;
    EXPECT_NEAR(r, expected, 1e-9);
}

TEST(Reward, ImprovementTermIsCapped)
{
    RewardConfig cfg;
    // A 5-point jump is capped at delta_cap points of credit.
    const double big = fedgpoReward(0.0, 0.0, 0.85, 0.80, 1.0, cfg);
    const double capped = fedgpoReward(0.0, 0.0,
                                       0.80 + cfg.delta_cap / 100.0, 0.80,
                                       1.0, cfg);
    EXPECT_NEAR(big, capped + cfg.alpha * (85.0 - 80.0 - cfg.delta_cap),
                1e-9);
}

TEST(Reward, ImprovementShareScalesCredit)
{
    RewardConfig cfg;
    const double full = fedgpoReward(0.4, 0.2, 0.85, 0.84, 1.0, cfg);
    const double half = fedgpoReward(0.4, 0.2, 0.85, 0.84, 0.5, cfg);
    EXPECT_NEAR(full - half, 0.5 * cfg.beta * 1.0, 1e-9);
}

TEST(Reward, MeaningfulImprovementBeatsStallAtEqualEnergy)
{
    // A capped-scale improvement outscores a stalled round with the same
    // energy profile. (At vanishing improvement the stall branch's
    // discounted energy term can win — by design, the discount keeps the
    // plateau regime pushing toward cheap actions.)
    RewardConfig cfg;
    const double improving =
        fedgpoReward(0.5, 0.5, 0.90, 0.90 - cfg.delta_cap / 100.0);
    const double stalled = fedgpoReward(0.5, 0.5, 0.90, 0.90);
    EXPECT_GT(improving, stalled);
}

TEST(Reward, LessEnergyIsStrictlyBetter)
{
    EXPECT_GT(fedgpoReward(0.1, 0.1, 0.85, 0.84),
              fedgpoReward(0.9, 0.9, 0.85, 0.84));
}

TEST(Reward, EnergyNormalizerTracksMax)
{
    EnergyNormalizer norm;
    EXPECT_DOUBLE_EQ(norm.normalize(5.0), 1.0);  // no data yet
    norm.observe(100.0);
    EXPECT_DOUBLE_EQ(norm.normalize(50.0), 0.5);
    norm.observe(200.0);
    EXPECT_DOUBLE_EQ(norm.normalize(50.0), 0.25);
    // Clamped above so one freak round cannot explode the reward.
    EXPECT_DOUBLE_EQ(norm.normalize(1000.0), 2.0);
}

} // namespace
} // namespace core
} // namespace fedgpo
