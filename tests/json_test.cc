/**
 * @file
 * Unit tests for the minimal JSON parser in util/json, which backs the
 * trace_summarize tool and the trace round-trip tests.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/json.h"

namespace fedgpo {
namespace util {
namespace {

JsonValue
mustParse(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(text, v, &error)) << error;
    return v;
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(mustParse("null").isNull());
    EXPECT_TRUE(mustParse("true").asBool());
    EXPECT_FALSE(mustParse("false").asBool());
    EXPECT_DOUBLE_EQ(mustParse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(mustParse("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(mustParse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, NumberRoundTripsHexfloatPrecision)
{
    // %.17g output must survive a parse bit-exactly; this is what the
    // trace writer relies on.
    const double x = 0.1 + 0.2;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    EXPECT_EQ(mustParse(buf).asNumber(), x);
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(mustParse("\"a\\\"b\\\\c\\nd\\te\"").asString(), "a\"b\\c\nd\te");
    EXPECT_EQ(mustParse("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

TEST(JsonParse, Arrays)
{
    const JsonValue v = mustParse("[1, \"two\", [3], {\"k\": 4}, null]");
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.at(0).asNumber(), 1.0);
    EXPECT_EQ(v.at(1).asString(), "two");
    EXPECT_DOUBLE_EQ(v.at(2).at(0).asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(v.at(3).at("k").asNumber(), 4.0);
    EXPECT_TRUE(v.at(4).isNull());
}

TEST(JsonParse, Objects)
{
    const JsonValue v =
        mustParse("{\"round\": 7, \"nested\": {\"acc\": 0.5}, \"ids\": [1,2]}");
    ASSERT_TRUE(v.isObject());
    EXPECT_TRUE(v.has("round"));
    EXPECT_FALSE(v.has("absent"));
    EXPECT_DOUBLE_EQ(v.at("round").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(v.at("nested").at("acc").asNumber(), 0.5);
    EXPECT_EQ(v.at("ids").size(), 2u);
}

TEST(JsonParse, MissingKeyYieldsNullSentinel)
{
    const JsonValue v = mustParse("{\"a\": 1}");
    EXPECT_TRUE(v.at("missing").isNull());
    // Chained lookups through a miss stay safe.
    EXPECT_TRUE(v.at("missing").at("deeper").isNull());
    EXPECT_DOUBLE_EQ(v.at("missing").asNumber(), 0.0);
}

TEST(JsonParse, OutOfRangeIndexYieldsNullSentinel)
{
    const JsonValue v = mustParse("[1]");
    EXPECT_TRUE(v.at(5).isNull());
}

TEST(JsonParse, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonValue::parse("", v, &error));
    EXPECT_FALSE(JsonValue::parse("{", v, &error));
    EXPECT_FALSE(JsonValue::parse("[1,]", v, &error));
    EXPECT_FALSE(JsonValue::parse("{\"a\" 1}", v, &error));
    EXPECT_FALSE(JsonValue::parse("\"unterminated", v, &error));
    EXPECT_FALSE(JsonValue::parse("\"bad \\x escape\"", v, &error));
    EXPECT_FALSE(JsonValue::parse("tru", v, &error));
    EXPECT_FALSE(JsonValue::parse("1.2.3", v, &error));
    EXPECT_FALSE(JsonValue::parse("-", v, nullptr)); // error sink optional
}

TEST(JsonParse, RejectsTrailingGarbage)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonValue::parse("{} extra", v, &error));
    EXPECT_FALSE(JsonValue::parse("1 2", v, &error));
}

TEST(JsonParse, DepthCapStopsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += '[';
    for (int i = 0; i < 200; ++i)
        deep += ']';
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonValue::parse(deep, v, &error));
    EXPECT_FALSE(error.empty());
}

TEST(JsonParse, WhitespaceTolerant)
{
    const JsonValue v = mustParse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
    EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(JsonParse, IntegerTokensRoundTripLosslessly)
{
    // 2^53 + 1 is not representable as a double; asInt64 must still read
    // it back exactly (byte counters in the round traces rely on this).
    const JsonValue v =
        mustParse("{\"bytes\":9007199254740993,\"neg\":-42}");
    EXPECT_TRUE(v.at("bytes").isInteger());
    EXPECT_EQ(v.at("bytes").asInt64(), 9007199254740993LL);
    EXPECT_NE(static_cast<std::int64_t>(v.at("bytes").asNumber()),
              9007199254740993LL)
        << "the double path alone must not be able to represent this";
    EXPECT_EQ(v.at("neg").asInt64(), -42);
}

TEST(JsonParse, NonIntegerTokensAreNotIntegers)
{
    const JsonValue v =
        mustParse("{\"a\":1.5,\"b\":1e3,\"c\":2.0,\"d\":7}");
    EXPECT_FALSE(v.at("a").isInteger());
    EXPECT_FALSE(v.at("b").isInteger());
    EXPECT_FALSE(v.at("c").isInteger());
    EXPECT_TRUE(v.at("d").isInteger());
    // asInt64 still degrades gracefully for doubles and non-numbers.
    EXPECT_EQ(v.at("a").asInt64(), 1);
    EXPECT_EQ(v.at("missing").asInt64(), 0);
}

} // namespace
} // namespace util
} // namespace fedgpo
