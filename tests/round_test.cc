/**
 * @file
 * Unit tests of the round pipeline's pluggable pieces: straggler
 * policies, aggregators, divergence rejection, the observer event
 * stream, and the JSONL trace writer — plus simulator-level checks that
 * the non-default strategies actually change behavior.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "fl/round/aggregator.h"
#include "nn/dense.h"
#include "util/rng.h"
#include "fl/round/round_engine.h"
#include "fl/round/straggler_policy.h"
#include "fl/round/trace_writer.h"
#include "fl/simulator.h"

using namespace fedgpo;
using namespace fedgpo::fl;
using namespace fedgpo::fl::round;

namespace {

/**
 * A context holding only what straggler policies touch: one report per
 * participant with a modeled cost. Energy splits 60/40 comp/comm so
 * proration is visible on both components.
 */
RoundContext
contextWithRoundTimes(const std::vector<double> &times)
{
    RoundContext ctx;
    for (std::size_t i = 0; i < times.size(); ++i) {
        ClientRoundReport p;
        p.client_id = i;
        p.cost.t_round = times[i];
        p.cost.e_comp = 6.0 * times[i];
        p.cost.e_comm = 4.0 * times[i];
        p.cost.e_total = p.cost.e_comp + p.cost.e_comm;
        ctx.result.participants.push_back(p);
    }
    return ctx;
}

/**
 * A context holding what aggregators touch: per-client single-coordinate
 * updates with sample counts, plus the global weights.
 */
RoundContext
contextWithUpdates(const std::vector<float> &values,
                   const std::vector<std::size_t> &samples,
                   std::vector<float> &global_weights)
{
    RoundContext ctx;
    ctx.global_weights = &global_weights;
    for (std::size_t i = 0; i < values.size(); ++i) {
        ClientRoundReport p;
        p.client_id = i;
        p.samples = samples[i];
        ctx.result.participants.push_back(p);
        Client::UpdateResult u;
        u.weights = {values[i]};
        u.samples = samples[i];
        ctx.updates.push_back(std::move(u));
    }
    return ctx;
}

FlConfig
tinyConfig()
{
    FlConfig config;
    config.n_devices = 8;
    config.train_samples = 96;
    config.test_samples = 32;
    config.seed = 11;
    config.interference = true;
    config.network_unstable = true;
    config.threads = 1;
    return config;
}

} // namespace

// --- Straggler policies. ------------------------------------------------

TEST(DeadlineDropPolicy, DropsBeyondDeadlineWithProratedEnergy)
{
    // Median of {1, 1, 10} is 1, so factor 2 puts the deadline at 2.0:
    // the slow client is cut off after completing 2/10 of its work.
    RoundContext ctx = contextWithRoundTimes({1.0, 1.0, 10.0});
    DeadlineDropPolicy policy(2.0);
    const double round_time = policy.apply(ctx);

    EXPECT_DOUBLE_EQ(round_time, 2.0);
    EXPECT_EQ(ctx.result.dropped_straggler, 1u);
    EXPECT_EQ(ctx.result.dropped_diverged, 0u);
    EXPECT_FALSE(ctx.result.participants[0].dropped);
    EXPECT_FALSE(ctx.result.participants[1].dropped);

    const ClientRoundReport &slow = ctx.result.participants[2];
    EXPECT_TRUE(slow.dropped);
    EXPECT_EQ(slow.drop_reason, DropReason::Straggler);
    EXPECT_DOUBLE_EQ(slow.update_scale, 1.0); // dropped, never scaled
    // Energy prorated by 0.2: e_comp 60 -> 12, e_comm 40 -> 8.
    EXPECT_DOUBLE_EQ(slow.cost.e_comp, 12.0);
    EXPECT_DOUBLE_EQ(slow.cost.e_comm, 8.0);
    EXPECT_DOUBLE_EQ(slow.cost.e_total, 20.0);
}

TEST(DeadlineDropPolicy, FastRoundGatedBySlowestKeptClient)
{
    RoundContext ctx = contextWithRoundTimes({1.0, 1.5, 1.8});
    DeadlineDropPolicy policy(3.0); // deadline 4.5, nobody dropped
    EXPECT_DOUBLE_EQ(policy.apply(ctx), 1.8);
    EXPECT_EQ(ctx.result.dropped_straggler, 0u);
}

TEST(AcceptPartialPolicy, KeepsLateClientAtCompletedFraction)
{
    RoundContext ctx = contextWithRoundTimes({1.0, 1.0, 10.0});
    AcceptPartialPolicy policy(2.0);
    const double round_time = policy.apply(ctx);

    // Same deadline and energy proration as DeadlineDropPolicy...
    EXPECT_DOUBLE_EQ(round_time, 2.0);
    const ClientRoundReport &slow = ctx.result.participants[2];
    EXPECT_DOUBLE_EQ(slow.cost.e_comp, 12.0);
    EXPECT_DOUBLE_EQ(slow.cost.e_comm, 8.0);
    EXPECT_DOUBLE_EQ(slow.cost.e_total, 20.0);

    // ...but the client is kept, contributing its completed fraction.
    EXPECT_FALSE(slow.dropped);
    EXPECT_EQ(slow.drop_reason, DropReason::None);
    EXPECT_DOUBLE_EQ(slow.update_scale, 0.2);
    EXPECT_EQ(ctx.result.dropped_straggler, 0u);
    EXPECT_DOUBLE_EQ(ctx.result.participants[0].update_scale, 1.0);
}

// --- Aggregators. -------------------------------------------------------

TEST(FedAvgAggregator, SampleWeightedAverage)
{
    std::vector<float> gw = {0.0f};
    RoundContext ctx = contextWithUpdates({2.0f, 4.0f}, {1, 3}, gw);
    FedAvgAggregator agg;
    const AggregationStats stats = agg.aggregate(ctx);

    EXPECT_EQ(stats.contributors, 2u);
    EXPECT_EQ(stats.samples, 4u);
    EXPECT_EQ(stats.scaled, 0u);
    // (1*2 + 3*4) / 4 = 3.5
    EXPECT_FLOAT_EQ(gw[0], 3.5f);
}

TEST(FedAvgAggregator, ScaledUpdateBlendsTowardPreviousGlobals)
{
    std::vector<float> gw = {1.0f};
    RoundContext ctx = contextWithUpdates({2.0f, 2.0f}, {1, 1}, gw);
    ctx.result.participants[1].update_scale = 0.5;
    FedAvgAggregator agg;
    const AggregationStats stats = agg.aggregate(ctx);

    EXPECT_EQ(stats.scaled, 1u);
    // Client 0 contributes 2; client 1 contributes 1 + 0.5*(2-1) = 1.5;
    // equal samples -> (2 + 1.5) / 2 = 1.75.
    EXPECT_FLOAT_EQ(gw[0], 1.75f);
}

TEST(FedAvgAggregator, AllDroppedLeavesGlobalsUntouched)
{
    std::vector<float> gw = {7.0f};
    RoundContext ctx = contextWithUpdates({2.0f}, {4}, gw);
    ctx.result.participants[0].dropped = true;
    FedAvgAggregator agg;
    const AggregationStats stats = agg.aggregate(ctx);
    EXPECT_EQ(stats.contributors, 0u);
    EXPECT_FLOAT_EQ(gw[0], 7.0f);
}

TEST(TrimmedMeanAggregator, SurvivesPoisonedUpdateThatSkewsFedAvg)
{
    // Four honest clients report 0, one poisoned client reports 100.
    std::vector<float> honest_gw = {0.0f};
    {
        RoundContext ctx = contextWithUpdates(
            {0.0f, 0.0f, 0.0f, 0.0f, 100.0f}, {1, 1, 1, 1, 1}, honest_gw);
        FedAvgAggregator fedavg;
        fedavg.aggregate(ctx);
        EXPECT_FLOAT_EQ(honest_gw[0], 20.0f) << "FedAvg absorbs the poison";
    }
    std::vector<float> robust_gw = {0.0f};
    {
        RoundContext ctx = contextWithUpdates(
            {0.0f, 0.0f, 0.0f, 0.0f, 100.0f}, {1, 1, 1, 1, 1}, robust_gw);
        TrimmedMeanAggregator trimmed(0.2);
        const AggregationStats stats = trimmed.aggregate(ctx);
        EXPECT_EQ(stats.contributors, 5u);
        EXPECT_FLOAT_EQ(robust_gw[0], 0.0f) << "trimming rejects the poison";
    }
}

TEST(TrimmedMeanAggregator, TrimClampedSoOneValueSurvives)
{
    std::vector<float> gw = {0.0f};
    RoundContext ctx = contextWithUpdates({1.0f, 3.0f}, {1, 1}, gw);
    TrimmedMeanAggregator trimmed(0.5); // would trim both; clamped
    trimmed.aggregate(ctx);
    EXPECT_FLOAT_EQ(gw[0], 2.0f);
}

// --- Divergence rejection. ----------------------------------------------

TEST(RejectDivergedUpdates, NonFiniteUpdateExcludedFromAggregation)
{
    std::vector<float> gw = {0.0f};
    RoundContext ctx = contextWithUpdates({2.0f, 0.0f}, {1, 1}, gw);
    ctx.updates[1].weights[0] = std::numeric_limits<float>::quiet_NaN();

    EXPECT_EQ(rejectDivergedUpdates(ctx), 1u);
    EXPECT_TRUE(ctx.result.participants[1].dropped);
    EXPECT_EQ(ctx.result.participants[1].drop_reason, DropReason::Diverged);
    EXPECT_EQ(ctx.result.dropped_diverged, 1u);
    EXPECT_EQ(ctx.result.dropped_straggler, 0u);

    FedAvgAggregator agg;
    const AggregationStats stats = agg.aggregate(ctx);
    EXPECT_EQ(stats.contributors, 1u);
    EXPECT_FLOAT_EQ(gw[0], 2.0f) << "only the finite update contributes";
    EXPECT_TRUE(std::isfinite(gw[0]));
}

TEST(RejectDivergedUpdates, InfActivationGradientFlaggedNotMasked)
{
    // Regression for the kernel-layer zero-skip: a client whose backward
    // pass hits 0 * Inf (zero activation against an Inf upstream gradient)
    // must produce a NaN weight gradient — the old GEMMs skipped zero
    // multiplicands, so the gradient stayed finite and the diverged update
    // sailed through aggregation unflagged.
    util::Rng lrng(5);
    nn::Dense layer(2, 2, lrng);
    layer.zeroGrad();
    tensor::Tensor x({1, 2}, 0.0f);
    layer.forward(x, true);
    tensor::Tensor dy({1, 2}, std::numeric_limits<float>::infinity());
    layer.backward(dy);
    const tensor::Tensor &dw = *layer.grads()[0];
    ASSERT_TRUE(std::isnan(dw[0]))
        << "0 * Inf in dW was masked by a kernel zero-skip: " << dw[0];

    // An update carrying that gradient is caught by divergence rejection.
    std::vector<float> gw = {0.0f};
    RoundContext ctx = contextWithUpdates({2.0f, dw[0]}, {1, 1}, gw);
    EXPECT_EQ(rejectDivergedUpdates(ctx), 1u);
    EXPECT_TRUE(ctx.result.participants[1].dropped);
    EXPECT_EQ(ctx.result.participants[1].drop_reason, DropReason::Diverged);
}

TEST(RejectDivergedUpdates, AlreadyDroppedClientsNotRecounted)
{
    std::vector<float> gw = {0.0f};
    RoundContext ctx = contextWithUpdates({2.0f}, {1}, gw);
    ctx.updates[0].weights[0] = std::numeric_limits<float>::infinity();
    ctx.result.participants[0].dropped = true;
    ctx.result.participants[0].drop_reason = DropReason::Straggler;
    ctx.result.dropped_straggler = 1;

    EXPECT_EQ(rejectDivergedUpdates(ctx), 0u);
    EXPECT_EQ(ctx.result.dropped_diverged, 0u);
    EXPECT_EQ(ctx.result.participants[0].drop_reason,
              DropReason::Straggler);
}

// --- Simulator-level strategy swaps. ------------------------------------

TEST(RoundEngineStrategies, AcceptPartialDivergesFromDeadlineDrop)
{
    // Under a harsh deadline the default policy drops stragglers; partial
    // acceptance keeps them (scaled), so drop counts and the aggregate
    // must differ while the gating time matches.
    FlConfig config = tinyConfig();
    config.deadline_factor = 1.01;

    FlSimulator drop_sim(config);
    FlSimulator partial_sim(config);
    partial_sim.roundEngine().setStragglerPolicy(
        std::make_unique<AcceptPartialPolicy>(config.deadline_factor));

    std::size_t drop_total = 0, partial_scaled = 0;
    for (int r = 0; r < 3; ++r) {
        RoundResult rd = drop_sim.runRoundWithParams(GlobalParams{4, 2, 6});
        RoundResult rp =
            partial_sim.runRoundWithParams(GlobalParams{4, 2, 6});
        drop_total += rd.dropped_straggler;
        EXPECT_EQ(rp.dropped_straggler, 0u)
            << "accept-partial never drops stragglers";
        EXPECT_EQ(rd.round_time, rp.round_time)
            << "same deadline gates both policies";
        for (const auto &p : rp.participants)
            partial_scaled += p.update_scale < 1.0 ? 1 : 0;
    }
    EXPECT_GT(drop_total, 0u) << "harsh deadline must create stragglers";
    EXPECT_GT(partial_scaled, 0u);
}

TEST(RoundEngineStrategies, TrimmedMeanDivergesFromFedAvg)
{
    FlConfig config = tinyConfig();
    FlSimulator fedavg_sim(config);
    FlSimulator trimmed_sim(config);
    trimmed_sim.roundEngine().setAggregator(
        std::make_unique<TrimmedMeanAggregator>(0.2));

    fedavg_sim.runRoundWithParams(GlobalParams{4, 1, 6});
    trimmed_sim.runRoundWithParams(GlobalParams{4, 1, 6});
    EXPECT_NE(fedavg_sim.globalModel().saveParams(),
              trimmed_sim.globalModel().saveParams())
        << "a different aggregation rule must move the model differently";
}

// --- Observer event stream. ---------------------------------------------

namespace {

struct CountingObserver : RoundObserver
{
    int starts = 0;
    int ends = 0;
    int aggregates = 0;
    std::size_t client_reports = 0;
    std::vector<Stage> stages;

    void
    onRoundStart(const RoundContext &) override
    {
        ++starts;
    }
    void
    onStage(const RoundContext &, Stage stage, double wall_ms) override
    {
        EXPECT_GE(wall_ms, 0.0);
        stages.push_back(stage);
    }
    void
    onClientReport(const RoundContext &,
                   const ClientRoundReport &) override
    {
        ++client_reports;
    }
    void
    onAggregate(const RoundContext &, const AggregationStats &) override
    {
        ++aggregates;
    }
    void
    onRoundEnd(const RoundResult &result) override
    {
        ++ends;
        EXPECT_GT(result.participants.size(), 0u);
    }
};

} // namespace

TEST(RoundObserverStream, FullStageSequencePerRound)
{
    FlSimulator sim(tinyConfig());
    CountingObserver observer;
    sim.addRoundObserver(&observer);
    RoundResult r = sim.runRoundWithParams(GlobalParams{4, 1, 6});

    EXPECT_EQ(observer.starts, 1);
    EXPECT_EQ(observer.ends, 1);
    EXPECT_EQ(observer.aggregates, 1);
    EXPECT_EQ(observer.client_reports, r.participants.size());
    ASSERT_EQ(observer.stages.size(), kStageCount);
    const Stage expected[] = {Stage::Select,    Stage::Train,
                              Stage::Encode,    Stage::Cost,
                              Stage::Recover,   Stage::Straggler,
                              Stage::Aggregate, Stage::Energy,
                              Stage::Evaluate};
    for (std::size_t i = 0; i < kStageCount; ++i)
        EXPECT_EQ(observer.stages[i], expected[i]) << "stage " << i;

    // Unregistered observers see nothing further.
    sim.removeRoundObserver(&observer);
    sim.runRoundWithParams(GlobalParams{4, 1, 6});
    EXPECT_EQ(observer.ends, 1);
}

TEST(RoundObserverStream, StageNamesStable)
{
    EXPECT_STREQ(stageName(Stage::Select), "select");
    EXPECT_STREQ(stageName(Stage::Train), "train");
    EXPECT_STREQ(stageName(Stage::Recover), "recover");
    EXPECT_STREQ(stageName(Stage::Evaluate), "evaluate");
    EXPECT_STREQ(dropReasonName(DropReason::None), "none");
    EXPECT_STREQ(dropReasonName(DropReason::Straggler), "straggler");
    EXPECT_STREQ(dropReasonName(DropReason::Diverged), "diverged");
    EXPECT_STREQ(dropReasonName(DropReason::Offline), "offline");
    EXPECT_STREQ(dropReasonName(DropReason::Crashed), "crashed");
    EXPECT_STREQ(dropReasonName(DropReason::UploadFailed), "upload_failed");
}

// --- JSONL trace writer. ------------------------------------------------

TEST(JsonlTraceWriter, OneRecordPerRoundWithStageAndClientFields)
{
    const std::string path = "round_trace_test.jsonl";
    {
        FlSimulator sim(tinyConfig());
        JsonlTraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        sim.addRoundObserver(&trace);
        sim.runRoundWithParams(GlobalParams{4, 1, 6});
        sim.runRoundWithParams(GlobalParams{4, 1, 6});
        sim.removeRoundObserver(&trace);
        EXPECT_EQ(trace.roundsWritten(), 2u);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"round\":" + std::to_string(lines)),
                  std::string::npos);
        EXPECT_NE(line.find("\"stages_ms\""), std::string::npos);
        EXPECT_NE(line.find("\"select\""), std::string::npos);
        EXPECT_NE(line.find("\"aggregation\""), std::string::npos);
        EXPECT_NE(line.find("\"clients\""), std::string::npos);
        EXPECT_NE(line.find("\"dropped_straggler\""), std::string::npos);
        EXPECT_NE(line.find("\"dropped_diverged\""), std::string::npos);
        EXPECT_NE(line.find("\"update_scale\""), std::string::npos);
        // Fault fields are present (and inert) with faults off.
        EXPECT_NE(line.find("\"aborted\":false"), std::string::npos);
        EXPECT_NE(line.find("\"faults\":[]"), std::string::npos);
        EXPECT_NE(line.find("\"upload_retries\":0"), std::string::npos);
    }
    EXPECT_EQ(lines, 2u);
    std::remove(path.c_str());
}
