/**
 * @file
 * Tests for the straggler-gap oracle (Table 5's reference policy).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fl/simulator.h"
#include "optim/callback_policy.h"
#include "optim/oracle.h"

namespace fedgpo {
namespace optim {
namespace {

fl::FlConfig
config()
{
    fl::FlConfig c;
    c.workload = models::Workload::CnnMnist;
    c.n_devices = 12;
    c.train_samples = 240;
    c.test_samples = 60;
    c.seed = 11;
    return c;
}

std::vector<fl::DeviceObservation>
allDevices(const fl::FlSimulator &sim)
{
    std::vector<fl::DeviceObservation> out;
    for (std::size_t i = 0; i < sim.numDevices(); ++i) {
        fl::DeviceObservation obs;
        obs.client_id = i;
        obs.category = sim.client(i).category();
        out.push_back(obs);
    }
    return out;
}

TEST(Oracle, TargetIsFastestBaselineTime)
{
    fl::FlSimulator sim(config());
    sim.runRoundWithParams(fl::GlobalParams{8, 1, 4});  // init states
    auto devices = allDevices(sim);
    const fl::PerDeviceParams base{8, 10};
    const double target = oracleTargetTime(sim, devices, base);
    for (const auto &obs : devices)
        EXPECT_LE(target, sim.predictedRoundTime(obs.client_id, base) +
                              1e-9);
}

TEST(Oracle, ParamsNarrowTheGap)
{
    fl::FlSimulator sim(config());
    sim.runRoundWithParams(fl::GlobalParams{8, 1, 4});
    auto devices = allDevices(sim);
    const fl::PerDeviceParams base{8, 10};
    const double target = oracleTargetTime(sim, devices, base);

    // Under uniform baseline params, times spread widely; under oracle
    // params, every device's time must be within a modest band of the
    // target (or as close as the discrete grid permits).
    double max_base_err = 0.0, max_oracle_err = 0.0;
    for (const auto &obs : devices) {
        const double tb = sim.predictedRoundTime(obs.client_id, base);
        const auto params = oracleParamsFor(sim, obs.client_id, target);
        const double to = sim.predictedRoundTime(obs.client_id, params);
        max_base_err = std::max(max_base_err,
                                std::fabs(tb - target) / target);
        max_oracle_err = std::max(max_oracle_err,
                                  std::fabs(to - target) / target);
    }
    EXPECT_LT(max_oracle_err, max_base_err);
    EXPECT_LT(max_oracle_err, 0.6);
}

TEST(Oracle, SlowTierGetsLessWorkThanFastTier)
{
    fl::FlSimulator sim(config());
    sim.runRoundWithParams(fl::GlobalParams{8, 1, 4});
    auto devices = allDevices(sim);
    const fl::PerDeviceParams base{8, 10};
    const double target = oracleTargetTime(sim, devices, base);
    long high_work = 0, low_work = 0;
    int high_n = 0, low_n = 0;
    for (const auto &obs : devices) {
        const auto p = oracleParamsFor(sim, obs.client_id, target);
        if (obs.category == device::Category::High) {
            high_work += p.epochs;
            ++high_n;
        } else if (obs.category == device::Category::Low) {
            low_work += p.epochs;
            ++low_n;
        }
    }
    ASSERT_GT(high_n, 0);
    ASSERT_GT(low_n, 0);
    EXPECT_GT(static_cast<double>(high_work) / high_n,
              static_cast<double>(low_work) / low_n);
}

TEST(Oracle, PredictionAccuracyIsPerfectForOracleItself)
{
    fl::FlSimulator sim(config());
    const fl::PerDeviceParams base{8, 10};
    CallbackPolicy oracle(
        "oracle", 8,
        [&sim, &base](const std::vector<fl::DeviceObservation> &obs,
                      const nn::LayerCensus &) {
            const double target = oracleTargetTime(sim, obs, base);
            std::vector<fl::PerDeviceParams> out;
            for (const auto &o : obs)
                out.push_back(oracleParamsFor(sim, o.client_id, target));
            return out;
        });
    auto result = sim.runRound(oracle);
    EXPECT_NEAR(predictionAccuracy(sim, result, base), 1.0, 1e-9);
}

TEST(Oracle, PredictionAccuracyPenalizesUniformParams)
{
    fl::FlSimulator sim(config());
    auto result = sim.runRoundWithParams(fl::GlobalParams{8, 10, 8});
    const fl::PerDeviceParams base{8, 10};
    const double acc = predictionAccuracy(sim, result, base);
    EXPECT_LT(acc, 1.0);
    EXPECT_GT(acc, 0.0);
}

TEST(Oracle, EmptyRoundIsTriviallyAccurate)
{
    fl::FlSimulator sim(config());
    fl::RoundResult empty;
    EXPECT_DOUBLE_EQ(
        predictionAccuracy(sim, empty, fl::PerDeviceParams{8, 10}), 1.0);
}

} // namespace
} // namespace optim
} // namespace fedgpo
