/**
 * @file
 * Tests for the baseline/comparator policies: Fixed, Adaptive (BO),
 * Adaptive (GA), FedEx, and ABS.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/action_space.h"
#include "optim/abs_drl.h"
#include "optim/bayesian.h"
#include "optim/fedex.h"
#include "optim/fixed.h"
#include "optim/genetic.h"

namespace fedgpo {
namespace optim {
namespace {

nn::LayerCensus
census()
{
    nn::LayerCensus c;
    c.conv = 2;
    c.dense = 2;
    return c;
}

std::vector<fl::DeviceObservation>
makeDevices(std::size_t n)
{
    std::vector<fl::DeviceObservation> out;
    for (std::size_t i = 0; i < n; ++i) {
        fl::DeviceObservation obs;
        obs.client_id = i;
        obs.category = static_cast<device::Category>(i % 3);
        obs.network.bandwidth_mbps = 80.0;
        obs.data_classes = 10;
        obs.total_classes = 10;
        obs.shard_size = 30;
        out.push_back(obs);
    }
    return out;
}

fl::RoundResult
makeResult(const std::vector<fl::PerDeviceParams> &params,
           const std::vector<fl::DeviceObservation> &devices,
           double accuracy, double energy)
{
    fl::RoundResult r;
    r.test_accuracy = accuracy;
    r.energy_total = energy;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        fl::ClientRoundReport report;
        report.client_id = devices[i].client_id;
        report.params = params[i];
        report.cost.e_total = energy / static_cast<double>(devices.size());
        r.participants.push_back(report);
    }
    return r;
}

/** Drive one full round of the policy protocol. */
fl::GlobalParams
stepPolicy(ParamOptimizer &policy, double accuracy, double energy)
{
    const int k = policy.chooseClients(40);
    auto devices = makeDevices(static_cast<std::size_t>(k));
    auto params = policy.assign(devices, census());
    fl::GlobalParams used{params[0].batch, params[0].epochs, k};
    policy.feedback(makeResult(params, devices, accuracy, energy));
    return used;
}

TEST(Fixed, AlwaysReturnsConfiguredParams)
{
    FixedOptimizer policy(fl::GlobalParams{4, 5, 10}, "Fixed (Best)");
    EXPECT_EQ(policy.name(), "Fixed (Best)");
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(policy.chooseClients(40), 10);
        auto params = policy.assign(makeDevices(10), census());
        for (const auto &p : params) {
            EXPECT_EQ(p.batch, 4);
            EXPECT_EQ(p.epochs, 5);
        }
        policy.feedback(
            makeResult(params, makeDevices(10), 0.5, 100.0));
    }
}

TEST(Fixed, KClampedToFleet)
{
    FixedOptimizer policy(fl::GlobalParams{4, 5, 20});
    EXPECT_EQ(policy.chooseClients(8), 8);
}

TEST(Bayesian, WarmupExploresRandomly)
{
    BayesianOptimizer policy(1, 5);
    std::set<std::string> seen;
    double acc = 0.1;
    for (int i = 0; i < 5; ++i) {
        acc += 0.05;
        seen.insert(stepPolicy(policy, acc, 100.0).toString());
    }
    EXPECT_GE(seen.size(), 2u) << "warmup should sample several configs";
}

TEST(Bayesian, ProposalsStayOnGrid)
{
    BayesianOptimizer policy(2, 3);
    auto grid = core::allGlobalParams();
    std::set<std::string> valid;
    for (const auto &p : grid)
        valid.insert(p.toString());
    double acc = 0.1;
    for (int i = 0; i < 12; ++i) {
        acc = std::min(0.95, acc + 0.04);
        auto used = stepPolicy(policy, acc, 80.0);
        EXPECT_TRUE(valid.count(used.toString())) << used.toString();
    }
}

TEST(Genetic, EvolvesAfterFullPopulation)
{
    GeneticOptimizer policy(3, 6);
    double acc = 0.1;
    EXPECT_EQ(policy.generation(), 0u);
    for (int i = 0; i < 6; ++i) {
        acc += 0.02;
        stepPolicy(policy, acc, 100.0);
    }
    EXPECT_EQ(policy.generation(), 1u);
    for (int i = 0; i < 6; ++i) {
        acc += 0.02;
        stepPolicy(policy, acc, 100.0);
    }
    EXPECT_EQ(policy.generation(), 2u);
}

TEST(Genetic, ProposalsStayOnGrid)
{
    GeneticOptimizer policy(4);
    auto grid = core::allGlobalParams();
    std::set<std::string> valid;
    for (const auto &p : grid)
        valid.insert(p.toString());
    double acc = 0.1;
    for (int i = 0; i < 20; ++i) {
        acc = std::min(0.95, acc + 0.03);
        EXPECT_TRUE(valid.count(stepPolicy(policy, acc, 90.0).toString()));
    }
}

TEST(FedEx, DistributionStartsUniform)
{
    FedExOptimizer policy(5);
    const auto &p = policy.distribution();
    EXPECT_EQ(p.size(), 150u);
    for (double w : p)
        EXPECT_NEAR(w, 1.0 / 150.0, 1e-12);
}

TEST(FedEx, DistributionStaysNormalized)
{
    FedExOptimizer policy(6);
    double acc = 0.1;
    for (int i = 0; i < 30; ++i) {
        acc = std::min(0.9, acc + 0.03);
        stepPolicy(policy, acc, 100.0);
        double total = 0.0;
        for (double w : policy.distribution())
            total += w;
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(FedEx, MassShiftsTowardRewardedArms)
{
    // Reward only K = 20 configurations; their mass should grow.
    FedExOptimizer policy(7, 0.3);
    auto grid = core::allGlobalParams();
    double acc = 0.10;
    for (int i = 0; i < 400; ++i) {
        const int k = policy.chooseClients(40);
        auto devices = makeDevices(static_cast<std::size_t>(k));
        auto params = policy.assign(devices, census());
        const bool good = k == 20;
        acc = std::min(0.99, acc + (good ? 0.002 : 0.0005));
        policy.feedback(makeResult(params, devices, acc,
                                   good ? 20.0 : 200.0));
    }
    double mass_k20 = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i)
        if (grid[i].clients == 20)
            mass_k20 += policy.distribution()[i];
    EXPECT_GT(mass_k20, 0.2) << "uniform mass would be 0.2 exactly";
}

TEST(Abs, OnlyBatchVariesEpochsFixed)
{
    AbsOptimizer policy(8, 10, 20);
    EXPECT_EQ(policy.chooseClients(40), 20);
    auto devices = makeDevices(20);
    auto params = policy.assign(devices, census());
    ASSERT_EQ(params.size(), 20u);
    std::set<int> batches(core::kBatchSet.begin(), core::kBatchSet.end());
    for (const auto &p : params) {
        EXPECT_EQ(p.epochs, 10) << "ABS must not adjust E";
        EXPECT_TRUE(batches.count(p.batch));
    }
    policy.feedback(makeResult(params, devices, 0.5, 100.0));
}

TEST(Abs, LearnsWithoutCrashingOverManyRounds)
{
    AbsOptimizer policy(9, 10, 10);
    double acc = 0.1;
    for (int i = 0; i < 60; ++i) {
        const int k = policy.chooseClients(40);
        auto devices = makeDevices(static_cast<std::size_t>(k));
        auto params = policy.assign(devices, census());
        acc = std::min(0.95, acc + 0.01);
        policy.feedback(makeResult(params, devices, acc, 100.0));
    }
    SUCCEED();
}

TEST(Names, MatchPaperLabels)
{
    EXPECT_EQ(BayesianOptimizer().name(), "Adaptive (BO)");
    EXPECT_EQ(GeneticOptimizer().name(), "Adaptive (GA)");
    EXPECT_EQ(FedExOptimizer().name(), "FedEx");
    EXPECT_EQ(AbsOptimizer().name(), "ABS");
}

} // namespace
} // namespace optim
} // namespace fedgpo
