/**
 * @file
 * Tests of the fault-injection subsystem: deterministic draws, thread
 * invariance of faulty rounds, quorum-gated aborts, retry/backoff cost
 * accounting, graceful fleet exhaustion, and the configuration
 * validation added at the simulator boundary.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "device/cost_model.h"
#include "fault/fault_model.h"
#include "fl/round/recovery_policy.h"
#include "fl/round/round_engine.h"
#include "fl/simulator.h"
#include "runtime/runtime_config.h"
#include "util/logging.h"

using namespace fedgpo;
using namespace fedgpo::fl;
using namespace fedgpo::fl::round;
using fedgpo::fault::FaultConfig;
using fedgpo::fault::FaultDraw;
using fedgpo::fault::FaultModel;

namespace {

FlConfig
faultyConfig(std::size_t threads)
{
    FlConfig config;
    config.n_devices = 8;
    config.train_samples = 96;
    config.test_samples = 32;
    config.seed = 11;
    config.interference = true;
    config.network_unstable = true;
    config.threads = threads;
    config.faults.offline_rate = 0.2;
    config.faults.crash_rate = 0.2;
    config.faults.upload_failure_rate = 0.3;
    return config;
}

} // namespace

// --- FaultModel draws. --------------------------------------------------

TEST(FaultModel, DrawIsAPureFunctionOfRoundAndClient)
{
    FaultConfig config;
    config.offline_rate = 0.3;
    config.crash_rate = 0.3;
    config.upload_failure_rate = 0.3;
    const FaultModel model(config, 42);

    // Pure: the same (round, client) always yields the same outcome, in
    // any call order, from the same const model.
    const FaultDraw a = model.draw(5, 3);
    model.draw(1, 0); // unrelated draw must not perturb anything
    const FaultDraw b = model.draw(5, 3);
    EXPECT_EQ(a.offline, b.offline);
    EXPECT_EQ(a.crash, b.crash);
    EXPECT_EQ(a.crash_fraction, b.crash_fraction);
    EXPECT_EQ(a.upload_failures, b.upload_failures);

    // Distinct pairs get decorrelated streams: over many pairs the
    // outcomes must not all be equal.
    int offline = 0, crash = 0, failures = 0;
    for (int round = 1; round <= 20; ++round) {
        for (std::size_t client = 0; client < 20; ++client) {
            const FaultDraw d = model.draw(round, client);
            offline += d.offline ? 1 : 0;
            crash += d.crash ? 1 : 0;
            failures += d.upload_failures;
            EXPECT_GE(d.crash_fraction, 0.05);
            EXPECT_LT(d.crash_fraction, 0.95);
        }
    }
    EXPECT_GT(offline, 0);
    EXPECT_LT(offline, 400);
    EXPECT_GT(crash, 0);
    EXPECT_LT(crash, 400);
    EXPECT_GT(failures, 0);
}

TEST(FaultModel, ZeroRatesNeverFault)
{
    const FaultModel model(FaultConfig{}, 7);
    EXPECT_FALSE(model.active());
    for (int round = 1; round <= 10; ++round) {
        for (std::size_t client = 0; client < 10; ++client) {
            const FaultDraw d = model.draw(round, client);
            EXPECT_FALSE(d.offline);
            EXPECT_FALSE(d.crash);
            EXPECT_EQ(d.upload_failures, 0);
        }
    }
}

TEST(FaultModel, BackoffDoublesUntilCap)
{
    FaultConfig config;
    config.backoff_base_s = 0.5;
    config.backoff_cap_s = 3.0;
    EXPECT_DOUBLE_EQ(FaultModel::backoff(config, 0), 0.5);
    EXPECT_DOUBLE_EQ(FaultModel::backoff(config, 1), 1.0);
    EXPECT_DOUBLE_EQ(FaultModel::backoff(config, 2), 2.0);
    EXPECT_DOUBLE_EQ(FaultModel::backoff(config, 3), 3.0); // capped
    EXPECT_DOUBLE_EQ(FaultModel::backoff(config, 9), 3.0);
}

TEST(FaultConfigValidation, RejectsOutOfRangeKnobs)
{
    FaultConfig bad_rate;
    bad_rate.offline_rate = 1.5;
    EXPECT_THROW(bad_rate.validate(), util::FatalError);

    FaultConfig neg_rate;
    neg_rate.crash_rate = -0.1;
    EXPECT_THROW(neg_rate.validate(), util::FatalError);

    FaultConfig neg_retries;
    neg_retries.max_upload_retries = -1;
    EXPECT_THROW(neg_retries.validate(), util::FatalError);

    FaultConfig neg_backoff;
    neg_backoff.backoff_base_s = -1.0;
    EXPECT_THROW(neg_backoff.validate(), util::FatalError);

    // The simulator validates at construction.
    FlConfig config;
    config.n_devices = 4;
    config.train_samples = 48;
    config.test_samples = 16;
    config.faults.upload_failure_rate = 2.0;
    EXPECT_THROW(FlSimulator sim(config), util::FatalError);
}

// --- Thread invariance under faults. ------------------------------------

TEST(FaultDeterminism, FaultyRoundsBitIdenticalAcrossThreadCounts)
{
    FlSimulator serial(faultyConfig(1));
    FlSimulator parallel(faultyConfig(4));
    ASSERT_EQ(serial.threads(), 1u);
    ASSERT_EQ(parallel.threads(), 4u);

    for (int round = 0; round < 3; ++round) {
        const RoundResult a =
            serial.runRoundWithParams(GlobalParams{4, 1, 6});
        const RoundResult b =
            parallel.runRoundWithParams(GlobalParams{4, 1, 6});

        EXPECT_EQ(a.test_accuracy, b.test_accuracy);
        EXPECT_EQ(a.test_loss, b.test_loss);
        EXPECT_EQ(a.train_loss, b.train_loss);
        EXPECT_EQ(a.round_time, b.round_time);
        EXPECT_EQ(a.energy_total, b.energy_total);
        EXPECT_EQ(a.dropped_offline, b.dropped_offline);
        EXPECT_EQ(a.dropped_crashed, b.dropped_crashed);
        EXPECT_EQ(a.dropped_upload, b.dropped_upload);
        EXPECT_EQ(a.upload_retries, b.upload_retries);
        EXPECT_EQ(a.aborted, b.aborted);
        ASSERT_EQ(a.participants.size(), b.participants.size());
        for (std::size_t i = 0; i < a.participants.size(); ++i) {
            const auto &pa = a.participants[i];
            const auto &pb = b.participants[i];
            EXPECT_EQ(pa.client_id, pb.client_id);
            EXPECT_EQ(pa.dropped, pb.dropped);
            EXPECT_EQ(pa.drop_reason, pb.drop_reason);
            EXPECT_EQ(pa.train_loss, pb.train_loss);
            EXPECT_EQ(pa.cost.t_round, pb.cost.t_round);
            EXPECT_EQ(pa.cost.e_total, pb.cost.e_total);
            EXPECT_EQ(pa.update_scale, pb.update_scale);
            EXPECT_EQ(pa.upload_retries, pb.upload_retries);
        }
        // At least one fault process should actually have fired over the
        // run; asserted on the last round's cumulative counters below.
    }
    EXPECT_EQ(serial.globalModel().saveParams(),
              parallel.globalModel().saveParams());
}

// --- Quorum gate. -------------------------------------------------------

TEST(QuorumGate, AbortLeavesGlobalWeightsUntouchedButChargesEnergy)
{
    FlConfig config;
    config.n_devices = 8;
    config.train_samples = 96;
    config.test_samples = 32;
    config.seed = 11;
    config.threads = 1;
    config.faults.crash_rate = 1.0; // every participant dies mid-round
    config.faults.quorum_fraction = 0.5;

    FlSimulator sim(config);
    const std::vector<float> before = sim.globalModel().saveParams();
    const RoundResult r = sim.runRoundWithParams(GlobalParams{4, 1, 6});

    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(r.samples_aggregated, 0u);
    EXPECT_EQ(r.dropped_crashed, r.participants.size());
    EXPECT_EQ(sim.globalModel().saveParams(), before);
    // The fleet really burned energy before the abort.
    EXPECT_GT(r.energy_total, 0.0);
    for (const auto &p : r.participants) {
        EXPECT_TRUE(p.dropped);
        EXPECT_EQ(p.drop_reason, DropReason::Crashed);
        EXPECT_GT(p.cost.e_total, 0.0);
        EXPECT_GT(p.update_scale, 0.0);
        EXPECT_LT(p.update_scale, 1.0);
    }
}

TEST(QuorumGate, MetQuorumAggregatesNormally)
{
    FlConfig config;
    config.n_devices = 8;
    config.train_samples = 96;
    config.test_samples = 32;
    config.seed = 11;
    config.threads = 1;
    config.faults.crash_rate = 0.05;
    config.faults.quorum_fraction = 0.25;

    FlSimulator sim(config);
    const std::vector<float> before = sim.globalModel().saveParams();
    const RoundResult r = sim.runRoundWithParams(GlobalParams{4, 1, 6});
    EXPECT_FALSE(r.aborted);
    EXPECT_GT(r.samples_aggregated, 0u);
    EXPECT_NE(sim.globalModel().saveParams(), before);
}

// --- Retry/backoff accounting. ------------------------------------------

namespace {

/** Minimal context for exercising RetryBackoffPolicy directly. */
RoundContext
contextWithUploadFailures(int failures, device::RoundCost base_cost)
{
    static std::vector<Client> no_clients;
    RoundContext ctx;
    ctx.round = 1;
    ctx.clients = &no_clients;
    ctx.cost_const = &device::costFor(models::Workload::CnnMnist);
    ctx.param_bytes = 10000;

    ClientRoundReport p;
    p.client_id = 7;
    p.network = device::NetworkState{80.0, 0.8};
    p.cost = base_cost;
    ctx.result.participants.push_back(p);

    FaultDraw draw;
    draw.upload_failures = failures;
    ctx.faults.push_back(draw);
    return ctx;
}

} // namespace

TEST(RetryBackoffPolicy, ChargesHandComputedTimeAndEnergy)
{
    FaultConfig config;
    config.max_upload_retries = 3;
    config.backoff_base_s = 0.5;
    config.backoff_cap_s = 8.0;

    device::RoundCost base;
    base.t_comp = 10.0;
    base.t_comm = 2.0;
    base.t_round = 12.0;
    base.e_comp = 30.0;
    base.e_comm = 4.0;
    base.e_total = 34.0;

    // Two transient failures, budget three: two retransmissions, kept.
    RoundContext ctx = contextWithUploadFailures(2, base);
    RetryBackoffPolicy policy(config);
    const std::vector<FaultEvent> events = policy.apply(ctx);

    const device::TxCost tx = device::uploadCost(
        *ctx.cost_const, ctx.param_bytes,
        ctx.result.participants[0].network);
    ASSERT_GT(tx.time, 0.0);
    ASSERT_GT(tx.energy, 0.0);

    // Hand-computed: backoffs 0.5 then 1.0, one upload airtime each.
    const double extra_time = (0.5 + tx.time) + (1.0 + tx.time);
    const double extra_energy = 2.0 * tx.energy;
    const ClientRoundReport &p = ctx.result.participants[0];
    EXPECT_DOUBLE_EQ(p.cost.t_comm, 2.0 + extra_time);
    EXPECT_DOUBLE_EQ(p.cost.t_round, 12.0 + extra_time);
    EXPECT_DOUBLE_EQ(p.cost.e_comm, 4.0 + extra_energy);
    EXPECT_DOUBLE_EQ(p.cost.e_total, 34.0 + extra_energy);
    EXPECT_FALSE(p.dropped);
    EXPECT_EQ(p.upload_retries, 2);
    EXPECT_EQ(ctx.result.upload_retries, 2u);
    EXPECT_EQ(ctx.result.dropped_upload, 0u);

    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, fault::FaultKind::UploadRetry);
    EXPECT_EQ(events[0].attempt, 1);
    EXPECT_DOUBLE_EQ(events[0].backoff_s, 0.5);
    EXPECT_EQ(events[1].attempt, 2);
    EXPECT_DOUBLE_EQ(events[1].backoff_s, 1.0);
}

TEST(RetryBackoffPolicy, RetransmitsEncodedPayloadBytes)
{
    // With an Encode record present, every retransmission ships the
    // *encoded* payload: the retry airtime shrinks with the codec and the
    // retransmitted bytes land in the client's upload counter.
    FaultConfig config;
    config.max_upload_retries = 3;
    config.backoff_base_s = 0.5;
    config.backoff_cap_s = 8.0;

    device::RoundCost base;
    base.t_comm = 2.0;
    base.t_round = 2.0;
    base.e_comm = 4.0;
    base.e_total = 4.0;

    RoundContext ctx = contextWithUploadFailures(2, base);
    const std::uint64_t encoded_bytes = 2516; // e.g. int8: n + scales
    comm::CommRecord record;
    record.bytes_up = encoded_bytes;
    record.bytes_down = ctx.param_bytes;
    record.encoded = true;
    ctx.comm.push_back(record);
    ctx.result.participants[0].bytes_up = encoded_bytes;

    RetryBackoffPolicy policy(config);
    policy.apply(ctx);

    const device::TxCost full = device::uploadCost(
        *ctx.cost_const, ctx.param_bytes,
        ctx.result.participants[0].network);
    const device::TxCost enc = device::uploadCost(
        *ctx.cost_const, static_cast<std::size_t>(encoded_bytes),
        ctx.result.participants[0].network);
    ASSERT_LT(enc.time, full.time);

    // Hand-computed: backoffs 0.5 and 1.0, one *encoded* airtime each.
    const ClientRoundReport &p = ctx.result.participants[0];
    EXPECT_DOUBLE_EQ(p.cost.t_comm, 2.0 + (0.5 + enc.time) +
                                        (1.0 + enc.time));
    EXPECT_DOUBLE_EQ(p.cost.e_comm, 4.0 + 2.0 * enc.energy);
    EXPECT_EQ(p.bytes_up, encoded_bytes + 2 * encoded_bytes);
    EXPECT_EQ(p.upload_retries, 2);
}

TEST(RetryBackoffPolicy, ExhaustedRetriesDropTheUpdateButKeepTheEnergy)
{
    FaultConfig config;
    config.max_upload_retries = 2;
    config.backoff_base_s = 1.0;
    config.backoff_cap_s = 8.0;

    device::RoundCost base;
    base.t_comm = 2.0;
    base.t_round = 2.0;
    base.e_comm = 4.0;
    base.e_total = 4.0;

    // Three failures against a budget of two: both retries fail too.
    RoundContext ctx = contextWithUploadFailures(3, base);
    RetryBackoffPolicy policy(config);
    const std::vector<FaultEvent> events = policy.apply(ctx);

    const ClientRoundReport &p = ctx.result.participants[0];
    EXPECT_TRUE(p.dropped);
    EXPECT_EQ(p.drop_reason, DropReason::UploadFailed);
    EXPECT_EQ(p.upload_retries, 2);
    EXPECT_EQ(ctx.result.dropped_upload, 1u);
    EXPECT_GT(p.cost.e_total, 4.0); // retry energy stays charged
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events.back().kind, fault::FaultKind::UploadExhausted);
}

TEST(RetryBackoffPolicy, NoFaultsIsANoOp)
{
    RoundContext ctx;
    ClientRoundReport p;
    p.cost.t_round = 5.0;
    ctx.result.participants.push_back(p);
    RetryBackoffPolicy policy(FaultConfig{});
    EXPECT_TRUE(policy.apply(ctx).empty());
    EXPECT_DOUBLE_EQ(ctx.result.participants[0].cost.t_round, 5.0);
}

// --- Offline replacement and fleet exhaustion. --------------------------

TEST(OfflineFaults, FullyOfflineFleetAbortsGracefully)
{
    FlConfig config;
    config.n_devices = 8;
    config.train_samples = 96;
    config.test_samples = 32;
    config.seed = 11;
    config.threads = 1;
    config.faults.offline_rate = 1.0; // nobody answers, ever

    FlSimulator sim(config);
    const std::vector<float> before = sim.globalModel().saveParams();
    const RoundResult r = sim.runRoundWithParams(GlobalParams{4, 1, 6});

    // Selection drew 6, then replacement exhausted the remaining fleet:
    // every device was tried and found offline.
    EXPECT_EQ(r.dropped_offline, config.n_devices);
    EXPECT_EQ(r.participants.size(), config.n_devices);
    for (const auto &p : r.participants) {
        EXPECT_TRUE(p.dropped);
        EXPECT_EQ(p.drop_reason, DropReason::Offline);
        EXPECT_DOUBLE_EQ(p.cost.e_total, 0.0);
        EXPECT_DOUBLE_EQ(p.update_scale, 0.0);
    }
    EXPECT_EQ(r.samples_aggregated, 0u);
    EXPECT_EQ(sim.globalModel().saveParams(), before);
}

TEST(OfflineFaults, ReplacementsKeepTheRoundPopulated)
{
    FlConfig config;
    config.n_devices = 8;
    config.train_samples = 96;
    config.test_samples = 32;
    config.seed = 11;
    config.threads = 1;
    config.faults.offline_rate = 0.4;

    FlSimulator sim(config);
    bool saw_offline = false;
    for (int round = 0; round < 5; ++round) {
        const RoundResult r = sim.runRoundWithParams(GlobalParams{4, 1, 6});
        if (r.dropped_offline == 0)
            continue;
        saw_offline = true;
        // Every offline drop either found a replacement (participants
        // grew past the requested 6) or the fleet ran out.
        EXPECT_GE(r.participants.size(), 6u);
        std::size_t kept = 0;
        for (const auto &p : r.participants)
            if (!p.dropped)
                ++kept;
        EXPECT_EQ(kept + r.droppedCount(), r.participants.size());
    }
    EXPECT_TRUE(saw_offline);
}

// --- Simulator boundary validation. -------------------------------------

TEST(SimulatorValidation, RejectsNonPositiveBatchAndEpochs)
{
    FlConfig config;
    config.n_devices = 4;
    config.train_samples = 48;
    config.test_samples = 16;
    config.threads = 1;
    FlSimulator sim(config);
    EXPECT_THROW(sim.runRoundWithParams(GlobalParams{0, 1, 2}),
                 util::FatalError);
    EXPECT_THROW(sim.runRoundWithParams(GlobalParams{4, 0, 2}),
                 util::FatalError);
    EXPECT_THROW(sim.runRoundWithParams(GlobalParams{-4, 1, 2}),
                 util::FatalError);
}

TEST(SimulatorValidation, OversizedCohortClampsToFleet)
{
    FlConfig config;
    config.n_devices = 4;
    config.train_samples = 48;
    config.test_samples = 16;
    config.threads = 1;
    FlSimulator sim(config);
    const RoundResult r = sim.runRoundWithParams(GlobalParams{4, 1, 100});
    EXPECT_EQ(r.participants.size(), 4u);
}

TEST(RuntimeConfig, MalformedThreadsEnvFallsBack)
{
    ::setenv("FEDGPO_THREADS", "not-a-number", 1);
    const std::size_t resolved = runtime::resolveThreads(0);
    ::unsetenv("FEDGPO_THREADS");
    EXPECT_GE(resolved, 1u);
    // An explicit request still wins regardless of the environment.
    EXPECT_EQ(runtime::resolveThreads(3), 3u);
}
