/**
 * @file
 * Tests for the workload model zoo: geometry, layer census (the NN
 * component of FedGPO's state), FLOP ordering, and determinism.
 */

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/zoo.h"

namespace fedgpo {
namespace models {
namespace {

TEST(Zoo, Names)
{
    EXPECT_EQ(workloadName(Workload::CnnMnist), "CNN-MNIST");
    EXPECT_EQ(workloadName(Workload::LstmShakespeare), "LSTM-Shakespeare");
    EXPECT_EQ(workloadName(Workload::MobileNetImageNet),
              "MobileNet-ImageNet");
}

TEST(Zoo, CensusPerWorkload)
{
    auto cnn = buildModel(Workload::CnnMnist, 1);
    EXPECT_EQ(cnn->census().conv, 2u);
    EXPECT_EQ(cnn->census().dense, 2u);
    EXPECT_EQ(cnn->census().recurrent, 0u);

    auto lstm = buildModel(Workload::LstmShakespeare, 1);
    EXPECT_EQ(lstm->census().conv, 0u);
    EXPECT_EQ(lstm->census().dense, 1u);
    EXPECT_EQ(lstm->census().recurrent, 1u);

    auto mobilenet = buildModel(Workload::MobileNetImageNet, 1);
    EXPECT_EQ(mobilenet->census().conv, 5u);  // 3 std + 2 depthwise
    EXPECT_EQ(mobilenet->census().dense, 1u);
    EXPECT_EQ(mobilenet->census().recurrent, 0u);
}

TEST(Zoo, SameSeedSameWeights)
{
    auto a = buildModel(Workload::CnnMnist, 42);
    auto b = buildModel(Workload::CnnMnist, 42);
    EXPECT_EQ(a->saveParams(), b->saveParams());
    auto c = buildModel(Workload::CnnMnist, 43);
    EXPECT_NE(a->saveParams(), c->saveParams());
}

TEST(Zoo, ForwardShapesMatchDatasets)
{
    for (auto w : kAllWorkloads) {
        util::Rng rng(2);
        data::Dataset ds = [&]() {
            switch (w) {
              case Workload::CnnMnist:
                return data::makeSyntheticMnist(8, rng);
              case Workload::LstmShakespeare:
                return data::makeSyntheticShakespeare(8, rng);
              default:
                return data::makeSyntheticImageNet(8, rng);
            }
        }();
        EXPECT_EQ(ds.sampleShape(), sampleShape(w))
            << workloadName(w);
        EXPECT_EQ(ds.numClasses(), numClasses(w)) << workloadName(w);

        auto model = buildModel(w, 3);
        tensor::Tensor batch;
        std::vector<int> labels;
        ds.gather({0, 1, 2}, batch, labels);
        const auto &logits = model->forward(batch);
        ASSERT_EQ(logits.ndim(), 2u);
        EXPECT_EQ(logits.dim(0), 3u);
        EXPECT_EQ(logits.dim(1), numClasses(w));
    }
}

TEST(Zoo, FlopsPositiveAndDistinct)
{
    auto cnn = buildModel(Workload::CnnMnist, 1);
    auto lstm = buildModel(Workload::LstmShakespeare, 1);
    auto mobilenet = buildModel(Workload::MobileNetImageNet, 1);
    EXPECT_GT(cnn->forwardFlopsPerSample(), 0u);
    EXPECT_GT(lstm->forwardFlopsPerSample(), 0u);
    EXPECT_GT(mobilenet->forwardFlopsPerSample(), 0u);
}

TEST(Zoo, LearningRatesPositive)
{
    for (auto w : kAllWorkloads)
        EXPECT_GT(defaultLearningRate(w), 0.0);
}

TEST(Zoo, LstmGeometryConstants)
{
    EXPECT_EQ(lstmSeqLen(), 16u);
    EXPECT_EQ(lstmVocab(), 28u);
    EXPECT_EQ(numClasses(Workload::LstmShakespeare), lstmVocab());
}

} // namespace
} // namespace models
} // namespace fedgpo
