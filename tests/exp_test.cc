/**
 * @file
 * Tests for the scenario/campaign harness.
 */

#include <gtest/gtest.h>

#include "core/fedgpo.h"
#include "exp/campaign.h"
#include "exp/scenario.h"
#include "optim/fixed.h"

namespace fedgpo {
namespace exp {
namespace {

Scenario
tinyScenario()
{
    Scenario s;
    s.workload = models::Workload::CnnMnist;
    s.n_devices = 10;
    s.train_samples = 200;
    s.test_samples = 60;
    s.rounds = 6;
    s.seed = 3;
    return s;
}

TEST(Scenario, VarianceMapsToFlConfig)
{
    Scenario s = tinyScenario();
    s.variance = Variance::Interference;
    auto c = s.toFlConfig();
    EXPECT_TRUE(c.interference);
    EXPECT_FALSE(c.network_unstable);
    s.variance = Variance::Network;
    c = s.toFlConfig();
    EXPECT_FALSE(c.interference);
    EXPECT_TRUE(c.network_unstable);
    s.variance = Variance::Both;
    c = s.toFlConfig();
    EXPECT_TRUE(c.interference);
    EXPECT_TRUE(c.network_unstable);
}

TEST(Scenario, NamesAreDescriptive)
{
    auto s = makeScenario(models::Workload::LstmShakespeare,
                          Variance::Network, data::Distribution::NonIid);
    EXPECT_NE(s.name.find("LSTM-Shakespeare"), std::string::npos);
    EXPECT_NE(s.name.find("unstable network"), std::string::npos);
    EXPECT_NE(s.name.find("non-IID"), std::string::npos);
}

TEST(Campaign, FixedRunAccumulatesConsistently)
{
    Scenario s = tinyScenario();
    auto r = runCampaignFixed(s, fl::GlobalParams{8, 2, 5}, 6);
    EXPECT_EQ(r.accuracy.size(), 6u);
    EXPECT_EQ(r.round_time.size(), 6u);
    double sum_e = 0.0, sum_t = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
        sum_e += r.round_energy[i];
        sum_t += r.round_time[i];
    }
    EXPECT_NEAR(r.total_energy, sum_e, 1e-9);
    EXPECT_NEAR(r.total_time, sum_t, 1e-9);
    EXPECT_NEAR(r.avg_round_time, sum_t / 6.0, 1e-9);
    EXPECT_GT(r.final_accuracy, 0.0);
    EXPECT_GE(r.best_accuracy, r.final_accuracy);
}

TEST(Campaign, PolicyRunRecordsPolicyName)
{
    Scenario s = tinyScenario();
    core::FedGpo policy;
    auto r = runCampaign(s, policy, 4);
    EXPECT_EQ(r.policy, "FedGPO");
    EXPECT_EQ(r.accuracy.size(), 4u);
}

TEST(Campaign, PpwUsesConvergenceEnergyWhenConverged)
{
    CampaignResult r;
    r.total_energy = 1000.0;
    r.converged_round = 5;
    r.energy_to_convergence = 400.0;
    EXPECT_DOUBLE_EQ(r.ppw(), 1.0 / 400.0);
    r.converged_round = -1;
    EXPECT_DOUBLE_EQ(r.ppw(), 1.0 / 1000.0);
}

TEST(Campaign, SpeedupComparesConvergenceTimes)
{
    CampaignResult fast, slow;
    fast.converged_round = 3;
    fast.time_to_convergence = 100.0;
    slow.converged_round = 6;
    slow.time_to_convergence = 250.0;
    EXPECT_DOUBLE_EQ(fast.speedupOver(slow), 2.5);
}

TEST(Campaign, EnergyByCategorySumsToParticipantEnergy)
{
    Scenario s = tinyScenario();
    auto r = runCampaignFixed(s, fl::GlobalParams{8, 2, 8}, 3);
    const double by_cat = r.energy_by_category[0] +
                          r.energy_by_category[1] +
                          r.energy_by_category[2];
    EXPECT_GT(by_cat, 0.0);
    EXPECT_LE(by_cat, r.total_energy + 1e-9);
}

TEST(Campaign, DeterministicAcrossRuns)
{
    Scenario s = tinyScenario();
    auto a = runCampaignFixed(s, fl::GlobalParams{8, 2, 5}, 4);
    auto b = runCampaignFixed(s, fl::GlobalParams{8, 2, 5}, 4);
    EXPECT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.round_energy, b.round_energy);
}

TEST(GridSearch, ReturnsMemberOfGrid)
{
    Scenario s = tinyScenario();
    std::vector<fl::GlobalParams> grid = {
        {8, 2, 5}, {16, 1, 5}, {4, 5, 5}};
    auto best = gridSearchBestFixed(s, grid, 3);
    bool found = false;
    for (const auto &g : grid)
        found |= g == best;
    EXPECT_TRUE(found);
}

TEST(CoarseGrid, CoversPaperRegion)
{
    auto grid = coarseGrid();
    EXPECT_EQ(grid.size(), 18u);
    bool has_paper_best = false;
    for (const auto &g : grid)
        has_paper_best |= g == fl::GlobalParams{8, 10, 20};
    EXPECT_TRUE(has_paper_best);
}

} // namespace
} // namespace exp
} // namespace fedgpo
