/**
 * @file
 * Unit tests for the Tensor container and kernels in tensor/ops.h.
 */

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fedgpo {
namespace tensor {
namespace {

TEST(Shape, NumelAndString)
{
    EXPECT_EQ(shapeNumel({2, 3, 4}), 24u);
    EXPECT_EQ(shapeNumel({}), 1u);
    EXPECT_EQ(shapeToString({2, 3}), "[2, 3]");
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6u);
    for (std::size_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor)
{
    Tensor t({4}, 2.5f);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, DataConstructorValidatesSize)
{
    EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
    EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
                 util::FatalError);
}

TEST(Tensor, At2d)
{
    Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    EXPECT_EQ(t.at(0, 0), 1.0f);
    EXPECT_EQ(t.at(1, 2), 6.0f);
    t.at(1, 0) = 9.0f;
    EXPECT_EQ(t[3], 9.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    t.reshape({3, 2});
    EXPECT_EQ(t.dim(0), 3u);
    EXPECT_EQ(t[4], 5.0f);
    EXPECT_THROW(t.reshape({4, 2}), util::FatalError);
}

TEST(Tensor, ElementwiseArithmetic)
{
    Tensor a({3}, std::vector<float>{1, 2, 3});
    Tensor b({3}, std::vector<float>{10, 20, 30});
    a += b;
    EXPECT_EQ(a[2], 33.0f);
    a -= b;
    EXPECT_EQ(a[2], 3.0f);
    a *= 2.0f;
    EXPECT_EQ(a[0], 2.0f);
    a.addScaled(b, 0.1f);
    EXPECT_NEAR(a[1], 6.0f, 1e-6);
}

TEST(Tensor, SumAndNorm)
{
    Tensor t({4}, std::vector<float>{1, -2, 3, -4});
    EXPECT_DOUBLE_EQ(t.sum(), -2.0);
    EXPECT_DOUBLE_EQ(t.squaredNorm(), 30.0);
}

TEST(Matmul, KnownProduct)
{
    Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
    Tensor c;
    matmul(a, b, c);
    ASSERT_EQ(c.shape(), (Shape{2, 2}));
    EXPECT_EQ(c.at(0, 0), 58.0f);
    EXPECT_EQ(c.at(0, 1), 64.0f);
    EXPECT_EQ(c.at(1, 0), 139.0f);
    EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, TransAMatchesExplicitTranspose)
{
    util::Rng rng(3);
    Tensor a({4, 3});
    Tensor b({4, 5});
    for (std::size_t i = 0; i < a.numel(); ++i)
        a[i] = static_cast<float>(rng.uniform(-1, 1));
    for (std::size_t i = 0; i < b.numel(); ++i)
        b[i] = static_cast<float>(rng.uniform(-1, 1));
    // Explicit transpose of a.
    Tensor at({3, 4});
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            at.at(j, i) = a.at(i, j);
    Tensor expect, got;
    matmul(at, b, expect);
    matmulTransA(a, b, got);
    ASSERT_EQ(expect.shape(), got.shape());
    for (std::size_t i = 0; i < expect.numel(); ++i)
        EXPECT_NEAR(expect[i], got[i], 1e-5);
}

TEST(Matmul, TransBMatchesExplicitTranspose)
{
    util::Rng rng(4);
    Tensor a({3, 4});
    Tensor b({5, 4});
    for (std::size_t i = 0; i < a.numel(); ++i)
        a[i] = static_cast<float>(rng.uniform(-1, 1));
    for (std::size_t i = 0; i < b.numel(); ++i)
        b[i] = static_cast<float>(rng.uniform(-1, 1));
    Tensor bt({4, 5});
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            bt.at(j, i) = b.at(i, j);
    Tensor expect, got;
    matmul(a, bt, expect);
    matmulTransB(a, b, got);
    ASSERT_EQ(expect.shape(), got.shape());
    for (std::size_t i = 0; i < expect.numel(); ++i)
        EXPECT_NEAR(expect[i], got[i], 1e-5);
}

TEST(Matmul, AccumAddsOntoExisting)
{
    Tensor a({1, 2}, std::vector<float>{1, 1});
    Tensor b({2, 1}, std::vector<float>{2, 3});
    Tensor c({1, 1}, std::vector<float>{10});
    matmulAccum(a, b, c);
    EXPECT_EQ(c[0], 15.0f);
}

TEST(ConvExtent, Formula)
{
    EXPECT_EQ(convOutExtent(16, 3, 1, 1), 16u);
    EXPECT_EQ(convOutExtent(16, 3, 1, 0), 14u);
    EXPECT_EQ(convOutExtent(7, 3, 2, 0), 3u);
    EXPECT_EQ(convOutExtent(8, 2, 2, 0), 4u);
}

TEST(Im2col, IdentityKernelReproducesInput)
{
    // 1x1 kernel, stride 1, no pad: columns are just the input pixels.
    Tensor x({1, 2, 3, 3});
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(i);
    Tensor cols;
    im2col(x, 1, 1, 1, 0, cols);
    ASSERT_EQ(cols.shape(), (Shape{9, 2}));
    // Column c of row (y*3+x) should be input channel c at (y, x).
    EXPECT_EQ(cols.at(0, 0), 0.0f);
    EXPECT_EQ(cols.at(0, 1), 9.0f);
    EXPECT_EQ(cols.at(8, 0), 8.0f);
    EXPECT_EQ(cols.at(8, 1), 17.0f);
}

TEST(Im2col, PaddingProducesZeros)
{
    Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
    Tensor cols;
    im2col(x, 3, 3, 1, 1, cols);
    ASSERT_EQ(cols.shape(), (Shape{4, 9}));
    // Top-left output position: the first row/col of the 3x3 window is
    // padding.
    EXPECT_EQ(cols.at(0, 0), 0.0f);
    EXPECT_EQ(cols.at(0, 4), 1.0f);  // center = pixel (0,0)
    EXPECT_EQ(cols.at(0, 5), 2.0f);
    EXPECT_EQ(cols.at(0, 8), 4.0f);
}

TEST(Im2colCol2im, AdjointProperty)
{
    // col2im is the transpose of im2col as a linear map:
    // <im2col(x), y> == <x, col2im(y)> for all x, y.
    util::Rng rng(5);
    Tensor x({2, 2, 5, 5});
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1, 1));
    Tensor cols;
    im2col(x, 3, 3, 2, 1, cols);
    Tensor y(cols.shape());
    for (std::size_t i = 0; i < y.numel(); ++i)
        y[i] = static_cast<float>(rng.uniform(-1, 1));
    Tensor back({2, 2, 5, 5});
    col2im(y, 3, 3, 2, 1, back);

    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < cols.numel(); ++i)
        lhs += static_cast<double>(cols[i]) * y[i];
    for (std::size_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x[i]) * back[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

} // namespace
} // namespace tensor
} // namespace fedgpo
