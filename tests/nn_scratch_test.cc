/**
 * @file
 * Steady-state allocation tests for the NN hot path.
 *
 * The training loop calls forward/backward thousands of times per round;
 * the layers promise that after a warm-up call with a given batch shape,
 * subsequent calls reuse every scratch buffer (persistent dw_step members,
 * the LSTM step caches, the GEMM pack panel) and perform zero heap
 * allocations. This binary replaces global operator new/delete with a
 * counting shim and asserts exactly that.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>

#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using fedgpo::tensor::Tensor;
namespace nn = fedgpo::nn;

std::uint64_t
allocsDuring(const std::function<void()> &fn)
{
    const std::uint64_t before =
        g_alloc_count.load(std::memory_order_relaxed);
    fn();
    return g_alloc_count.load(std::memory_order_relaxed) - before;
}

TEST(SteadyStateAllocs, MatmulReusesOutputAndPackPanel)
{
    Tensor a({16, 24}), b({24, 12}), c;
    a.fill(0.5f);
    b.fill(0.25f);
    fedgpo::tensor::matmul(a, b, c); // warm-up: sizes c, grows the panel
    const std::uint64_t n =
        allocsDuring([&] { fedgpo::tensor::matmul(a, b, c); });
    EXPECT_EQ(n, 0u);
}

TEST(SteadyStateAllocs, DenseForwardBackwardAllocationFree)
{
    fedgpo::util::Rng rng(21);
    nn::Dense layer(24, 12, rng);
    Tensor x({8, 24}, 0.5f);
    Tensor dy({8, 12}, 1.0f);
    layer.forward(x, true);
    layer.backward(dy);
    const std::uint64_t n = allocsDuring([&] {
        layer.forward(x, true);
        layer.backward(dy);
    });
    EXPECT_EQ(n, 0u);
}

TEST(SteadyStateAllocs, Conv2DForwardBackwardAllocationFree)
{
    fedgpo::util::Rng rng(22);
    nn::Conv2D layer(3, 8, 3, 10, 10, 2, 1, rng);
    Tensor x({4, 3, 10, 10}, 0.5f);
    layer.forward(x, true);
    Tensor dy({4, 8, layer.outHeight(), layer.outWidth()}, 1.0f);
    layer.backward(dy);
    const std::uint64_t n = allocsDuring([&] {
        layer.forward(x, true);
        layer.backward(dy);
    });
    EXPECT_EQ(n, 0u);
}

TEST(SteadyStateAllocs, LstmForwardBackwardAllocationFree)
{
    fedgpo::util::Rng rng(23);
    nn::LSTM layer(12, 16, 6, rng);
    Tensor x({4, 6, 12}, 0.5f);
    Tensor dy({4, 16}, 1.0f);
    layer.forward(x, true);
    layer.backward(dy);
    const std::uint64_t n = allocsDuring([&] {
        layer.forward(x, true);
        layer.backward(dy);
    });
    EXPECT_EQ(n, 0u);
}

TEST(SteadyStateAllocs, LstmReallocatesOnlyOnBatchShapeChange)
{
    fedgpo::util::Rng rng(24);
    nn::LSTM layer(8, 8, 4, rng);
    Tensor x4({4, 4, 8}, 0.5f);
    Tensor x2({2, 4, 8}, 0.5f);
    layer.forward(x4, true);
    // Shrinking the batch rebuilds the caches...
    const std::uint64_t shrink =
        allocsDuring([&] { layer.forward(x2, true); });
    EXPECT_GT(shrink, 0u);
    // ...but repeating the same shape is free again.
    const std::uint64_t repeat =
        allocsDuring([&] { layer.forward(x2, true); });
    EXPECT_EQ(repeat, 0u);
}

} // namespace
