/**
 * @file
 * Unit tests for table/CSV formatting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/table.h"

namespace fedgpo {
namespace util {
namespace {

TEST(Fmt, FixedDecimals)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, RatioAndPercent)
{
    EXPECT_EQ(fmtX(3.6), "3.6x");
    EXPECT_EQ(fmtPct(0.947), "94.7%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(Table, PrintAlignsColumns)
{
    Table t({"name", "v"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os, "Title");
    const std::string s = os.str();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Header and both rows plus separator.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(Table, RowCount)
{
    Table t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"x"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvRoundTrip)
{
    Table t({"x", "y"});
    t.addRow({"1", "plain"});
    t.addRow({"2", "with,comma"});
    t.addRow({"3", "with\"quote"});
    const std::string path = "/tmp/fedgpo_table_test.csv";
    ASSERT_TRUE(t.writeCsv(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,plain");
    std::getline(in, line);
    EXPECT_EQ(line, "2,\"with,comma\"");
    std::getline(in, line);
    EXPECT_EQ(line, "3,\"with\"\"quote\"");
    std::remove(path.c_str());
}

TEST(Table, CsvToUnwritablePathFails)
{
    Table t({"a"});
    EXPECT_FALSE(t.writeCsv("/nonexistent_dir_xyz/out.csv"));
}

} // namespace
} // namespace util
} // namespace fedgpo
