/**
 * @file
 * Tests for the FedGPO policy itself: decision plumbing, Table 2
 * compliance, learning behaviour on a synthetic bandit, and the memory
 * footprint claim of Section 5.4.
 */

#include <gtest/gtest.h>

#include "core/fedgpo.h"

namespace fedgpo {
namespace core {
namespace {

nn::LayerCensus
cnnCensus()
{
    nn::LayerCensus census;
    census.conv = 2;
    census.dense = 2;
    return census;
}

fl::DeviceObservation
makeObs(std::size_t id, device::Category cat, double co_cpu = 0.0,
        double bw = 80.0, std::size_t classes = 10)
{
    fl::DeviceObservation obs;
    obs.client_id = id;
    obs.category = cat;
    obs.interference.co_cpu = co_cpu;
    obs.network.bandwidth_mbps = bw;
    obs.data_classes = classes;
    obs.total_classes = 10;
    obs.shard_size = 30;
    return obs;
}

fl::RoundResult
makeResult(const std::vector<fl::PerDeviceParams> &params,
           const std::vector<fl::DeviceObservation> &devices,
           double accuracy, double energy_per_device)
{
    fl::RoundResult r;
    r.test_accuracy = accuracy;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        fl::ClientRoundReport report;
        report.client_id = devices[i].client_id;
        report.category = devices[i].category;
        report.params = params[i];
        report.cost.e_total = energy_per_device;
        report.samples = 30;
        r.participants.push_back(report);
        r.energy_participants += energy_per_device;
    }
    r.energy_total = r.energy_participants;
    return r;
}

TEST(FedGpo, ChooseClientsWithinTable2AndFleet)
{
    FedGpo policy;
    for (int i = 0; i < 20; ++i) {
        const int k = policy.chooseClients(200);
        bool in_set = false;
        for (int v : kClientSet)
            in_set |= v == k;
        EXPECT_TRUE(in_set) << k;
    }
    EXPECT_LE(policy.chooseClients(3), 3);
}

TEST(FedGpo, AssignReturnsTable2ParamsPerDevice)
{
    FedGpo policy;
    std::vector<fl::DeviceObservation> devices = {
        makeObs(0, device::Category::High),
        makeObs(1, device::Category::Mid),
        makeObs(2, device::Category::Low),
    };
    auto params = policy.assign(devices, cnnCensus());
    ASSERT_EQ(params.size(), 3u);
    for (const auto &p : params)
        EXPECT_NO_THROW(deviceActionIndex(p));
}

TEST(FedGpo, FeedbackUpdatesTables)
{
    FedGpo policy;
    std::vector<fl::DeviceObservation> devices = {
        makeObs(0, device::Category::High)};
    policy.chooseClients(40);
    auto params = policy.assign(devices, cnnCensus());
    const auto before = policy.categoryTable(device::Category::High)
                            .updates();
    policy.feedback(makeResult(params, devices, 0.5, 100.0));
    EXPECT_EQ(policy.categoryTable(device::Category::High).updates(),
              before + 1);
    EXPECT_EQ(policy.clientTable().updates(), 1u);
    EXPECT_EQ(policy.roundsSeen(), 1u);
}

TEST(FedGpo, QTableMemoryIsSmall)
{
    FedGpo policy;
    // 3 category tables (2304 x 30) + K table (24 x 5): a double Q value
    // and a uint32 visit counter per cell.
    const std::size_t per_cell = sizeof(double) + sizeof(std::uint32_t);
    const std::size_t expected =
        3 * kNumStates * kNumDeviceActions * per_cell +
        kNumGlobalStates * kNumClientActions * per_cell;
    EXPECT_EQ(policy.qTableBytes(), expected);
    EXPECT_LT(policy.qTableBytes(), 4u * 1024u * 1024u)
        << "Section 5.4 reports sub-MB tables; ours must stay small too";
}

TEST(FedGpo, LearnsToAvoidStragglerAction)
{
    // Synthetic bandit: the environment punishes (B=1, E=20)-style heavy
    // epochs on the Low tier with huge energy; FedGPO should learn to
    // stop choosing high-E actions for that state.
    FedGpoConfig config;
    config.seed = 3;
    FedGpo policy(config);
    auto census = cnnCensus();
    std::vector<fl::DeviceObservation> devices = {
        makeObs(0, device::Category::Low)};

    double acc = 0.10;
    for (int round = 0; round < 300; ++round) {
        policy.chooseClients(40);
        auto params = policy.assign(devices, census);
        // Energy grows with E; accuracy improves slightly regardless.
        const double energy = 10.0 * params[0].epochs;
        acc = std::min(0.99, acc + 0.002);
        policy.feedback(makeResult(params, devices, acc, energy));
    }
    // After learning, the greedy action for this state should be cheap.
    int heavy = 0;
    for (int i = 0; i < 50; ++i) {
        policy.chooseClients(40);
        auto params = policy.assign(devices, census);
        if (params[0].epochs >= 15)
            ++heavy;
        acc = std::min(0.99, acc + 0.001);
        policy.feedback(makeResult(params, devices,
                                   acc, 10.0 * params[0].epochs));
    }
    // Epsilon-greedy keeps ~10% exploration; greedy choices must be light.
    EXPECT_LT(heavy, 15);
}

TEST(FedGpo, LearningDeltaShrinksAsRewardStabilizes)
{
    FedGpoConfig config;
    config.seed = 5;
    config.epsilon = 0.0;  // pure exploitation for a clean signal
    FedGpo policy(config);
    auto census = cnnCensus();
    std::vector<fl::DeviceObservation> devices = {
        makeObs(0, device::Category::Mid)};
    double first_delta = 0.0;
    for (int round = 0; round < 120; ++round) {
        policy.chooseClients(40);
        auto params = policy.assign(devices, census);
        policy.feedback(makeResult(params, devices, 0.9, 50.0));
        if (round == 5)
            first_delta = policy.learningDelta();
    }
    EXPECT_LT(policy.learningDelta(), first_delta);
}

TEST(FedGpo, DistinctStatesLearnedIndependently)
{
    // Reward depends on the network bucket only; after training, the
    // greedy actions for the two states should differ in cost.
    FedGpoConfig config;
    config.seed = 7;
    FedGpo policy(config);
    auto census = cnnCensus();
    auto good_net = makeObs(0, device::Category::High, 0.0, 100.0);
    auto bad_net = makeObs(1, device::Category::High, 0.0, 10.0);

    double acc = 0.1;
    for (int round = 0; round < 400; ++round) {
        policy.chooseClients(40);
        auto obs = round % 2 == 0 ? good_net : bad_net;
        auto params = policy.assign({obs}, census);
        // Bad network punishes high E harder (stragglers), good network
        // punishes tiny E (communication amortization).
        const bool bad = round % 2 != 0;
        const double energy =
            bad ? 20.0 * params[0].epochs
                : 300.0 / std::max(1, params[0].epochs);
        acc = std::min(0.99, acc + 0.001);
        policy.feedback(makeResult({params[0]}, {obs}, acc, energy));
    }
    // Compare greedy E choices under epsilon ~ 0 by sampling repeatedly.
    int good_e = 0, bad_e = 0, trials = 30;
    for (int i = 0; i < trials; ++i) {
        policy.chooseClients(40);
        auto pg = policy.assign({good_net}, census);
        good_e += pg[0].epochs;
        acc = std::min(0.99, acc + 0.0005);
        policy.feedback(makeResult({pg[0]}, {good_net}, acc,
                                   300.0 / std::max(1, pg[0].epochs)));
        policy.chooseClients(40);
        auto pb = policy.assign({bad_net}, census);
        bad_e += pb[0].epochs;
        acc = std::min(0.99, acc + 0.0005);
        policy.feedback(makeResult({pb[0]}, {bad_net}, acc,
                                   20.0 * pb[0].epochs));
    }
    EXPECT_GT(good_e, bad_e) << "good-network state should prefer larger E";
}

} // namespace
} // namespace core
} // namespace fedgpo
