/**
 * @file
 * Unit tests for the obs metrics subsystem: primitives, level gating,
 * registry lifecycle, timers, and the exporters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace fedgpo {
namespace obs {
namespace {

/** Every test starts from an empty registry at level Off. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        MetricsRegistry::instance().reset();
        setLevel(Level::Off);
    }
    void TearDown() override
    {
        setLevel(Level::Off);
        MetricsRegistry::instance().reset();
    }
};

TEST_F(ObsTest, CounterAccumulates)
{
    Counter c;
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST_F(ObsTest, GaugeKeepsLastValue)
{
    Gauge g;
    g.set(1.5);
    g.set(-2.25);
    EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(ObsTest, HistogramBucketsAreCumulative)
{
    Histogram h({1.0, 10.0, 100.0});
    h.add(0.5);   // <= 1
    h.add(5.0);   // <= 10
    h.add(50.0);  // <= 100
    h.add(500.0); // +inf only
    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.bounds.size(), 3u);
    ASSERT_EQ(snap.bucket_counts.size(), 4u); // 3 bounds + inf
    EXPECT_EQ(snap.bucket_counts[0], 1u);
    EXPECT_EQ(snap.bucket_counts[1], 2u);
    EXPECT_EQ(snap.bucket_counts[2], 3u);
    EXPECT_EQ(snap.bucket_counts[3], 4u);
    EXPECT_EQ(snap.stat.count(), 4u);
    EXPECT_DOUBLE_EQ(snap.stat.min(), 0.5);
    EXPECT_DOUBLE_EQ(snap.stat.max(), 500.0);
}

TEST_F(ObsTest, HistogramMergesConcurrentWriters)
{
    Histogram h({10.0, 1000.0});
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i)
                h.add(static_cast<double>(i % 100));
        });
    }
    for (std::thread &w : workers)
        w.join();
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.stat.count(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(snap.stat.min(), 0.0);
    EXPECT_DOUBLE_EQ(snap.stat.max(), 99.0);
    // Mean of 0..99 uniform is 49.5; exact because every thread adds the
    // same multiset.
    EXPECT_NEAR(snap.stat.mean(), 49.5, 1e-9);
    EXPECT_EQ(snap.bucket_counts.back(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, CountersAreThreadSafe)
{
    Counter *c = MetricsRegistry::instance().counter("test.threads");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([c] {
            for (int i = 0; i < kPerThread; ++i)
                c->add();
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(c->value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, RegistryReturnsStablePointers)
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    EXPECT_EQ(reg.counter("a"), reg.counter("a"));
    EXPECT_EQ(reg.gauge("b"), reg.gauge("b"));
    EXPECT_EQ(reg.span("c.d"), reg.span("c.d"));
    EXPECT_EQ(reg.histogram("h", {1.0}), reg.histogram("h", {2.0, 3.0}));
    EXPECT_NE(reg.counter("a"), reg.counter("a2"));
}

TEST_F(ObsTest, LevelGatingReturnsNullBelowThreshold)
{
    setLevel(Level::Off);
    EXPECT_EQ(spanIf(Level::Basic, "x"), nullptr);
    EXPECT_EQ(counterIf(Level::Basic, "x"), nullptr);
    EXPECT_EQ(gaugeIf(Level::Basic, "x"), nullptr);
    EXPECT_EQ(histogramIf(Level::Basic, "x", {1.0}), nullptr);

    setLevel(Level::Basic);
    EXPECT_NE(counterIf(Level::Basic, "x"), nullptr);
    EXPECT_EQ(spanIf(Level::Profile, "y"), nullptr) << "basic < profile";

    setLevel(Level::Profile);
    EXPECT_NE(spanIf(Level::Profile, "y"), nullptr);
}

TEST_F(ObsTest, ScopedLevelRestores)
{
    setLevel(Level::Off);
    {
        ScopedLevel scoped(Level::Profile);
        EXPECT_TRUE(enabled(Level::Profile));
    }
    EXPECT_FALSE(enabled(Level::Basic));
}

TEST_F(ObsTest, NullSafeHelpersIgnoreNull)
{
    addCount(nullptr);
    addSpanMs(nullptr, 5.0);
    ScopedTimer timer(nullptr); // must not touch the clock or crash
    setLevel(Level::Off);
    count("never.registered"); // gated off: registers nothing
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    EXPECT_TRUE(snap.counters.empty());
}

TEST_F(ObsTest, ScopedTimerAccumulatesIntoSpan)
{
    SpanNode node("timed");
    {
        ScopedTimer timer(&node);
        // Spin a little so the delta cannot round to zero on a coarse
        // clock.
        std::atomic<int> sink{0};
        for (int i = 0; i < 100000; ++i)
            sink.fetch_add(1, std::memory_order_relaxed);
    }
    EXPECT_EQ(node.count.load(), 1u);
    EXPECT_GT(node.ns.load(), 0u);
}

TEST_F(ObsTest, AddSpanMsConverts)
{
    SpanNode node("external");
    addSpanMs(&node, 2.5);
    addSpanMs(&node, -1.0); // negative durations dropped
    EXPECT_EQ(node.count.load(), 1u);
    EXPECT_EQ(node.ns.load(), 2'500'000u);
}

TEST_F(ObsTest, SnapshotIsNameSortedAndComplete)
{
    setLevel(Level::Basic);
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.counter("z.last")->add(3);
    reg.counter("a.first")->add(1);
    reg.gauge("g")->set(7.0);
    reg.span("round.train")->addNs(1'000'000);
    reg.histogram("lat", {1.0})->add(0.5);

    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "a.first");
    EXPECT_EQ(snap.counters[0].second, 1u);
    EXPECT_EQ(snap.counters[1].first, "z.last");
    ASSERT_EQ(snap.spans.size(), 1u);
    EXPECT_EQ(snap.spans[0].name, "round.train");
    EXPECT_EQ(snap.spans[0].count, 1u);
    EXPECT_DOUBLE_EQ(snap.spans[0].total_ms, 1.0);
    ASSERT_EQ(snap.gauges.size(), 1u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_GE(snap.uptime_s, 0.0);
}

TEST_F(ObsTest, ResetDropsEverything)
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.counter("gone")->add(5);
    reg.reset();
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.spans.empty());
    // Names can be re-registered after a reset and start from zero.
    EXPECT_EQ(reg.counter("gone")->value(), 0u);
}

TEST_F(ObsTest, PrometheusTextFormat)
{
    setLevel(Level::Basic);
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.counter("rounds.completed")->add(12);
    reg.gauge("pool.threads")->set(4.0);
    reg.histogram("pool.task_ms", {1.0, 10.0})->add(0.5);
    reg.span("round.train")->addNs(5'000'000);

    const std::string text = prometheusText(reg.snapshot());
    // Counters become *_total with the fedgpo_ prefix; dots mangle to
    // underscores.
    EXPECT_NE(text.find("fedgpo_rounds_completed_total 12"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("# TYPE fedgpo_rounds_completed_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("fedgpo_pool_threads 4"), std::string::npos);
    EXPECT_NE(text.find("# TYPE fedgpo_pool_threads gauge"),
              std::string::npos);
    // Histograms expose cumulative le-buckets plus sum and count.
    EXPECT_NE(text.find("fedgpo_pool_task_ms_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
    EXPECT_NE(text.find("fedgpo_pool_task_ms_count 1"), std::string::npos);
    // Span totals export as counters too.
    EXPECT_NE(text.find("fedgpo_span_round_train_ms_total"),
              std::string::npos);
}

TEST_F(ObsTest, MetricsJsonCarriesCountersAndGauges)
{
    setLevel(Level::Basic);
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.counter("rounds.completed")->add(3);
    reg.gauge("pool.threads")->set(2.0);
    const std::string json = metricsJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"rounds.completed\":3"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"pool.threads\""), std::string::npos);
}

TEST_F(ObsTest, PrintSummaryListsTopSpans)
{
    setLevel(Level::Basic);
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.span("round.train")->addNs(8'000'000);
    reg.span("round.evaluate")->addNs(2'000'000);
    reg.counter("rounds.completed")->add(2);
    std::ostringstream os;
    printSummary(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("round.train"), std::string::npos) << text;
    EXPECT_NE(text.find("rounds.completed"), std::string::npos);
}

TEST_F(ObsTest, CountHelperRegistersWhenEnabled)
{
    setLevel(Level::Basic);
    count("fault.crash");
    count("fault.crash", 2);
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].first, "fault.crash");
    EXPECT_EQ(snap.counters[0].second, 3u);
}

} // namespace
} // namespace obs
} // namespace fedgpo
