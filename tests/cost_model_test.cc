/**
 * @file
 * Tests for the network model (Eq. 3) and the per-round cost model —
 * including the properties the paper's motivation figures rest on:
 * H > M > L throughput ordering (Fig. 3), interference and network
 * degradation (Fig. 4), and memory pressure for RC-heavy workloads at
 * large batch sizes (Fig. 2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "device/cost_model.h"
#include "device/network_model.h"
#include "util/rng.h"

namespace fedgpo {
namespace device {
namespace {

LocalWorkSpec
defaultWork(int batch = 8, int epochs = 10)
{
    LocalWorkSpec work;
    work.train_flops_per_sample = 600000;
    work.samples = 30;
    work.batch = batch;
    work.epochs = epochs;
    work.param_bytes = 40000;
    return work;
}

TEST(NetworkModel, StableBandwidthInRange)
{
    NetworkModel net(false);
    util::Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        auto s = net.sample(rng);
        EXPECT_GE(s.bandwidth_mbps, 3.0);
        EXPECT_LE(s.bandwidth_mbps, 150.0);
        EXPECT_GT(s.signal, 0.0);
        EXPECT_LE(s.signal, 1.0);
    }
}

TEST(NetworkModel, UnstableHasLowerMeanAndMoreBadRounds)
{
    NetworkModel stable(false), unstable(true);
    util::Rng r1(2), r2(2);
    double sum_s = 0.0, sum_u = 0.0;
    int bad_s = 0, bad_u = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        auto a = stable.sample(r1);
        auto b = unstable.sample(r2);
        sum_s += a.bandwidth_mbps;
        sum_u += b.bandwidth_mbps;
        bad_s += a.bandwidth_mbps <= kBadNetworkMbps;
        bad_u += b.bandwidth_mbps <= kBadNetworkMbps;
    }
    EXPECT_GT(sum_s / n, sum_u / n);
    EXPECT_LT(bad_s, bad_u);
    EXPECT_GT(bad_u, n / 5);
}

TEST(NetworkModel, TxPowerRisesExponentiallyAtWeakSignal)
{
    const double strong = NetworkModel::txPower(1.0);
    const double mid = NetworkModel::txPower(0.5);
    const double weak = NetworkModel::txPower(0.1);
    EXPECT_GT(mid, strong);
    EXPECT_GT(weak, mid);
    // Exponential shape: equal signal decrements multiply power by a
    // constant factor.
    const double ratio1 = mid / strong;
    const double ratio2 = NetworkModel::txPower(0.0 + 1e-9) /
                          NetworkModel::txPower(0.5 + 1e-9);
    EXPECT_NEAR(ratio1, ratio2, 0.05);
}

TEST(NetworkModel, TxTimeInverseInBandwidth)
{
    const double t1 = NetworkModel::txTime(1e6, 10.0);
    const double t2 = NetworkModel::txTime(1e6, 20.0);
    EXPECT_NEAR(t1, 2.0 * t2, 1e-9);
    EXPECT_DOUBLE_EQ(NetworkModel::txTime(0.0, 10.0), 0.0);
}

TEST(CostModel, TierOrderingMatchesFig3)
{
    const auto &cost = costFor(models::Workload::CnnMnist);
    InterferenceState calm;
    NetworkState net;
    auto work = defaultWork();
    const double th =
        clientRoundCost(profileFor(Category::High), cost, work, calm, net)
            .t_comp;
    const double tm =
        clientRoundCost(profileFor(Category::Mid), cost, work, calm, net)
            .t_comp;
    const double tl =
        clientRoundCost(profileFor(Category::Low), cost, work, calm, net)
            .t_comp;
    EXPECT_LT(th, tm);
    EXPECT_LT(tm, tl);
    // The paper's Fig. 3 shows roughly a 2-4x H-to-L gap.
    EXPECT_GT(tl / th, 1.8);
    EXPECT_LT(tl / th, 6.0);
}

TEST(CostModel, TimeLinearInEpochs)
{
    const auto &cost = costFor(models::Workload::CnnMnist);
    InterferenceState calm;
    NetworkState net;
    const double t5 = clientRoundCost(profileFor(Category::Mid), cost,
                                      defaultWork(8, 5), calm, net)
                          .t_comp;
    const double t20 = clientRoundCost(profileFor(Category::Mid), cost,
                                       defaultWork(8, 20), calm, net)
                           .t_comp;
    EXPECT_NEAR(t20 / t5, 4.0, 1e-6);
}

TEST(CostModel, SmallBatchUnderutilizesHardware)
{
    const auto &cost = costFor(models::Workload::CnnMnist);
    InterferenceState calm;
    const double f1 = effectiveFlops(profileFor(Category::High), cost, 1,
                                     40000, calm);
    const double f8 = effectiveFlops(profileFor(Category::High), cost, 8,
                                     40000, calm);
    EXPECT_GT(f8, 1.5 * f1);
}

TEST(CostModel, InterferenceSlowsCompute)
{
    const auto &cost = costFor(models::Workload::CnnMnist);
    InterferenceState calm;
    InterferenceState busy;
    busy.co_cpu = 0.8;
    busy.co_mem = 0.5;
    const double calm_f =
        effectiveFlops(profileFor(Category::Low), cost, 8, 40000, calm);
    const double busy_f =
        effectiveFlops(profileFor(Category::Low), cost, 8, 40000, busy);
    EXPECT_LT(busy_f, 0.7 * calm_f);
}

TEST(CostModel, MemoryPressureHurtsLstmOnLowTierAtLargeB)
{
    // Fig. 2's claim: the RC-heavy workload prefers small batches because
    // of memory pressure, most visibly on the 2 GB tier.
    const auto &lstm = costFor(models::Workload::LstmShakespeare);
    InterferenceState calm;
    const double f8 = effectiveFlops(profileFor(Category::Low), lstm, 8,
                                     65000, calm);
    const double f32 = effectiveFlops(profileFor(Category::Low), lstm, 32,
                                      65000, calm);
    // Per-FLOP throughput at B=32 must NOT show the full batch-efficiency
    // gain; memory pressure eats it.
    const double batch_gain = (32.0 / 35.0) / (8.0 / 11.0);
    EXPECT_LT(f32 / f8, batch_gain);
}

TEST(CostModel, CommTimeTracksBandwidth)
{
    const auto &cost = costFor(models::Workload::CnnMnist);
    InterferenceState calm;
    NetworkState fast{100.0, 1.0};
    NetworkState slow{10.0, 0.1};
    auto work = defaultWork();
    const auto cf = clientRoundCost(profileFor(Category::Mid), cost, work,
                                    calm, fast);
    const auto cs = clientRoundCost(profileFor(Category::Mid), cost, work,
                                    calm, slow);
    EXPECT_NEAR(cs.t_comm / cf.t_comm, 10.0, 1e-6);
    EXPECT_GT(cs.e_comm / cf.e_comm, 10.0)
        << "weak signal costs more than the airtime ratio alone";
}

TEST(CostModel, UploadBytesShrinkOnlyTheUplink)
{
    // upload_bytes models an encoded payload: the uplink airtime scales
    // with it while the downlink still ships the full param_bytes, and
    // the down/up split sums exactly to t_comm.
    const auto &cost = costFor(models::Workload::CnnMnist);
    InterferenceState calm;
    NetworkState net{50.0, 0.9};
    auto full = defaultWork();
    auto compressed = defaultWork();
    compressed.upload_bytes = full.param_bytes / 4;

    const auto cf = clientRoundCost(profileFor(Category::Mid), cost, full,
                                    calm, net);
    const auto cc = clientRoundCost(profileFor(Category::Mid), cost,
                                    compressed, calm, net);
    EXPECT_DOUBLE_EQ(cf.t_comm, cf.t_comm_down + cf.t_comm_up);
    EXPECT_DOUBLE_EQ(cc.t_comm, cc.t_comm_down + cc.t_comm_up);
    EXPECT_DOUBLE_EQ(cc.t_comm_down, cf.t_comm_down);
    EXPECT_NEAR(cc.t_comm_up, cf.t_comm_up / 4.0, 1e-12);
    EXPECT_LT(cc.e_comm, cf.e_comm);
    EXPECT_DOUBLE_EQ(cc.t_comp, cf.t_comp);
    // upload_bytes == 0 means "uncompressed": identical to the default.
    auto explicit_full = defaultWork();
    explicit_full.upload_bytes = explicit_full.param_bytes;
    const auto ce = clientRoundCost(profileFor(Category::Mid), cost,
                                    explicit_full, calm, net);
    EXPECT_DOUBLE_EQ(ce.t_comm, cf.t_comm);
    EXPECT_DOUBLE_EQ(ce.e_comm, cf.e_comm);
}

TEST(CostModel, UploadCostScalesLinearlyInPayload)
{
    const auto &cost = costFor(models::Workload::CnnMnist);
    NetworkState net{25.0, 0.7};
    const TxCost one = uploadCost(cost, 10000, net);
    const TxCost four = uploadCost(cost, 40000, net);
    EXPECT_NEAR(four.time / one.time, 4.0, 1e-9);
    EXPECT_NEAR(four.energy / one.energy, 4.0, 1e-9);
}

TEST(CostModel, EnergyComponentsSum)
{
    const auto &cost = costFor(models::Workload::MobileNetImageNet);
    InterferenceState calm;
    NetworkState net;
    auto c = clientRoundCost(profileFor(Category::High), cost,
                             defaultWork(), calm, net);
    EXPECT_DOUBLE_EQ(c.e_total, c.e_comp + c.e_comm);
    EXPECT_DOUBLE_EQ(c.t_round, c.t_comp + c.t_comm);
    EXPECT_GT(c.e_comp, 0.0);
    EXPECT_GT(c.e_comm, 0.0);
}

TEST(CostModel, WorkloadCostsDistinct)
{
    const auto &cnn = costFor(models::Workload::CnnMnist);
    const auto &lstm = costFor(models::Workload::LstmShakespeare);
    EXPECT_GT(lstm.mem_intensity, cnn.mem_intensity)
        << "RC layers are the memory-intensive ones (paper Section 2.1)";
}

/** Property sweep: costs are positive and finite over the whole grid. */
class CostGridTest
    : public ::testing::TestWithParam<std::tuple<int, int, Category>>
{
};

TEST_P(CostGridTest, PositiveFiniteCosts)
{
    const auto [batch, epochs, category] = GetParam();
    const auto &cost = costFor(models::Workload::CnnMnist);
    InterferenceState calm;
    NetworkState net;
    auto c = clientRoundCost(profileFor(category), cost,
                             defaultWork(batch, epochs), calm, net);
    EXPECT_GT(c.t_comp, 0.0);
    EXPECT_TRUE(std::isfinite(c.t_comp));
    EXPECT_GT(c.e_total, 0.0);
    EXPECT_TRUE(std::isfinite(c.e_total));
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, CostGridTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32),
                       ::testing::Values(1, 5, 10, 15, 20),
                       ::testing::Values(Category::High, Category::Mid,
                                         Category::Low)));

} // namespace
} // namespace device
} // namespace fedgpo
