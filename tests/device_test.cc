/**
 * @file
 * Tests for the device profiles (paper Tables 3-4), the power model
 * (Eq. 2), fleet composition, and the interference process.
 */

#include <gtest/gtest.h>

#include "device/device_profile.h"
#include "device/interference.h"
#include "device/power_model.h"
#include "util/rng.h"

namespace fedgpo {
namespace device {
namespace {

TEST(DeviceProfile, Table3Gflops)
{
    EXPECT_DOUBLE_EQ(profileFor(Category::High).gflops, 153.6);
    EXPECT_DOUBLE_EQ(profileFor(Category::Mid).gflops, 80.0);
    EXPECT_DOUBLE_EQ(profileFor(Category::Low).gflops, 52.8);
}

TEST(DeviceProfile, Table3Ram)
{
    EXPECT_DOUBLE_EQ(profileFor(Category::High).ram_gb, 8.0);
    EXPECT_DOUBLE_EQ(profileFor(Category::Mid).ram_gb, 4.0);
    EXPECT_DOUBLE_EQ(profileFor(Category::Low).ram_gb, 2.0);
}

TEST(DeviceProfile, Table4Power)
{
    const auto &h = profileFor(Category::High);
    EXPECT_DOUBLE_EQ(h.cpu_peak_w, 5.5);
    EXPECT_DOUBLE_EQ(h.gpu_peak_w, 2.8);
    EXPECT_EQ(h.cpu_vf_steps, 23);
    EXPECT_EQ(h.gpu_vf_steps, 7);
    const auto &l = profileFor(Category::Low);
    EXPECT_DOUBLE_EQ(l.cpu_peak_w, 3.6);
    EXPECT_DOUBLE_EQ(l.gpu_peak_w, 2.0);
    EXPECT_EQ(l.cpu_vf_steps, 15);
    EXPECT_EQ(l.gpu_vf_steps, 6);
}

TEST(DeviceProfile, CategoryNames)
{
    EXPECT_EQ(categoryName(Category::High), "H");
    EXPECT_EQ(categoryName(Category::Mid), "M");
    EXPECT_EQ(categoryName(Category::Low), "L");
}

TEST(FleetComposition, PaperMixAt200)
{
    auto fleet = fleetComposition(200);
    std::size_t h = 0, m = 0, l = 0;
    for (auto c : fleet) {
        h += c == Category::High;
        m += c == Category::Mid;
        l += c == Category::Low;
    }
    EXPECT_EQ(h, 30u);
    EXPECT_EQ(m, 70u);
    EXPECT_EQ(l, 100u);
}

TEST(FleetComposition, MixPreservedAtSmallScale)
{
    auto fleet = fleetComposition(40);
    std::size_t h = 0, m = 0, l = 0;
    for (auto c : fleet) {
        h += c == Category::High;
        m += c == Category::Mid;
        l += c == Category::Low;
    }
    EXPECT_EQ(h, 6u);
    EXPECT_EQ(m, 14u);
    EXPECT_EQ(l, 20u);
}

TEST(FleetComposition, NoEmptyTinyFleet)
{
    auto fleet = fleetComposition(1);
    EXPECT_EQ(fleet.size(), 1u);
}

TEST(PowerModel, BusyPowerMonotonicInStep)
{
    for (auto c : kAllCategories) {
        PowerModel power(profileFor(c));
        for (Unit u : {Unit::Cpu, Unit::Gpu}) {
            double prev = 0.0;
            for (int s = 0; s < power.steps(u); ++s) {
                const double p = power.busyPower(u, s);
                EXPECT_GT(p, prev) << categoryName(c);
                prev = p;
            }
        }
    }
}

TEST(PowerModel, TopStepHitsPeak)
{
    const auto &h = profileFor(Category::High);
    PowerModel power(h);
    EXPECT_NEAR(power.busyPower(Unit::Cpu, h.cpu_vf_steps - 1),
                h.cpu_peak_w, 1e-9);
    EXPECT_NEAR(power.busyPower(Unit::Gpu, h.gpu_vf_steps - 1),
                h.gpu_peak_w, 1e-9);
}

TEST(PowerModel, FrequencyLadderSpansUnitInterval)
{
    PowerModel power(profileFor(Category::Mid));
    EXPECT_GT(power.stepFrequencyFraction(Unit::Cpu, 0), 0.0);
    EXPECT_DOUBLE_EQ(
        power.stepFrequencyFraction(Unit::Cpu, power.steps(Unit::Cpu) - 1),
        1.0);
}

TEST(PowerModel, UnitEnergyEquation2)
{
    // E = P_busy * t_busy + P_idle_share * t_idle, exactly.
    PowerModel power(profileFor(Category::Low));
    const int top = profileFor(Category::Low).cpu_vf_steps - 1;
    const double e = power.unitEnergy(Unit::Cpu, top, 10.0, 0.0);
    EXPECT_NEAR(e, power.busyPower(Unit::Cpu, top) * 10.0, 1e-9);
    const double idle_only = power.unitEnergy(Unit::Cpu, top, 0.0, 10.0);
    EXPECT_GT(idle_only, 0.0);
    EXPECT_LT(idle_only, e);
}

TEST(PowerModel, TrainingPowerBetweenIdleAndPeakSum)
{
    for (auto c : kAllCategories) {
        const auto &prof = profileFor(c);
        PowerModel power(prof);
        const double p = power.trainingPower();
        EXPECT_GT(p, prof.idle_w);
        EXPECT_LT(p, prof.cpu_peak_w + prof.gpu_peak_w);
    }
}

TEST(PowerModel, IdleEnergyLinearInTime)
{
    PowerModel power(profileFor(Category::High));
    EXPECT_DOUBLE_EQ(power.idleEnergy(20.0), 2.0 * power.idleEnergy(10.0));
    EXPECT_DOUBLE_EQ(power.idleEnergy(0.0), 0.0);
}

TEST(Interference, DisabledIsAlwaysZero)
{
    InterferenceProcess proc(false);
    util::Rng rng(1);
    for (int i = 0; i < 20; ++i) {
        auto s = proc.step(rng);
        EXPECT_EQ(s.co_cpu, 0.0);
        EXPECT_EQ(s.co_mem, 0.0);
        EXPECT_FALSE(s.active());
    }
}

TEST(Interference, EnabledStaysInRange)
{
    InterferenceProcess proc(true, 0.8);
    util::Rng rng(2);
    bool ever_active = false;
    for (int i = 0; i < 200; ++i) {
        auto s = proc.step(rng);
        EXPECT_GE(s.co_cpu, 0.0);
        EXPECT_LE(s.co_cpu, 1.0);
        EXPECT_GE(s.co_mem, 0.0);
        EXPECT_LE(s.co_mem, 1.0);
        ever_active |= s.active();
    }
    EXPECT_TRUE(ever_active);
}

TEST(Interference, ZeroProbabilityNeverActivates)
{
    InterferenceProcess proc(true, 0.0);
    util::Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(proc.step(rng).active());
}

TEST(Interference, LoadPersistsAcrossRounds)
{
    // AR(1) persistence: consecutive active states should be positively
    // correlated.
    InterferenceProcess proc(true, 1.0);
    util::Rng rng(4);
    double prev = -1.0;
    int close_pairs = 0, active_pairs = 0;
    for (int i = 0; i < 300; ++i) {
        auto s = proc.step(rng);
        if (s.active() && prev > 0.0) {
            ++active_pairs;
            if (std::abs(s.co_cpu - prev) < 0.3)
                ++close_pairs;
        }
        prev = s.active() ? s.co_cpu : -1.0;
    }
    ASSERT_GT(active_pairs, 50);
    EXPECT_GT(static_cast<double>(close_pairs) / active_pairs, 0.6);
}

} // namespace
} // namespace device
} // namespace fedgpo
