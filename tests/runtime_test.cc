/**
 * @file
 * Tests for the deterministic parallel execution engine: thread-pool
 * scheduling, worker contexts, thread-count resolution, and — the hard
 * requirement — bit-identical simulation results between serial and
 * multi-threaded execution on every workload.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fl/simulator.h"
#include "models/zoo.h"
#include "runtime/runtime_config.h"
#include "runtime/thread_pool.h"
#include "runtime/worker_context.h"

namespace fedgpo {
namespace runtime {
namespace {

TEST(ThreadPool, SizeIsAtLeastOne)
{
    EXPECT_EQ(ThreadPool(0).size(), 1u);
    EXPECT_EQ(ThreadPool(1).size(), 1u);
    EXPECT_EQ(ThreadPool(4).size(), 4u);
}

TEST(ThreadPool, SubmitRunsTasksAndJoins)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([&count] { ++count; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.submit([&ran_on] { ran_on = std::this_thread::get_id(); }).get();
    EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce)
{
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(threads);
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(n, [&hits](std::size_t i, std::size_t worker) {
            (void)worker;
            ++hits[i];
        });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForWorkerIdsInRange)
{
    ThreadPool pool(3);
    const std::size_t n = 200;
    std::vector<std::size_t> worker_of(n);
    pool.parallelFor(n, [&worker_of](std::size_t i, std::size_t worker) {
        worker_of[i] = worker;
    });
    for (std::size_t w : worker_of)
        EXPECT_LT(w, pool.size());
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i, std::size_t) {
                                      if (i == 37)
                                          throw std::runtime_error("bad");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, ParallelForUnderContention)
{
    // Many consecutive fan-outs reusing the same workers must neither
    // deadlock nor lose indices.
    ThreadPool pool(4);
    for (int repeat = 0; repeat < 50; ++repeat) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(64, [&sum](std::size_t i, std::size_t) {
            sum += i + 1;
        });
        EXPECT_EQ(sum.load(), 64u * 65u / 2u);
    }
}

TEST(ThreadPool, ParallelForZeroIsNoOp)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(WorkerContextPool, BuildsModelsLazilyPerWorker)
{
    int built = 0;
    WorkerContextPool contexts(3, [&built] {
        ++built;
        return models::buildModel(models::Workload::CnnMnist, 1);
    });
    EXPECT_EQ(contexts.size(), 3u);
    EXPECT_FALSE(contexts.materialized(0));

    nn::Model &m0 = *contexts.acquire(0).model;
    nn::Model &m0_again = *contexts.acquire(0).model;
    EXPECT_EQ(&m0, &m0_again) << "slot must be built once";
    EXPECT_EQ(built, 1);
    EXPECT_TRUE(contexts.materialized(0));
    EXPECT_FALSE(contexts.materialized(2));

    nn::Model &m1 = *contexts.acquire(1).model;
    EXPECT_NE(&m0, &m1) << "workers must not share scratch models";
    EXPECT_EQ(built, 2);
}

TEST(RuntimeConfig, ExplicitRequestWins)
{
    setenv("FEDGPO_THREADS", "7", 1);
    EXPECT_EQ(resolveThreads(3), 3u);
    unsetenv("FEDGPO_THREADS");
}

TEST(RuntimeConfig, EnvOverridesAuto)
{
    setenv("FEDGPO_THREADS", "7", 1);
    EXPECT_EQ(resolveThreads(0), 7u);
    setenv("FEDGPO_THREADS", "garbage", 1);
    EXPECT_GE(resolveThreads(0), 1u) << "bad env falls back to hardware";
    unsetenv("FEDGPO_THREADS");
    EXPECT_GE(resolveThreads(0), 1u);
}

// --- Determinism: the hard requirement of the execution engine. ---------

fl::FlConfig
tinyConfig(models::Workload w, std::size_t threads)
{
    fl::FlConfig config;
    config.workload = w;
    config.n_devices = 8;
    config.train_samples = 96;
    config.test_samples = 32;
    config.seed = 11;
    config.interference = true;     // exercise the variance processes too
    config.network_unstable = true;
    config.threads = threads;
    return config;
}

void
expectIdenticalResults(const fl::RoundResult &a, const fl::RoundResult &b)
{
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.dropped_straggler, b.dropped_straggler);
    EXPECT_EQ(a.dropped_diverged, b.dropped_diverged);
    EXPECT_EQ(a.samples_aggregated, b.samples_aggregated);
    // Bit-identical doubles: any reordering of float math would show here.
    EXPECT_EQ(a.round_time, b.round_time);
    EXPECT_EQ(a.energy_participants, b.energy_participants);
    EXPECT_EQ(a.energy_idle, b.energy_idle);
    EXPECT_EQ(a.energy_total, b.energy_total);
    EXPECT_EQ(a.test_accuracy, b.test_accuracy);
    EXPECT_EQ(a.test_loss, b.test_loss);
    EXPECT_EQ(a.train_loss, b.train_loss);
    ASSERT_EQ(a.participants.size(), b.participants.size());
    for (std::size_t i = 0; i < a.participants.size(); ++i) {
        const auto &pa = a.participants[i];
        const auto &pb = b.participants[i];
        EXPECT_EQ(pa.client_id, pb.client_id);
        EXPECT_EQ(pa.category, pb.category);
        EXPECT_TRUE(pa.params == pb.params);
        EXPECT_EQ(pa.samples, pb.samples);
        EXPECT_EQ(pa.dropped, pb.dropped);
        EXPECT_EQ(pa.drop_reason, pb.drop_reason);
        EXPECT_EQ(pa.update_scale, pb.update_scale);
        EXPECT_EQ(pa.train_loss, pb.train_loss);
        EXPECT_EQ(pa.cost.t_comp, pb.cost.t_comp);
        EXPECT_EQ(pa.cost.t_comm, pb.cost.t_comm);
        EXPECT_EQ(pa.cost.t_round, pb.cost.t_round);
        EXPECT_EQ(pa.cost.e_comp, pb.cost.e_comp);
        EXPECT_EQ(pa.cost.e_comm, pb.cost.e_comm);
        EXPECT_EQ(pa.cost.e_wait, pb.cost.e_wait);
        EXPECT_EQ(pa.cost.e_total, pb.cost.e_total);
    }
}

class DeterminismTest
    : public ::testing::TestWithParam<models::Workload>
{
};

TEST_P(DeterminismTest, SerialAndFourThreadRoundsBitIdentical)
{
    fl::FlSimulator serial(tinyConfig(GetParam(), 1));
    fl::FlSimulator parallel(tinyConfig(GetParam(), 4));
    EXPECT_EQ(serial.threads(), 1u);
    EXPECT_EQ(parallel.threads(), 4u);

    const int rounds = GetParam() == models::Workload::CnnMnist ? 2 : 1;
    for (int r = 0; r < rounds; ++r) {
        fl::GlobalParams params{4, 1, 6};
        fl::RoundResult ra = serial.runRoundWithParams(params);
        fl::RoundResult rb = parallel.runRoundWithParams(params);
        expectIdenticalResults(ra, rb);
    }

    const auto wa = serial.globalModel().saveParams();
    const auto wb = parallel.globalModel().saveParams();
    ASSERT_EQ(wa.size(), wb.size());
    EXPECT_EQ(wa, wb) << "global weights must be bit-identical";
    EXPECT_EQ(serial.testAccuracy(), parallel.testAccuracy());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DeterminismTest,
    ::testing::Values(models::Workload::CnnMnist,
                      models::Workload::LstmShakespeare,
                      models::Workload::MobileNetImageNet),
    [](const ::testing::TestParamInfo<models::Workload> &info) {
        std::string name = models::workloadName(info.param);
        std::erase_if(name, [](char c) { return !std::isalnum(c); });
        return name;
    });

} // namespace
} // namespace runtime
} // namespace fedgpo
