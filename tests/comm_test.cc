/**
 * @file
 * Update-codec subsystem tests: payload-byte formulas, round-trip error
 * bounds, Int8 unbiasedness over the split comm streams, TopK selection
 * and error-feedback convergence, thread-count invariance of codec runs,
 * byte accounting through the round pipeline, and the FedGPO fourth
 * (codec) action axis.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "comm/codec.h"
#include "comm/comm_model.h"
#include "core/fedgpo.h"
#include "fl/simulator.h"
#include "util/rng.h"

namespace fedgpo {
namespace comm {
namespace {

std::vector<float>
rampDelta(std::size_t n)
{
    std::vector<float> delta(n);
    for (std::size_t i = 0; i < n; ++i)
        delta[i] = 0.01f * static_cast<float>(i % 37) -
                   0.02f * static_cast<float>(i % 11);
    return delta;
}

// --- Payload formulas. ---------------------------------------------------

TEST(CodecPayload, IdentityIsFourBytesPerParam)
{
    IdentityCodec codec;
    EXPECT_EQ(codec.payloadBytes(0), 0u);
    EXPECT_EQ(codec.payloadBytes(1), 4u);
    EXPECT_EQ(codec.payloadBytes(1000), 4000u);
}

TEST(CodecPayload, Int8IsOneBytePerParamPlusChunkScales)
{
    Int8QuantCodec codec(256);
    // n + 4 * ceil(n / chunk).
    EXPECT_EQ(codec.payloadBytes(256), 256u + 4u);
    EXPECT_EQ(codec.payloadBytes(257), 257u + 8u);
    EXPECT_EQ(codec.payloadBytes(1000), 1000u + 16u);
}

TEST(CodecPayload, TopKIsEightBytesPerKeptCoordinate)
{
    TopKCodec codec(0.1);
    EXPECT_EQ(codec.keptCount(1000), 100u);
    EXPECT_EQ(codec.payloadBytes(1000), 800u);
    // Kept count clamps to [1, n].
    EXPECT_EQ(codec.keptCount(3), 1u);
    TopKCodec all(1.0);
    EXPECT_EQ(all.keptCount(10), 10u);
}

TEST(CodecPayload, MakeCodecBuildsEachLevel)
{
    CommConfig config;
    config.quant_chunk = 128;
    config.topk_fraction = 0.25;
    EXPECT_EQ(makeCodec(Codec::Identity, config)->kind(),
              Codec::Identity);
    EXPECT_EQ(makeCodec(Codec::Int8Quant, config)->kind(),
              Codec::Int8Quant);
    EXPECT_EQ(makeCodec(Codec::TopK, config)->kind(), Codec::TopK);
}

TEST(CodecNames, RoundTripThroughLabels)
{
    for (std::size_t i = 0; i < kNumCodecs; ++i) {
        const Codec c = static_cast<Codec>(i);
        Codec parsed;
        ASSERT_TRUE(codecFromName(codecName(c), parsed));
        EXPECT_EQ(parsed, c);
    }
    Codec unused;
    EXPECT_FALSE(codecFromName("gzip", unused));
}

// --- Identity. -----------------------------------------------------------

TEST(IdentityCodec, RoundTripIsExactAndResidualUntouched)
{
    IdentityCodec codec;
    const std::vector<float> delta = rampDelta(301);
    std::vector<float> residual{1.0f, 2.0f};
    util::Rng rng(7);
    Encoded enc;
    codec.encode(delta, residual, rng, enc);
    EXPECT_EQ(enc.payload_bytes, 4u * delta.size());
    EXPECT_EQ(residual, (std::vector<float>{1.0f, 2.0f}));
    std::vector<float> back;
    codec.decode(enc, back);
    EXPECT_EQ(back, delta);
}

// --- Int8 quantization. --------------------------------------------------

TEST(Int8Codec, RoundTripErrorBoundedByQuantStep)
{
    Int8QuantCodec codec(64);
    const std::vector<float> delta = rampDelta(500);
    std::vector<float> residual;
    util::Rng rng(13);
    Encoded enc;
    codec.encode(delta, residual, rng, enc);
    std::vector<float> back;
    codec.decode(enc, back);
    ASSERT_EQ(back.size(), delta.size());
    for (std::size_t chunk = 0; chunk * 64 < delta.size(); ++chunk) {
        const std::size_t lo = chunk * 64;
        const std::size_t hi = std::min(delta.size(), lo + 64);
        float max_abs = 0.0f;
        for (std::size_t i = lo; i < hi; ++i)
            max_abs = std::max(max_abs, std::abs(delta[i]));
        // Stochastic rounding moves a value at most one level.
        const double step = static_cast<double>(max_abs) / 127.0;
        for (std::size_t i = lo; i < hi; ++i)
            EXPECT_LE(std::abs(static_cast<double>(back[i]) -
                               static_cast<double>(delta[i])),
                      step + 1e-7)
                << "coordinate " << i;
    }
}

TEST(Int8Codec, ZeroChunkStaysExactlyZero)
{
    Int8QuantCodec codec(32);
    const std::vector<float> delta(100, 0.0f);
    std::vector<float> residual;
    util::Rng rng(3);
    Encoded enc;
    codec.encode(delta, residual, rng, enc);
    std::vector<float> back;
    codec.decode(enc, back);
    for (float v : back)
        EXPECT_EQ(v, 0.0f);
}

TEST(Int8Codec, StochasticRoundingIsUnbiased)
{
    // E[decode(encode(delta))] = delta: averaging reconstructions over
    // many independent comm streams must converge on the true value.
    Int8QuantCodec codec(128);
    const std::vector<float> delta = rampDelta(128);
    constexpr int kTrials = 4000;
    std::vector<double> mean(delta.size(), 0.0);
    util::Rng root(99);
    for (int t = 0; t < kTrials; ++t) {
        util::Rng stream = root.split(static_cast<std::uint64_t>(t));
        std::vector<float> residual;
        Encoded enc;
        codec.encode(delta, residual, stream, enc);
        std::vector<float> back;
        codec.decode(enc, back);
        for (std::size_t i = 0; i < back.size(); ++i)
            mean[i] += static_cast<double>(back[i]) / kTrials;
    }
    float max_abs = 0.0f;
    for (float v : delta)
        max_abs = std::max(max_abs, std::abs(v));
    // Standard error of the mean of a bounded rounding error after 4000
    // trials is well under 2% of one quantization step.
    const double tol = 0.05 * static_cast<double>(max_abs) / 127.0;
    for (std::size_t i = 0; i < delta.size(); ++i)
        EXPECT_NEAR(mean[i], static_cast<double>(delta[i]), tol)
            << "coordinate " << i;
}

TEST(Int8Codec, SameStreamSameEncoding)
{
    Int8QuantCodec codec(64);
    const std::vector<float> delta = rampDelta(200);
    std::vector<float> r1, r2;
    util::Rng a(42), b(42);
    Encoded ea, eb;
    codec.encode(delta, r1, a, ea);
    codec.encode(delta, r2, b, eb);
    EXPECT_EQ(ea.quantized, eb.quantized);
    EXPECT_EQ(ea.scales, eb.scales);
}

TEST(Int8Codec, NonFiniteChunkDecodesToNaN)
{
    // Divergence must survive the codec: rejectDivergedUpdates keys off
    // non-finite weights, so a NaN in the delta may not be silently
    // quantized into a finite value.
    Int8QuantCodec codec(16);
    std::vector<float> delta = rampDelta(48);
    delta[20] = std::numeric_limits<float>::quiet_NaN();
    std::vector<float> residual;
    util::Rng rng(5);
    Encoded enc;
    codec.encode(delta, residual, rng, enc);
    std::vector<float> back;
    codec.decode(enc, back);
    for (std::size_t i = 16; i < 32; ++i)
        EXPECT_TRUE(std::isnan(back[i])) << "coordinate " << i;
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_TRUE(std::isfinite(back[i])) << "coordinate " << i;
}

// --- TopK sparsification. ------------------------------------------------

TEST(TopKCodec, KeepsLargestMagnitudesAndBanksTheRest)
{
    TopKCodec codec(0.25); // k = 2 of 8
    const std::vector<float> delta{0.1f, -5.0f, 0.2f, 3.0f,
                                   -0.3f, 0.0f, 0.4f, -0.5f};
    std::vector<float> residual;
    util::Rng rng(1);
    Encoded enc;
    codec.encode(delta, residual, rng, enc);
    ASSERT_EQ(enc.indices.size(), 2u);
    EXPECT_EQ(enc.indices[0], 1u);
    EXPECT_EQ(enc.indices[1], 3u);
    EXPECT_EQ(enc.values[0], -5.0f);
    EXPECT_EQ(enc.values[1], 3.0f);
    EXPECT_EQ(enc.payload_bytes, 16u);

    // Residual banks exactly the untransmitted coordinates.
    ASSERT_EQ(residual.size(), delta.size());
    EXPECT_EQ(residual[1], 0.0f);
    EXPECT_EQ(residual[3], 0.0f);
    EXPECT_EQ(residual[0], 0.1f);
    EXPECT_EQ(residual[7], -0.5f);

    std::vector<float> back;
    codec.decode(enc, back);
    ASSERT_EQ(back.size(), delta.size());
    EXPECT_EQ(back[1], -5.0f);
    EXPECT_EQ(back[3], 3.0f);
    EXPECT_EQ(back[0], 0.0f);
}

TEST(TopKCodec, ResidualReoffersEnergyNextRound)
{
    TopKCodec codec(0.25);
    std::vector<float> residual;
    util::Rng rng(1);
    // Round 1: only the two big coordinates go out; 0.4 is banked.
    std::vector<float> delta{0.0f, -5.0f, 0.0f, 3.0f,
                             0.0f, 0.0f, 0.4f, 0.0f};
    Encoded enc;
    codec.encode(delta, residual, rng, enc);
    EXPECT_EQ(residual[6], 0.4f);
    // Round 2: a zero delta still transmits the banked coordinate (the
    // second kept slot is a zero-magnitude tie and carries no energy).
    std::vector<float> zero(delta.size(), 0.0f);
    codec.encode(zero, residual, rng, enc);
    bool banked_sent = false;
    for (std::size_t j = 0; j < enc.indices.size(); ++j) {
        if (enc.indices[j] == 6u) {
            banked_sent = true;
            EXPECT_EQ(enc.values[j], 0.4f);
        }
    }
    EXPECT_TRUE(banked_sent);
    EXPECT_EQ(residual[6], 0.0f);
}

TEST(TopKCodec, ErrorFeedbackConvergesOnQuadraticToy)
{
    // Gradient descent on f(x) = 0.5 * ||x - target||^2 where each step's
    // update is TopK-compressed: without error feedback only the k
    // steepest coordinates would ever move; with it every coordinate's
    // suppressed updates accumulate and eventually transmit, so x -> target.
    constexpr std::size_t kDim = 40;
    TopKCodec codec(0.1); // 4 of 40 coordinates per step
    std::vector<float> target(kDim);
    for (std::size_t i = 0; i < kDim; ++i)
        target[i] = 0.5f + 0.01f * static_cast<float>(i);
    std::vector<float> x(kDim, 0.0f);
    std::vector<float> residual;
    util::Rng rng(17);
    // Error feedback applies a coordinate's update up to ~1/fraction
    // steps late, so the stable step size scales with the fraction —
    // too large a step overshoots on stale banked gradients.
    for (int step = 0; step < 2000; ++step) {
        std::vector<float> grad_step(kDim);
        for (std::size_t i = 0; i < kDim; ++i)
            grad_step[i] = 0.05f * (target[i] - x[i]);
        Encoded enc;
        codec.encode(grad_step, residual, rng, enc);
        std::vector<float> applied;
        codec.decode(enc, applied);
        for (std::size_t i = 0; i < kDim; ++i)
            x[i] += applied[i];
    }
    for (std::size_t i = 0; i < kDim; ++i)
        EXPECT_NEAR(x[i], target[i], 0.01) << "coordinate " << i;
}

TEST(TopKCodec, NonFiniteCoordinateIsTransmittedNotBanked)
{
    TopKCodec codec(0.25);
    std::vector<float> delta{0.1f, 0.2f,
                             std::numeric_limits<float>::quiet_NaN(),
                             -3.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    std::vector<float> residual;
    util::Rng rng(1);
    Encoded enc;
    codec.encode(delta, residual, rng, enc);
    // NaN sorts as largest magnitude: it ships (so divergence detection
    // still sees it) and is never banked into the residual.
    ASSERT_EQ(enc.indices.size(), 2u);
    EXPECT_EQ(enc.indices[0], 2u);
    EXPECT_TRUE(std::isnan(enc.values[0]));
    EXPECT_EQ(enc.indices[1], 3u);
    for (float r : residual)
        EXPECT_TRUE(std::isfinite(r));
}

// --- CommModel. ----------------------------------------------------------

TEST(CommModel, CompressionRatioGuardsZero)
{
    EXPECT_EQ(CommModel::compressionRatio(4000, 0), 0.0);
    EXPECT_DOUBLE_EQ(CommModel::compressionRatio(4000, 1000), 4.0);
}

// --- Round pipeline integration. -----------------------------------------

fl::FlConfig
commConfig(Codec codec, std::size_t threads = 1)
{
    fl::FlConfig config;
    config.workload = models::Workload::CnnMnist;
    config.n_devices = 10;
    config.train_samples = 160;
    config.test_samples = 64;
    config.seed = 21;
    config.threads = threads;
    config.comm.codec = codec;
    return config;
}

TEST(RoundPipeline, IdentityBytesMatchParamBytes)
{
    fl::FlSimulator sim(commConfig(Codec::Identity));
    const fl::RoundResult r =
        sim.runRoundWithParams(fl::GlobalParams{8, 1, 6});
    EXPECT_EQ(r.codec, Codec::Identity);
    std::uint64_t up = 0, down = 0;
    for (const auto &p : r.participants) {
        if (!p.dropped) {
            EXPECT_EQ(p.bytes_up, sim.paramBytes());
            EXPECT_EQ(p.bytes_down, sim.paramBytes());
        }
        up += p.bytes_up;
        down += p.bytes_down;
    }
    EXPECT_EQ(r.bytes_up_total, up);
    EXPECT_EQ(r.bytes_down_total, down);
    EXPECT_GT(up, 0u);
}

TEST(RoundPipeline, CompressingCodecsCutUploadBytesAndTime)
{
    const fl::GlobalParams params{8, 1, 6};
    fl::FlSimulator id_sim(commConfig(Codec::Identity));
    fl::FlSimulator q_sim(commConfig(Codec::Int8Quant));
    fl::FlSimulator k_sim(commConfig(Codec::TopK));
    const fl::RoundResult id = id_sim.runRoundWithParams(params);
    const fl::RoundResult q = q_sim.runRoundWithParams(params);
    const fl::RoundResult k = k_sim.runRoundWithParams(params);

    // Int8 is ~4x, TopK(0.1) ~5x smaller on the uplink.
    EXPECT_LT(q.bytes_up_total * 3, id.bytes_up_total);
    EXPECT_LT(k.bytes_up_total * 4, id.bytes_up_total);
    // Downlink ships raw weights regardless of codec.
    EXPECT_EQ(q.bytes_down_total, id.bytes_down_total);

    // The saved airtime shows up in the modeled comm time and energy.
    double id_up = 0.0, q_up = 0.0;
    for (const auto &p : id.participants)
        id_up += p.cost.t_comm_up;
    for (const auto &p : q.participants)
        q_up += p.cost.t_comm_up;
    EXPECT_LT(q_up, id_up);
}

TEST(RoundPipeline, CodecRunsAreThreadCountInvariant)
{
    for (const Codec codec : {Codec::Int8Quant, Codec::TopK}) {
        fl::FlSimulator one(commConfig(codec, 1));
        fl::FlSimulator four(commConfig(codec, 4));
        for (int round = 0; round < 3; ++round) {
            const fl::RoundResult a =
                one.runRoundWithParams(fl::GlobalParams{8, 1, 6});
            const fl::RoundResult b =
                four.runRoundWithParams(fl::GlobalParams{8, 1, 6});
            EXPECT_EQ(a.test_accuracy, b.test_accuracy)
                << codecName(codec) << " round " << round;
            EXPECT_EQ(a.train_loss, b.train_loss);
            EXPECT_EQ(a.bytes_up_total, b.bytes_up_total);
        }
        EXPECT_EQ(one.globalModel().saveParams(),
                  four.globalModel().saveParams())
            << codecName(codec);
    }
}

TEST(RoundPipeline, LossyCodecsStillLearn)
{
    for (const Codec codec : {Codec::Int8Quant, Codec::TopK}) {
        fl::FlSimulator sim(commConfig(codec));
        double first = 0.0, last = 0.0;
        for (int i = 0; i < 8; ++i) {
            const fl::RoundResult r =
                sim.runRoundWithParams(fl::GlobalParams{8, 5, 6});
            if (i == 0)
                first = r.test_accuracy;
            last = r.test_accuracy;
        }
        EXPECT_GT(last, first + 0.15) << codecName(codec);
    }
}

// --- FedGPO fourth action axis. ------------------------------------------

TEST(FedGpoCodecAxis, TableOnlyExistsWhenAdaptive)
{
    core::FedGpo fixed;
    EXPECT_EQ(fixed.codecTable(), nullptr);
    EXPECT_EQ(fixed.chooseCodec(Codec::TopK), Codec::TopK);

    core::FedGpoConfig config;
    config.adapt_codec = true;
    core::FedGpo adaptive(config);
    ASSERT_NE(adaptive.codecTable(), nullptr);
    EXPECT_EQ(adaptive.codecTable()->numActions(),
              core::kNumCodecActions);
}

TEST(FedGpoCodecAxis, QTableLearnsOverTheFourthAxis)
{
    fl::FlConfig fl_config = commConfig(Codec::Identity);
    core::FedGpoConfig policy_config;
    policy_config.adapt_codec = true;
    policy_config.seed = 4;
    core::FedGpo policy(policy_config);
    fl::FlSimulator sim(fl_config);

    constexpr int kRounds = 20;
    for (int i = 0; i < kRounds; ++i)
        sim.runRound(policy);

    const core::QTable *table = policy.codecTable();
    ASSERT_NE(table, nullptr);
    // Every round's codec decision lands exactly one visit + one reward
    // update in the table, and exploration reaches more than one level.
    std::size_t total_visits = 0;
    std::size_t actions_tried = 0;
    for (std::size_t s = 0; s < core::kNumGlobalStates; ++s)
        for (std::size_t a = 0; a < core::kNumCodecActions; ++a)
            total_visits += table->visits(s, a);
    for (std::size_t a = 0; a < core::kNumCodecActions; ++a) {
        std::size_t column = 0;
        for (std::size_t s = 0; s < core::kNumGlobalStates; ++s)
            column += table->visits(s, a);
        if (column > 0)
            ++actions_tried;
    }
    EXPECT_EQ(total_visits, static_cast<std::size_t>(kRounds));
    EXPECT_GT(actions_tried, 1u)
        << "the codec axis must actually be explored";
    EXPECT_GT(table->recentMaxDelta(), 0.0)
        << "rewards must have updated the codec Q-values";

    // The decision record surfaces the codec pick.
    ASSERT_NE(policy.lastDecision(), nullptr);
    EXPECT_TRUE(policy.lastDecision()->has_codec);
    EXPECT_FALSE(policy.lastDecision()->codec_name.empty());
}

TEST(FedGpoCodecAxis, AdaptiveCodecKeepsBitIdenticalFirstDecisions)
{
    // The codec table draws from its own stream: the first round's
    // (B, E, K) choices must be unchanged by enabling the fourth knob.
    core::FedGpoConfig base;
    base.seed = 9;
    core::FedGpoConfig adaptive = base;
    adaptive.adapt_codec = true;
    core::FedGpo a(base), b(adaptive);
    EXPECT_EQ(a.chooseClients(10), b.chooseClients(10));
}

} // namespace
} // namespace comm
} // namespace fedgpo
