/**
 * @file
 * Tests for the FL value types, the Client local-training step, and the
 * convergence tracker.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/convergence.h"
#include "fl/types.h"
#include "models/zoo.h"
#include "util/rng.h"

namespace fedgpo {
namespace fl {
namespace {

TEST(GlobalParams, ToStringMatchesPaperNotation)
{
    GlobalParams p{8, 10, 20};
    EXPECT_EQ(p.toString(), "(8, 10, 20)");
}

TEST(GlobalParams, Equality)
{
    GlobalParams a{8, 10, 20}, b{8, 10, 20}, c{4, 10, 20};
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(RoundResult, GoodputPerJouleCountsKeptWorkOnly)
{
    RoundResult r;
    r.energy_total = 100.0;
    ClientRoundReport kept;
    kept.samples = 50;
    kept.params.epochs = 2;
    ClientRoundReport dropped;
    dropped.samples = 50;
    dropped.params.epochs = 2;
    dropped.dropped = true;
    r.participants = {kept, dropped};
    EXPECT_DOUBLE_EQ(r.goodputPerJoule(), 1.0);
    r.energy_total = 0.0;
    EXPECT_DOUBLE_EQ(r.goodputPerJoule(), 0.0);
}

class ClientTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        util::Rng data_rng(1);
        dataset_ = data::makeSyntheticMnist(60, data_rng);
        shard_.clear();
        for (std::size_t i = 0; i < 24; ++i)
            shard_.push_back(i);
    }

    data::Dataset dataset_;
    std::vector<std::size_t> shard_;
};

TEST_F(ClientTest, LocalTrainReturnsFullWeightVector)
{
    Client client(0, device::Category::High, shard_,
                  device::InterferenceProcess(false), util::Rng(2));
    auto model = models::buildModel(models::Workload::CnnMnist, 3);
    util::Rng train_rng(20);
    auto result = client.localTrain(*model, train_rng, dataset_,
                                    PerDeviceParams{8, 1}, 0.05);
    EXPECT_EQ(result.weights.size(), model->paramCount());
    EXPECT_EQ(result.samples, shard_.size());
    EXPECT_GT(result.train_loss, 0.0);
    EXPECT_TRUE(std::isfinite(result.train_loss));
}

TEST_F(ClientTest, TrainingChangesWeights)
{
    Client client(0, device::Category::Mid, shard_,
                  device::InterferenceProcess(false), util::Rng(4));
    auto model = models::buildModel(models::Workload::CnnMnist, 3);
    auto before = model->saveParams();
    util::Rng train_rng(21);
    client.localTrain(*model, train_rng, dataset_, PerDeviceParams{8, 2},
                      0.05);
    auto after = model->saveParams();
    EXPECT_NE(before, after);
}

TEST_F(ClientTest, MoreEpochsLowerLocalLoss)
{
    auto model1 = models::buildModel(models::Workload::CnnMnist, 3);
    auto model2 = models::buildModel(models::Workload::CnnMnist, 3);
    Client c1(0, device::Category::High, shard_,
              device::InterferenceProcess(false), util::Rng(5));
    Client c2(0, device::Category::High, shard_,
              device::InterferenceProcess(false), util::Rng(5));
    util::Rng rng1(22), rng10(22);
    auto r1 = c1.localTrain(*model1, rng1, dataset_, PerDeviceParams{8, 1},
                            0.05);
    auto r10 = c2.localTrain(*model2, rng10, dataset_,
                             PerDeviceParams{8, 10}, 0.05);
    EXPECT_LT(r10.train_loss, r1.train_loss);
}

TEST_F(ClientTest, RuntimeStateAdvances)
{
    Client client(0, device::Category::Low, shard_,
                  device::InterferenceProcess(true, 1.0), util::Rng(6));
    device::NetworkModel net(false);
    client.stepRuntime(net);
    EXPECT_GT(client.network().bandwidth_mbps, 0.0);
}

TEST_F(ClientTest, BatchLargerThanShardStillTrains)
{
    Client client(0, device::Category::High, shard_,
                  device::InterferenceProcess(false), util::Rng(7));
    auto model = models::buildModel(models::Workload::CnnMnist, 3);
    util::Rng train_rng(23);
    auto result = client.localTrain(*model, train_rng, dataset_,
                                    PerDeviceParams{32, 1}, 0.05);
    EXPECT_EQ(result.samples, shard_.size());
}

TEST(ConvergenceTracker, SettlesAfterPlateau)
{
    ConvergenceTracker tracker(3, 0.01, 0.5);
    tracker.add(0.2);
    tracker.add(0.5);
    tracker.add(0.8);
    EXPECT_FALSE(tracker.converged());
    tracker.add(0.85);
    tracker.add(0.853);
    tracker.add(0.854);  // window improvement < 0.01 and above the floor
    EXPECT_TRUE(tracker.converged());
    EXPECT_GT(tracker.convergedRound(), 3);
}

TEST(ConvergenceTracker, FloorBlocksChanceLevelPlateaus)
{
    ConvergenceTracker tracker(3, 0.01, 0.5);
    for (int i = 0; i < 10; ++i)
        tracker.add(0.1);  // flat but hopeless
    EXPECT_FALSE(tracker.converged());
}

TEST(ConvergenceTracker, FirstDetectionSticks)
{
    ConvergenceTracker tracker(2, 0.05, 0.0);
    tracker.add(0.6);
    tracker.add(0.6);
    ASSERT_TRUE(tracker.converged());
    const int round = tracker.convergedRound();
    tracker.add(0.9);  // later improvement must not move the mark
    EXPECT_EQ(tracker.convergedRound(), round);
}

TEST(ConvergenceTracker, TracksBestAccuracy)
{
    ConvergenceTracker tracker;
    tracker.add(0.3);
    tracker.add(0.9);
    tracker.add(0.7);
    EXPECT_DOUBLE_EQ(tracker.bestAccuracy(), 0.9);
    EXPECT_EQ(tracker.history().size(), 3u);
}

TEST(RoundsToAccuracy, FindsFirstCrossing)
{
    EXPECT_EQ(roundsToAccuracy({0.1, 0.5, 0.9, 0.95}, 0.9), 3);
    EXPECT_EQ(roundsToAccuracy({0.1, 0.2}, 0.9), -1);
    EXPECT_EQ(roundsToAccuracy({}, 0.5), -1);
}

} // namespace
} // namespace fl
} // namespace fedgpo
