/**
 * @file
 * Tests for the IID and Dirichlet non-IID partitioners, including
 * parameterized sweeps over the concentration alpha (the paper uses
 * alpha = 0.1).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/partition.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace fedgpo {
namespace data {
namespace {

/** Every sample must land in exactly one shard. */
void
expectExactCover(const Partition &shards, std::size_t n_samples)
{
    std::vector<int> seen(n_samples, 0);
    for (const auto &shard : shards)
        for (std::size_t idx : shard) {
            ASSERT_LT(idx, n_samples);
            ++seen[idx];
        }
    for (std::size_t i = 0; i < n_samples; ++i)
        EXPECT_EQ(seen[i], 1) << "sample " << i;
}

TEST(IidPartition, EvenSizes)
{
    util::Rng rng(1);
    Dataset ds = makeSyntheticMnist(103, rng);
    util::Rng prng(2);
    auto shards = iidPartition(ds, 10, prng);
    ASSERT_EQ(shards.size(), 10u);
    for (const auto &s : shards) {
        EXPECT_GE(s.size(), 10u);
        EXPECT_LE(s.size(), 11u);
    }
    expectExactCover(shards, ds.size());
}

TEST(IidPartition, ShardsSeeMostClasses)
{
    util::Rng rng(3);
    Dataset ds = makeSyntheticMnist(600, rng);
    util::Rng prng(4);
    auto shards = iidPartition(ds, 10, prng);
    for (const auto &s : shards)
        EXPECT_GE(ds.classesPresent(s), 8u);
}

TEST(DirichletPartition, ExactCover)
{
    util::Rng rng(5);
    Dataset ds = makeSyntheticMnist(400, rng);
    util::Rng prng(6);
    auto shards = dirichletPartition(ds, 16, 0.1, prng);
    ASSERT_EQ(shards.size(), 16u);
    expectExactCover(shards, ds.size());
}

TEST(DirichletPartition, LowAlphaSkewsClasses)
{
    util::Rng rng(7);
    Dataset ds = makeSyntheticMnist(1000, rng);
    util::Rng iid_rng(8), dir_rng(8);
    auto iid = iidPartition(ds, 20, iid_rng);
    auto dir = dirichletPartition(ds, 20, 0.1, dir_rng);
    double iid_classes = 0.0, dir_classes = 0.0;
    for (std::size_t d = 0; d < 20; ++d) {
        iid_classes += static_cast<double>(ds.classesPresent(iid[d]));
        dir_classes += static_cast<double>(ds.classesPresent(dir[d]));
    }
    EXPECT_LT(dir_classes, iid_classes * 0.75)
        << "Dirichlet(0.1) shards must hold far fewer classes than IID";
}

TEST(DirichletPartition, MinimumShardSizeHonored)
{
    util::Rng rng(9);
    Dataset ds = makeSyntheticMnist(500, rng);
    util::Rng prng(10);
    auto shards = dirichletPartition(ds, 25, 0.05, prng, 8);
    for (const auto &s : shards)
        EXPECT_GE(s.size(), 8u);
}

TEST(MakePartition, Dispatch)
{
    util::Rng rng(11);
    Dataset ds = makeSyntheticMnist(200, rng);
    util::Rng prng(12);
    auto iid = makePartition(ds, 5, Distribution::IidIdeal, prng);
    EXPECT_EQ(iid.size(), 5u);
    auto non = makePartition(ds, 5, Distribution::NonIid, prng);
    EXPECT_EQ(non.size(), 5u);
}

/** Parameterized sweep: cover + min-size invariants hold for any alpha. */
class DirichletAlphaTest : public ::testing::TestWithParam<double>
{
};

TEST_P(DirichletAlphaTest, InvariantsHold)
{
    const double alpha = GetParam();
    util::Rng rng(13);
    Dataset ds = makeSyntheticMnist(600, rng);
    util::Rng prng(14);
    auto shards = dirichletPartition(ds, 12, alpha, prng);
    ASSERT_EQ(shards.size(), 12u);
    expectExactCover(shards, ds.size());
    for (const auto &s : shards)
        EXPECT_GE(s.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, DirichletAlphaTest,
                         ::testing::Values(0.05, 0.1, 0.5, 1.0, 10.0));

/** Parameterized sweep over device counts. */
class PartitionDeviceCountTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PartitionDeviceCountTest, CoverAtAnyFleetSize)
{
    const std::size_t n_dev = GetParam();
    util::Rng rng(15);
    Dataset ds = makeSyntheticMnist(400, rng);
    util::Rng prng(16);
    auto iid = iidPartition(ds, n_dev, prng);
    expectExactCover(iid, ds.size());
    auto dir = dirichletPartition(ds, n_dev, 0.1, prng);
    expectExactCover(dir, ds.size());
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, PartitionDeviceCountTest,
                         ::testing::Values(1u, 2u, 10u, 40u));

} // namespace
} // namespace data
} // namespace fedgpo
