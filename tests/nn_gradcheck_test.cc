/**
 * @file
 * Finite-difference gradient checks for every trainable layer and the
 * loss head. These are the ground-truth tests of the NN library: if the
 * analytic backward pass matches numeric differentiation of the forward
 * pass, FedAvg's learning dynamics upstream can be trusted.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise_conv2d.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/model.h"
#include "nn/pool2d.h"
#include "util/rng.h"

namespace fedgpo {
namespace nn {
namespace {

using tensor::Tensor;

/** Fill a tensor with small random values. */
void
randomize(Tensor &t, util::Rng &rng, double span = 0.5)
{
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-span, span));
}

/**
 * Scalar loss used for the checks: weighted sum of the layer output,
 * with fixed quasi-random weights so every output element matters.
 */
double
probeLoss(const Tensor &out)
{
    double total = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i) {
        const double w = std::sin(0.7 * static_cast<double>(i) + 0.3);
        total += w * out[i];
    }
    return total;
}

Tensor
probeGrad(const Tensor &out)
{
    Tensor g(out.shape());
    for (std::size_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(std::sin(0.7 * static_cast<double>(i) +
                                           0.3));
    return g;
}

/**
 * Check d(probeLoss)/d(input) and d(probeLoss)/d(params) of a layer
 * against central finite differences.
 */
void
checkLayer(Layer &layer, Tensor input, double tol = 2e-2)
{
    const double eps = 1e-2;  // float32 forward => coarse but stable steps

    // Analytic gradients.
    layer.zeroGrad();
    const Tensor &out = layer.forward(input, true);
    Tensor dy = probeGrad(out);
    const Tensor &din_ref = layer.backward(dy);
    Tensor din = din_ref;  // copy before buffers get reused
    std::vector<Tensor> dparams;
    for (Tensor *g : layer.grads())
        dparams.push_back(*g);

    // Numeric input gradient (probe a deterministic subset for speed).
    for (std::size_t i = 0; i < input.numel();
         i += std::max<std::size_t>(1, input.numel() / 24)) {
        const float saved = input[i];
        input[i] = saved + static_cast<float>(eps);
        const double up = probeLoss(layer.forward(input, true));
        input[i] = saved - static_cast<float>(eps);
        const double down = probeLoss(layer.forward(input, true));
        input[i] = saved;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(din[i], numeric, tol)
            << "input grad mismatch at flat index " << i;
    }

    // Numeric parameter gradients.
    auto params = layer.params();
    for (std::size_t p = 0; p < params.size(); ++p) {
        Tensor &w = *params[p];
        for (std::size_t i = 0; i < w.numel();
             i += std::max<std::size_t>(1, w.numel() / 24)) {
            const float saved = w[i];
            w[i] = saved + static_cast<float>(eps);
            const double up = probeLoss(layer.forward(input, true));
            w[i] = saved - static_cast<float>(eps);
            const double down = probeLoss(layer.forward(input, true));
            w[i] = saved;
            const double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(dparams[p][i], numeric, tol)
                << "param " << p << " grad mismatch at flat index " << i;
        }
    }
}

TEST(GradCheck, Dense)
{
    util::Rng rng(1);
    Dense layer(7, 5, rng);
    Tensor x({3, 7});
    randomize(x, rng);
    checkLayer(layer, x);
}

TEST(GradCheck, Conv2D)
{
    util::Rng rng(2);
    Conv2D layer(2, 3, 3, 6, 6, 1, 1, rng);
    Tensor x({2, 2, 6, 6});
    randomize(x, rng);
    checkLayer(layer, x);
}

TEST(GradCheck, Conv2DStride2NoPad)
{
    util::Rng rng(3);
    Conv2D layer(1, 2, 3, 7, 7, 2, 0, rng);
    Tensor x({2, 1, 7, 7});
    randomize(x, rng);
    checkLayer(layer, x);
}

TEST(GradCheck, Conv2DPointwise)
{
    util::Rng rng(4);
    Conv2D layer(4, 6, 1, 5, 5, 1, 0, rng);
    Tensor x({2, 4, 5, 5});
    randomize(x, rng);
    checkLayer(layer, x);
}

TEST(GradCheck, DepthwiseConv2D)
{
    util::Rng rng(5);
    DepthwiseConv2D layer(3, 3, 6, 6, 1, 1, rng);
    Tensor x({2, 3, 6, 6});
    randomize(x, rng);
    checkLayer(layer, x);
}

TEST(GradCheck, DepthwiseConv2DStride2)
{
    util::Rng rng(6);
    DepthwiseConv2D layer(2, 3, 8, 8, 2, 1, rng);
    Tensor x({2, 2, 8, 8});
    randomize(x, rng);
    checkLayer(layer, x);
}

TEST(GradCheck, ReLU)
{
    util::Rng rng(7);
    ReLU layer;
    Tensor x({4, 9});
    // Keep activations away from the kink where finite differences lie.
    randomize(x, rng, 1.0);
    for (std::size_t i = 0; i < x.numel(); ++i)
        if (std::fabs(x[i]) < 0.05f)
            x[i] = 0.2f;
    checkLayer(layer, x);
}

TEST(GradCheck, Tanh)
{
    util::Rng rng(8);
    Tanh layer;
    Tensor x({3, 6});
    randomize(x, rng, 1.0);
    checkLayer(layer, x);
}

TEST(GradCheck, MaxPool)
{
    util::Rng rng(9);
    MaxPool2D layer(2, 2, 6, 6);
    Tensor x({2, 2, 6, 6});
    randomize(x, rng, 1.0);
    // Separate elements so the argmax is stable under the probe step.
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] += 0.1f * static_cast<float>(i % 7);
    checkLayer(layer, x);
}

TEST(GradCheck, Flatten)
{
    util::Rng rng(10);
    Flatten layer;
    Tensor x({2, 3, 2, 2});
    randomize(x, rng);
    checkLayer(layer, x);
}

TEST(GradCheck, LSTM)
{
    util::Rng rng(11);
    LSTM layer(4, 5, 3, rng);
    Tensor x({2, 3, 4});
    randomize(x, rng, 0.8);
    checkLayer(layer, x, 3e-2);
}

TEST(GradCheck, LSTMSingleStep)
{
    util::Rng rng(12);
    LSTM layer(3, 4, 1, rng);
    Tensor x({2, 1, 3});
    randomize(x, rng, 0.8);
    checkLayer(layer, x);
}

TEST(GradCheck, SoftmaxCrossEntropyMatchesNumeric)
{
    util::Rng rng(13);
    Tensor logits({4, 6});
    randomize(logits, rng, 1.0);
    std::vector<int> labels = {0, 3, 5, 2};

    SoftmaxCrossEntropy loss;
    loss.forward(logits, labels);
    Tensor grad = loss.backward();

    const double eps = 1e-3;
    for (std::size_t i = 0; i < logits.numel(); i += 3) {
        const float saved = logits[i];
        logits[i] = saved + static_cast<float>(eps);
        const double up = loss.forward(logits, labels);
        logits[i] = saved - static_cast<float>(eps);
        const double down = loss.forward(logits, labels);
        logits[i] = saved;
        EXPECT_NEAR(grad[i], (up - down) / (2.0 * eps), 1e-3);
    }
}

TEST(GradCheck, FullModelChain)
{
    // A miniature conv->pool->dense stack checked end-to-end through
    // Model::trainStep's backward chain, via loss differences.
    util::Rng rng(14);
    Model model;
    model.add(std::make_unique<Conv2D>(1, 2, 3, 6, 6, 1, 1, rng));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<MaxPool2D>(2, 2, 6, 6));
    model.add(std::make_unique<Flatten>());
    model.add(std::make_unique<Dense>(2 * 3 * 3, 4, rng));

    Tensor x({3, 1, 6, 6});
    randomize(x, rng, 1.0);
    std::vector<int> labels = {1, 0, 3};

    model.zeroGrad();
    model.trainStep(x, labels);
    auto params = model.params();
    auto grads = model.grads();

    const double eps = 5e-3;
    for (std::size_t p = 0; p < params.size(); ++p) {
        Tensor &w = *params[p];
        Tensor &g = *grads[p];
        for (std::size_t i = 0; i < w.numel();
             i += std::max<std::size_t>(1, w.numel() / 8)) {
            const float saved = w[i];
            w[i] = saved + static_cast<float>(eps);
            const double up = model.loss().forward(model.forward(x), labels);
            w[i] = saved - static_cast<float>(eps);
            const double down =
                model.loss().forward(model.forward(x), labels);
            w[i] = saved;
            EXPECT_NEAR(g[i], (up - down) / (2.0 * eps), 2e-2)
                << "param " << p << " index " << i;
        }
    }
}

} // namespace
} // namespace nn
} // namespace fedgpo
