/**
 * @file
 * Integration tests of the observability wiring: round-observer event
 * ordering (including onDecision), the FedGPO decision record's
 * round-trip through the JSONL trace, and the inertness guarantee that
 * instrumentation never perturbs simulated results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/action_space.h"
#include "core/fedgpo.h"
#include "fl/round/trace_writer.h"
#include "fl/simulator.h"
#include "obs/metrics.h"
#include "util/json.h"

using namespace fedgpo;
using namespace fedgpo::fl;

namespace {

FlConfig
tinyConfig()
{
    FlConfig config;
    config.n_devices = 8;
    config.train_samples = 96;
    config.test_samples = 32;
    config.seed = 11;
    config.interference = true;
    config.network_unstable = true;
    config.threads = 1;
    return config;
}

/** Observer that journals the event stream as readable tags. */
class EventLog : public round::RoundObserver
{
  public:
    std::vector<std::string> events;

    void onRoundStart(const round::RoundContext &) override
    {
        events.push_back("start");
    }
    void onStage(const round::RoundContext &, round::Stage stage,
                 double) override
    {
        events.push_back(std::string("stage:") + round::stageName(stage));
    }
    void onClientReport(const round::RoundContext &,
                        const ClientRoundReport &) override
    {
        events.push_back("client");
    }
    void onAggregate(const round::RoundContext &,
                     const round::AggregationStats &) override
    {
        events.push_back("aggregate");
    }
    void onDecision(const round::RoundContext &,
                    const obs::DecisionRecord &record) override
    {
        events.push_back("decision");
        last_decision = record;
    }
    void onRoundEnd(const RoundResult &) override
    {
        events.push_back("end");
    }

    std::size_t count(const std::string &tag) const
    {
        std::size_t n = 0;
        for (const std::string &e : events)
            n += (e == tag);
        return n;
    }
    std::ptrdiff_t indexOf(const std::string &tag) const
    {
        for (std::size_t i = 0; i < events.size(); ++i)
            if (events[i] == tag)
                return static_cast<std::ptrdiff_t>(i);
        return -1;
    }

    obs::DecisionRecord last_decision;
};

TEST(RoundObserverOrdering, DecisionFiresAfterEvaluateBeforeRoundEnd)
{
    FlSimulator sim(tinyConfig());
    core::FedGpo policy;
    EventLog log;
    sim.addRoundObserver(&log);
    sim.runRound(policy);
    sim.removeRoundObserver(&log);

    // One decision, after every stage (Evaluate last), before the end.
    EXPECT_EQ(log.count("decision"), 1u);
    EXPECT_EQ(log.count("end"), 1u);
    const std::ptrdiff_t evaluate = log.indexOf("stage:evaluate");
    const std::ptrdiff_t decision = log.indexOf("decision");
    const std::ptrdiff_t end = log.indexOf("end");
    ASSERT_GE(evaluate, 0);
    ASSERT_GE(decision, 0);
    ASSERT_GE(end, 0);
    EXPECT_LT(evaluate, decision);
    EXPECT_LT(decision, end);
    EXPECT_EQ(end, static_cast<std::ptrdiff_t>(log.events.size()) - 1);

    // The record handed to observers is the policy's completed record.
    EXPECT_TRUE(log.last_decision.complete);
    EXPECT_EQ(log.last_decision.round, 1);
    EXPECT_FALSE(log.last_decision.devices.empty());
}

TEST(RoundObserverOrdering, StagesFireInPipelineOrder)
{
    FlSimulator sim(tinyConfig());
    core::FedGpo policy;
    EventLog log;
    sim.addRoundObserver(&log);
    sim.runRound(policy);
    sim.removeRoundObserver(&log);

    std::vector<std::string> stages;
    for (const std::string &e : log.events)
        if (e.rfind("stage:", 0) == 0)
            stages.push_back(e.substr(6));
    ASSERT_EQ(stages.size(), round::kStageCount);
    const std::vector<std::string> expected = {
        "select",    "train",     "encode", "cost",   "recover",
        "straggler", "aggregate", "energy", "evaluate"};
    EXPECT_EQ(stages, expected);
}

TEST(RoundObserverOrdering, NoDecisionWithoutAPolicyRecord)
{
    FlSimulator sim(tinyConfig());
    EventLog log;
    sim.addRoundObserver(&log);
    sim.runRoundWithParams(GlobalParams{4, 1, 6});
    sim.removeRoundObserver(&log);
    EXPECT_EQ(log.count("decision"), 0u);
    EXPECT_EQ(log.count("end"), 1u);
}

TEST(DecisionTrace, RoundTripsThroughJsonl)
{
    const std::string path = "obs_trace_test.jsonl";
    constexpr int kRounds = 3;
    {
        FlSimulator sim(tinyConfig());
        core::FedGpo policy;
        round::JsonlTraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        sim.addRoundObserver(&trace);
        for (int r = 0; r < kRounds; ++r)
            sim.runRound(policy);
        sim.removeRoundObserver(&trace);
        EXPECT_EQ(trace.roundsWritten(), static_cast<std::size_t>(kRounds));
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    int rounds = 0;
    while (std::getline(in, line)) {
        ++rounds;
        util::JsonValue record;
        std::string error;
        ASSERT_TRUE(util::JsonValue::parse(line, record, &error)) << error;

        const util::JsonValue &decision = record.at("decision");
        ASSERT_TRUE(decision.isObject()) << "round " << rounds;
        EXPECT_EQ(decision.at("round").asNumber(), rounds);
        EXPECT_DOUBLE_EQ(decision.at("epsilon").asNumber(), 0.1);
        EXPECT_TRUE(decision.at("complete").asBool());

        // The global-K head: full Q-row plus the chosen action.
        const util::JsonValue &k = decision.at("k");
        ASSERT_TRUE(k.isObject());
        EXPECT_TRUE(k.has("state"));
        EXPECT_TRUE(k.has("explored"));
        EXPECT_TRUE(k.has("swept"));
        EXPECT_EQ(k.at("q_row").size(), core::kNumClientActions);
        EXPECT_GE(k.at("value").asNumber(), 1.0);

        // One device decision per selected participant.
        const util::JsonValue &devices = decision.at("devices");
        ASSERT_TRUE(devices.isArray());
        ASSERT_GT(devices.size(), 0u);
        for (std::size_t i = 0; i < devices.size(); ++i) {
            const util::JsonValue &d = devices.at(i);
            EXPECT_TRUE(d.has("id"));
            EXPECT_TRUE(d.has("state"));
            EXPECT_TRUE(d.has("action"));
            EXPECT_GT(d.at("batch").asNumber(), 0.0);
            EXPECT_GT(d.at("epochs").asNumber(), 0.0);
            EXPECT_TRUE(d.has("explored"));
            EXPECT_TRUE(d.has("q"));
            EXPECT_TRUE(d.has("visits"));
        }

        // Decomposed Eq. 1 reward: at least the energy/accuracy/
        // improvement terms, and the terms explain the total.
        const util::JsonValue &reward = decision.at("reward");
        ASSERT_TRUE(reward.isObject());
        EXPECT_TRUE(reward.has("energy_global_term"));
        EXPECT_TRUE(reward.has("energy_local_term"));
        EXPECT_TRUE(reward.has("accuracy_term"));
        EXPECT_TRUE(reward.has("improvement_term"));
        EXPECT_TRUE(reward.has("stall_penalty"));
        const double sum = reward.at("energy_global_term").asNumber() +
                           reward.at("energy_local_term").asNumber() +
                           reward.at("accuracy_term").asNumber() +
                           reward.at("improvement_term").asNumber() +
                           reward.at("stall_penalty").asNumber() +
                           reward.at("abort_penalty").asNumber();
        EXPECT_NEAR(sum, reward.at("total").asNumber(), 1e-9);
    }
    EXPECT_EQ(rounds, kRounds);
    std::remove(path.c_str());
}

TEST(DecisionTrace, MetricsSectionFollowsTheLevel)
{
    const std::string path = "obs_trace_metrics_test.jsonl";
    {
        obs::ScopedLevel scoped(obs::Level::Basic);
        FlSimulator sim(tinyConfig());
        round::JsonlTraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        sim.addRoundObserver(&trace);
        sim.runRoundWithParams(GlobalParams{4, 1, 6});
        sim.removeRoundObserver(&trace);
    }
    {
        std::ifstream in(path);
        std::string line;
        ASSERT_TRUE(std::getline(in, line));
        util::JsonValue record;
        std::string error;
        ASSERT_TRUE(util::JsonValue::parse(line, record, &error)) << error;
        EXPECT_TRUE(record.at("metrics").isObject());
        EXPECT_TRUE(record.at("metrics").at("counters").isObject());
    }
    std::remove(path.c_str());

    // At level off the section is absent and the line still parses.
    {
        obs::ScopedLevel scoped(obs::Level::Off);
        FlSimulator sim(tinyConfig());
        round::JsonlTraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        sim.addRoundObserver(&trace);
        sim.runRoundWithParams(GlobalParams{4, 1, 6});
        sim.removeRoundObserver(&trace);
    }
    {
        std::ifstream in(path);
        std::string line;
        ASSERT_TRUE(std::getline(in, line));
        util::JsonValue record;
        std::string error;
        ASSERT_TRUE(util::JsonValue::parse(line, record, &error)) << error;
        EXPECT_FALSE(record.has("metrics"));
    }
    std::remove(path.c_str());
}

TEST(Inertness, ProfileMetricsDoNotPerturbFedGpoResults)
{
    // Two identical campaigns, one fully instrumented, one dark: every
    // simulated quantity must match bit-for-bit (the obs layer reads
    // Q-state but never draws randomness or touches modeled math).
    constexpr int kRounds = 4;
    std::vector<RoundResult> off_results, profile_results;
    {
        obs::ScopedLevel scoped(obs::Level::Off);
        FlSimulator sim(tinyConfig());
        core::FedGpo policy;
        for (int r = 0; r < kRounds; ++r)
            off_results.push_back(sim.runRound(policy));
    }
    {
        obs::ScopedLevel scoped(obs::Level::Profile);
        FlSimulator sim(tinyConfig());
        core::FedGpo policy;
        for (int r = 0; r < kRounds; ++r)
            profile_results.push_back(sim.runRound(policy));
        obs::MetricsRegistry::instance().reset();
    }
    for (int r = 0; r < kRounds; ++r) {
        SCOPED_TRACE("round " + std::to_string(r + 1));
        const RoundResult &a = off_results[static_cast<std::size_t>(r)];
        const RoundResult &b = profile_results[static_cast<std::size_t>(r)];
        EXPECT_EQ(a.test_accuracy, b.test_accuracy);
        EXPECT_EQ(a.test_loss, b.test_loss);
        EXPECT_EQ(a.train_loss, b.train_loss);
        EXPECT_EQ(a.round_time, b.round_time);
        EXPECT_EQ(a.energy_total, b.energy_total);
        EXPECT_EQ(a.samples_aggregated, b.samples_aggregated);
        EXPECT_EQ(a.participants.size(), b.participants.size());
    }
}

} // namespace
