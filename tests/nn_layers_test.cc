/**
 * @file
 * Behavioural unit tests for the NN layers and the Model container
 * (shapes, censuses, FLOP accounting, parameter (de)serialization).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise_conv2d.h"
#include "nn/lstm.h"
#include "nn/model.h"
#include "nn/pool2d.h"
#include "nn/sgd.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fedgpo {
namespace nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Dense, OutputShapeAndBias)
{
    util::Rng rng(1);
    Dense layer(3, 2, rng);
    // Zero the weights so output == bias.
    layer.params()[0]->zero();
    (*layer.params()[1])[0] = 1.5f;
    (*layer.params()[1])[1] = -0.5f;
    Tensor x({4, 3}, 1.0f);
    const Tensor &y = layer.forward(x, false);
    ASSERT_EQ(y.shape(), (Shape{4, 2}));
    EXPECT_EQ(y.at(0, 0), 1.5f);
    EXPECT_EQ(y.at(3, 1), -0.5f);
}

TEST(Dense, InfWeightAgainstZeroInputYieldsNaNNotZero)
{
    // Non-finite contract of the kernel layer: 0 * Inf is NaN, never a
    // silently skipped term, so a diverged weight is visible in the
    // activations even when the corresponding input happens to be zero.
    util::Rng rng(41);
    Dense layer(2, 2, rng);
    (*layer.params()[0])[0] = std::numeric_limits<float>::infinity();
    Tensor x({1, 2}, 0.0f);
    const Tensor &y = layer.forward(x, false);
    EXPECT_TRUE(std::isnan(y.at(0, 0)))
        << "Inf weight masked by zero input: " << y.at(0, 0);
}

TEST(DepthwiseConv2D, ZeroUpstreamGradAgainstInfInputPropagatesNaN)
{
    // Regression for the old `g == 0.0f` skip in the depthwise backward:
    // a zero upstream gradient against an Inf activation must put NaN in
    // the weight gradient, not leave it untouched.
    util::Rng rng(42);
    DepthwiseConv2D layer(1, 3, 4, 4, 1, 1, rng);
    Tensor x({1, 1, 4, 4}, 0.0f);
    x[0] = std::numeric_limits<float>::infinity();
    layer.forward(x, true);
    Tensor dy({1, 1, 4, 4}, 0.0f);
    layer.backward(dy);
    const Tensor &dw = *layer.grads()[0];
    bool any_nan = false;
    for (std::size_t i = 0; i < dw.numel(); ++i)
        any_nan = any_nan || std::isnan(dw[i]);
    EXPECT_TRUE(any_nan)
        << "0 * Inf masked by the depthwise zero-gradient skip";
}

TEST(Dense, ParamCountAndKind)
{
    util::Rng rng(2);
    Dense layer(10, 7, rng);
    EXPECT_EQ(layer.paramCount(), 10u * 7u + 7u);
    EXPECT_EQ(layer.kind(), LayerKind::Dense);
    EXPECT_EQ(layer.flopsPerSample(), 2ull * 70 + 7);
}

TEST(Dense, GradAccumulatesAcrossBackward)
{
    util::Rng rng(3);
    Dense layer(2, 2, rng);
    Tensor x({1, 2}, 1.0f);
    Tensor dy({1, 2}, 1.0f);
    layer.zeroGrad();
    layer.forward(x, true);
    layer.backward(dy);
    Tensor g1 = *layer.grads()[0];
    layer.forward(x, true);
    layer.backward(dy);
    Tensor g2 = *layer.grads()[0];
    for (std::size_t i = 0; i < g1.numel(); ++i)
        EXPECT_NEAR(g2[i], 2.0f * g1[i], 1e-6);
}

TEST(Conv2D, OutputGeometry)
{
    util::Rng rng(4);
    Conv2D same(3, 8, 3, 16, 16, 1, 1, rng);
    EXPECT_EQ(same.outHeight(), 16u);
    EXPECT_EQ(same.outWidth(), 16u);
    Conv2D strided(3, 8, 3, 15, 15, 2, 0, rng);
    EXPECT_EQ(strided.outHeight(), 7u);
    Tensor x({2, 3, 16, 16});
    const Tensor &y = same.forward(x, false);
    EXPECT_EQ(y.shape(), (Shape{2, 8, 16, 16}));
}

TEST(Conv2D, KnownConvolution)
{
    util::Rng rng(5);
    Conv2D layer(1, 1, 3, 3, 3, 1, 0, rng);
    // Set the kernel to an averaging filter and bias to zero.
    Tensor &w = *layer.params()[0];
    for (std::size_t i = 0; i < w.numel(); ++i)
        w[i] = 1.0f;
    layer.params()[1]->zero();
    Tensor x({1, 1, 3, 3});
    for (std::size_t i = 0; i < 9; ++i)
        x[i] = static_cast<float>(i + 1);
    const Tensor &y = layer.forward(x, false);
    ASSERT_EQ(y.numel(), 1u);
    EXPECT_EQ(y[0], 45.0f);  // sum 1..9
}

TEST(Conv2D, FlopsScaleWithFilters)
{
    util::Rng rng(6);
    Conv2D small(1, 4, 3, 8, 8, 1, 1, rng);
    Conv2D big(1, 8, 3, 8, 8, 1, 1, rng);
    EXPECT_GT(big.flopsPerSample(), small.flopsPerSample());
    EXPECT_EQ(big.kind(), LayerKind::Conv);
}

TEST(DepthwiseConv2D, PreservesChannelCount)
{
    util::Rng rng(7);
    DepthwiseConv2D layer(5, 3, 8, 8, 1, 1, rng);
    Tensor x({3, 5, 8, 8});
    const Tensor &y = layer.forward(x, false);
    EXPECT_EQ(y.shape(), (Shape{3, 5, 8, 8}));
    EXPECT_EQ(layer.paramCount(), 5u * 9u + 5u);
}

TEST(DepthwiseConv2D, ChannelsAreIndependent)
{
    util::Rng rng(8);
    DepthwiseConv2D layer(2, 3, 4, 4, 1, 1, rng);
    Tensor x({1, 2, 4, 4});
    // Only channel 0 carries signal.
    for (std::size_t i = 0; i < 16; ++i)
        x[i] = 1.0f;
    layer.params()[1]->zero();
    const Tensor &y = layer.forward(x, false);
    // Channel 1 output must be exactly zero (bias-free, zero input).
    for (std::size_t i = 16; i < 32; ++i)
        EXPECT_EQ(y[i], 0.0f);
}

TEST(MaxPool, SelectsMaxAndRoutesGradient)
{
    MaxPool2D layer(1, 2, 4, 4);
    Tensor x({1, 1, 4, 4});
    for (std::size_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i);
    const Tensor &y = layer.forward(x, false);
    ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_EQ(y[0], 5.0f);
    EXPECT_EQ(y[3], 15.0f);
    Tensor dy({1, 1, 2, 2}, 1.0f);
    const Tensor &dx = layer.backward(dy);
    EXPECT_EQ(dx[5], 1.0f);
    EXPECT_EQ(dx[0], 0.0f);
    EXPECT_EQ(dx[15], 1.0f);
}

TEST(MaxPool, RejectsIndivisibleExtent)
{
    EXPECT_THROW(MaxPool2D(1, 3, 8, 8), util::FatalError);
}

TEST(ReLU, ClampsNegatives)
{
    ReLU layer;
    Tensor x({1, 4}, std::vector<float>{-1.0f, 0.0f, 0.5f, 2.0f});
    const Tensor &y = layer.forward(x, false);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_EQ(y[2], 0.5f);
    EXPECT_EQ(y[3], 2.0f);
}

TEST(Flatten, RoundTripShapes)
{
    Flatten layer;
    Tensor x({2, 3, 4, 5});
    const Tensor &y = layer.forward(x, false);
    EXPECT_EQ(y.shape(), (Shape{2, 60}));
    Tensor dy({2, 60});
    const Tensor &dx = layer.backward(dy);
    EXPECT_EQ(dx.shape(), (Shape{2, 3, 4, 5}));
}

TEST(LSTM, OutputIsLastHidden)
{
    util::Rng rng(9);
    LSTM layer(3, 6, 4, rng);
    Tensor x({2, 4, 3});
    const Tensor &y = layer.forward(x, false);
    EXPECT_EQ(y.shape(), (Shape{2, 6}));
    EXPECT_EQ(layer.kind(), LayerKind::Recurrent);
    EXPECT_EQ(layer.paramCount(), 3u * 24u + 6u * 24u + 24u);
}

TEST(LSTM, ZeroInputGivesBiasDrivenOutput)
{
    util::Rng rng(10);
    LSTM layer(2, 3, 2, rng);
    Tensor x({1, 2, 2});
    const Tensor &y1 = layer.forward(x, false);
    Tensor first = y1;
    const Tensor &y2 = layer.forward(x, false);
    for (std::size_t i = 0; i < first.numel(); ++i)
        EXPECT_EQ(first[i], y2[i]) << "forward must be deterministic";
}

TEST(Loss, PerfectPredictionHasLowLoss)
{
    SoftmaxCrossEntropy loss;
    Tensor logits({2, 3});
    logits.at(0, 1) = 20.0f;
    logits.at(1, 2) = 20.0f;
    double l = loss.forward(logits, {1, 2});
    EXPECT_LT(l, 1e-6);
    EXPECT_EQ(loss.correct(), 2u);
}

TEST(Loss, UniformLogitsGiveLogC)
{
    SoftmaxCrossEntropy loss;
    Tensor logits({1, 10});
    double l = loss.forward(logits, {4});
    EXPECT_NEAR(l, std::log(10.0), 1e-6);
}

TEST(Model, CensusCountsKinds)
{
    util::Rng rng(11);
    Model m;
    m.add(std::make_unique<Conv2D>(1, 2, 3, 8, 8, 1, 1, rng));
    m.add(std::make_unique<ReLU>());
    m.add(std::make_unique<DepthwiseConv2D>(2, 3, 8, 8, 1, 1, rng));
    m.add(std::make_unique<Flatten>());
    m.add(std::make_unique<Dense>(128, 4, rng));
    auto census = m.census();
    EXPECT_EQ(census.conv, 2u);   // conv + depthwise both count as Conv
    EXPECT_EQ(census.dense, 1u);
    EXPECT_EQ(census.recurrent, 0u);
}

TEST(Model, SaveLoadRoundTrip)
{
    util::Rng rng(12);
    Model m;
    m.add(std::make_unique<Dense>(4, 3, rng));
    m.add(std::make_unique<Dense>(3, 2, rng));
    auto saved = m.saveParams();
    EXPECT_EQ(saved.size(), m.paramCount());

    // Perturb, then restore.
    for (Tensor *p : m.params())
        p->fill(0.0f);
    m.loadParams(saved);
    auto again = m.saveParams();
    EXPECT_EQ(saved, again);
}

TEST(Model, LoadRejectsWrongLength)
{
    util::Rng rng(13);
    Model m;
    m.add(std::make_unique<Dense>(2, 2, rng));
    std::vector<float> bad(3, 0.0f);
    EXPECT_THROW(m.loadParams(bad), util::FatalError);
    std::vector<float> long_vec(100, 0.0f);
    EXPECT_THROW(m.loadParams(long_vec), util::FatalError);
}

TEST(Model, TrainFlopsIsTripleForward)
{
    util::Rng rng(14);
    Model m;
    m.add(std::make_unique<Dense>(8, 4, rng));
    EXPECT_EQ(m.trainFlopsPerSample(), 3ull * m.forwardFlopsPerSample());
}

TEST(Model, ParamBytesIsFloatSized)
{
    util::Rng rng(15);
    Model m;
    m.add(std::make_unique<Dense>(8, 4, rng));
    EXPECT_EQ(m.paramBytes(), m.paramCount() * sizeof(float));
}

TEST(Sgd, PlainStepMovesAgainstGradient)
{
    util::Rng rng(16);
    Model m;
    m.add(std::make_unique<Dense>(1, 1, rng));
    Tensor &w = *m.params()[0];
    Tensor &g = *m.grads()[0];
    w[0] = 1.0f;
    g[0] = 2.0f;
    Sgd sgd(0.1);
    sgd.step(m);
    EXPECT_NEAR(w[0], 0.8f, 1e-6);
}

TEST(Sgd, MomentumAccumulatesVelocity)
{
    util::Rng rng(17);
    Model m;
    m.add(std::make_unique<Dense>(1, 1, rng));
    Tensor &w = *m.params()[0];
    Tensor &g = *m.grads()[0];
    w[0] = 0.0f;
    Sgd sgd(1.0, 0.5);
    g[0] = 1.0f;
    sgd.step(m);  // v=1, w=-1
    EXPECT_NEAR(w[0], -1.0f, 1e-6);
    sgd.step(m);  // v=1.5, w=-2.5
    EXPECT_NEAR(w[0], -2.5f, 1e-6);
}

TEST(Model, EvaluateReportsAccuracy)
{
    util::Rng rng(18);
    Model m;
    m.add(std::make_unique<Dense>(2, 2, rng));
    // Identity-ish weights: class = argmax of input.
    Tensor &w = *m.params()[0];
    w.zero();
    w.at(0, 0) = 5.0f;
    w.at(1, 1) = 5.0f;
    m.params()[1]->zero();
    Tensor x({2, 2}, std::vector<float>{1, 0, 0, 1});
    auto r = m.evaluate(x, {0, 1});
    EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
    auto wrong = m.evaluate(x, {1, 0});
    EXPECT_DOUBLE_EQ(wrong.accuracy, 0.0);
}

} // namespace
} // namespace nn
} // namespace fedgpo
