/**
 * @file
 * Golden determinism test of the round pipeline: with the default
 * strategies (FedAvgAggregator + DeadlineDropPolicy), every RoundResult
 * must be bit-identical to the pre-engine monolithic round loop. The
 * literals below were captured (as C99 hexfloats, so they round-trip
 * exactly) from the commit immediately before the RoundEngine refactor,
 * for all three workloads over five rounds.
 *
 * Any change to these numbers is a behavior change of the simulator
 * itself — not a refactor — and must be made deliberately, re-capturing
 * the goldens in the same commit.
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "fl/simulator.h"
#include "obs/metrics.h"

using namespace fedgpo;
using namespace fedgpo::fl;

namespace {

struct GoldenRound
{
    double test_accuracy;
    double test_loss;
    double train_loss;
    double round_time;
    double energy_participants;
    double energy_idle;
    double energy_total;
    std::size_t dropped;
    std::size_t samples_aggregated;
};

// Capture config: 8 devices, 96/32 train/test samples, seed 11, both
// variance processes on, deadline_factor 2.0, five rounds of
// (B=4, E=1, K=6).
FlConfig
goldenConfig(models::Workload workload, std::size_t threads)
{
    FlConfig config;
    config.workload = workload;
    config.n_devices = 8;
    config.train_samples = 96;
    config.test_samples = 32;
    config.seed = 11;
    config.interference = true;
    config.network_unstable = true;
    config.deadline_factor = 2.0;
    config.threads = threads;
    return config;
}

constexpr GoldenRound kCnnMnist[] = {
    {0x1p-5, 0x1.473eaef814386p+1, 0x1.cc53f0ff051fp+1, 0x1.c3fb2e8db2ecep+2,
     0x1.a21c5894d77bap+6, 0x1.c3fb2e8db2ecep+1, 0x1.b03c32094513p+6, 0u,
     72u},
    {0x0p+0, 0x1.2d8658b7bb917p+1, 0x1.61dadd1cef169p+1, 0x1.6c188f6620a8ap+5,
     0x1.c8da96cf63e2p+9, 0x1.90816a89f0b98p+4, 0x1.d55ea223b367dp+9, 2u,
     48u},
    {0x0p+0, 0x1.31b689e2f5dacp+1, 0x1.38bcf0a0d0217p+1, 0x1.d1cc66b4d59fap+3,
     0x1.f8ad8619faf94p+7, 0x1.a337f60926a94p+2, 0x1.02e3a2e522174p+8, 1u,
     60u},
    {0x1p-4, 0x1.238ce22e50a94p+1, 0x1.3bd4cc38f0e78p+1, 0x1.0463f2799625ap+4,
     0x1.20a98e8d37203p+8, 0x1.0463f2799625ap+3, 0x1.28ccae2103d16p+8, 1u,
     60u},
    {0x1p-3, 0x1.22866796d6698p+1, 0x1.3173643deebbfp+1, 0x1.249d123cf55b9p+3,
     0x1.1874cfebfca3cp+7, 0x1.41dffa764117ep+2, 0x1.2283cfbfaeac8p+7, 0u,
     72u},
};

constexpr GoldenRound kLstmShakespeare[] = {
    {0x1.4p-3, 0x1.9a363fb3d6c22p+1, 0x1.9a8d1ebe853e1p+1,
     0x1.7dca7cb14b8eep+2, 0x1.91013651e8ef5p+6, 0x1.7dca7cb14b8eep+1,
     0x1.9cef8a37734bcp+6, 0u, 72u},
    {0x1.4p-3, 0x1.8426deacc1015p+1, 0x1.7abe6459b42c3p+1,
     0x1.b1e2093440faap+4, 0x1.124c820bb901cp+9, 0x1.dd457086477a1p+3,
     0x1.19c197cdd21fbp+9, 2u, 48u},
    {0x1.4p-3, 0x1.81a6a4be88a96p+1, 0x1.7bcbcba699a44p+1,
     0x1.380f7dc42381ap+3, 0x1.63f2b5530516ap+7, 0x1.18dabdfd5327ep+2,
     0x1.6cb98b42efafep+7, 1u, 60u},
    {0x1.cp-3, 0x1.860835bbc3cadp+1, 0x1.75c687c258433p+1,
     0x1.7df419d6f4bd4p+3, 0x1.ba1808e9f1c83p+7, 0x1.7df419d6f4bd4p+2,
     0x1.c607a9b8a96e2p+7, 1u, 60u},
    {0x1.4p-3, 0x1.80fd3324238c6p+1, 0x1.6719ee4fcac38p+1,
     0x1.bae29e46f8f7ep+2, 0x1.d9f03a8d2267cp+6, 0x1.e72c7ae7ab771p+1,
     0x1.e9299e645fc38p+6, 0u, 72u},
};

constexpr GoldenRound kMobileNetImageNet[] = {
    {0x1p-5, 0x1.01dfa5fc98026p+2, 0x1.51da1fbbd7b04p+2,
     0x1.fcb4ffbb4f23p+2, 0x1.de0ce519304b9p+6, 0x1.fcb4ffbb4f23p+1,
     0x1.edf28d170ac4ap+6, 0u, 72u},
    {0x1p-5, 0x1.ef2af59401e03p+1, 0x1.039316cb9dcfp+2,
     0x1.897eebd8465b8p+5, 0x1.ee1d0b83be07cp+9, 0x1.b0d869d44d64ap+4,
     0x1.fba3ced26072ep+9, 2u, 48u},
    {0x0p+0, 0x1.01df5365db009p+2, 0x1.e1d224fbf8a56p+1,
     0x1.02440543d1284p+4, 0x1.191445cda37ddp+8, 0x1.d0e0d646dee21p+2,
     0x1.2057c926bef96p+8, 1u, 60u},
    {0x1p-5, 0x1.cabb122b1c8c2p+1, 0x1.d50ebe80c9b36p+1,
     0x1.24a0ea4cefeap+4, 0x1.45b4b9e13d3bcp+8, 0x1.24a0ea4cefeap+3,
     0x1.4ed9c133a4bb1p+8, 1u, 60u},
    {0x1p-5, 0x1.ca208af859919p+1, 0x1.b74aeb1eff86dp+1,
     0x1.4514f6a49fbaep+3, 0x1.3b84e456c3d16p+7, 0x1.65970f4eafb4p+2,
     0x1.46b19cd1394fp+7, 0u, 72u},
};

struct GoldenCase
{
    const char *name;
    models::Workload workload;
    const GoldenRound *rounds;
};

constexpr GoldenCase kCases[] = {
    {"CnnMnist", models::Workload::CnnMnist, kCnnMnist},
    {"LstmShakespeare", models::Workload::LstmShakespeare,
     kLstmShakespeare},
    {"MobileNetImageNet", models::Workload::MobileNetImageNet,
     kMobileNetImageNet},
};

constexpr int kRounds = 5;

void
expectGoldenTrace(std::size_t threads, const GoldenCase &golden_case,
                  const comm::CommConfig *comm_config = nullptr)
{
    FlConfig config = goldenConfig(golden_case.workload, threads);
    if (comm_config != nullptr)
        config.comm = *comm_config;
    FlSimulator sim(config);
    for (int r = 0; r < kRounds; ++r) {
        SCOPED_TRACE(std::string(golden_case.name) + " round " +
                     std::to_string(r + 1));
        const GoldenRound &g = golden_case.rounds[r];
        RoundResult result = sim.runRoundWithParams(GlobalParams{4, 1, 6});

        // Exact equality throughout: the refactor (and any thread count)
        // must not perturb a single bit of the simulated trace.
        EXPECT_EQ(result.test_accuracy, g.test_accuracy);
        EXPECT_EQ(result.test_loss, g.test_loss);
        EXPECT_EQ(result.train_loss, g.train_loss);
        EXPECT_EQ(result.round_time, g.round_time);
        EXPECT_EQ(result.energy_participants, g.energy_participants);
        EXPECT_EQ(result.energy_idle, g.energy_idle);
        EXPECT_EQ(result.energy_total, g.energy_total);
        EXPECT_EQ(result.dropped_straggler, g.dropped);
        EXPECT_EQ(result.dropped_diverged, 0u);
        EXPECT_EQ(result.samples_aggregated, g.samples_aggregated);
    }
}

} // namespace

class RoundGoldenTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, GoldenCase>>
{
};

TEST_P(RoundGoldenTest, BitIdenticalToPreEngineTrace)
{
    const auto [threads, golden_case] = GetParam();
    expectGoldenTrace(threads, golden_case);
}

TEST_P(RoundGoldenTest, BitIdenticalWithExplicitIdentityCodec)
{
    // The codec subsystem's inertness guarantee: an explicitly configured
    // Identity codec — even with non-default knobs for the *other* codec
    // levels — must replay the pre-codec goldens bit-for-bit at any
    // thread count (the Encode stage takes its early-out before any
    // delta arithmetic or RNG stream exists).
    const auto [threads, golden_case] = GetParam();
    comm::CommConfig comm_config;
    comm_config.codec = comm::Codec::Identity;
    comm_config.topk_fraction = 0.5;
    comm_config.quant_chunk = 32;
    expectGoldenTrace(threads, golden_case, &comm_config);
}

TEST_P(RoundGoldenTest, BitIdenticalUnderProfileMetrics)
{
    // The inertness guarantee of src/obs: full instrumentation (span
    // timers, pool histograms, stage counters) must not move a single
    // bit of the simulated trace, at any thread count.
    const auto [threads, golden_case] = GetParam();
    obs::ScopedLevel scoped(obs::Level::Profile);
    expectGoldenTrace(threads, golden_case);
    obs::MetricsRegistry::instance().reset();
}

INSTANTIATE_TEST_SUITE_P(
    SerialAndParallel, RoundGoldenTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4}),
                       ::testing::ValuesIn(kCases)),
    [](const ::testing::TestParamInfo<RoundGoldenTest::ParamType> &info) {
        return std::string(std::get<1>(info.param).name) + "_threads" +
               std::to_string(std::get<0>(info.param));
    });
