/**
 * @file
 * Property-based sweeps over the FL simulator: invariants that must hold
 * for every (B, E, K) combination, workload, and variance regime.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "exp/scenario.h"
#include "fl/simulator.h"

namespace fedgpo {
namespace fl {
namespace {

/** Check all structural invariants of one round result. */
void
expectRoundInvariants(const FlSimulator &sim, const RoundResult &r,
                      int requested_k)
{
    // Participant count respects K and the fleet size.
    EXPECT_EQ(r.participants.size(),
              static_cast<std::size_t>(
                  std::min(requested_k,
                           static_cast<int>(sim.numDevices()))));

    // All energies and times finite and nonnegative; components add up.
    EXPECT_TRUE(std::isfinite(r.round_time));
    EXPECT_GE(r.round_time, 0.0);
    EXPECT_NEAR(r.energy_total, r.energy_participants + r.energy_idle,
                1e-6);
    double sum_participants = 0.0;
    std::size_t drops = 0;
    for (const auto &p : r.participants) {
        EXPECT_TRUE(std::isfinite(p.cost.e_total));
        EXPECT_GE(p.cost.e_comp, 0.0);
        EXPECT_GE(p.cost.e_comm, 0.0);
        EXPECT_GE(p.cost.e_wait, 0.0);
        EXPECT_NEAR(p.cost.e_total,
                    p.cost.e_comp + p.cost.e_comm + p.cost.e_wait, 1e-6);
        sum_participants += p.cost.e_total;
        drops += p.dropped ? 1 : 0;
        // Kept participants fit inside the round window.
        if (!p.dropped) {
            EXPECT_LE(p.cost.t_round, r.round_time + 1e-9);
        }
    }
    EXPECT_NEAR(r.energy_participants, sum_participants, 1e-6);
    EXPECT_EQ(r.droppedCount(), drops);

    // Accuracy is a probability.
    EXPECT_GE(r.test_accuracy, 0.0);
    EXPECT_LE(r.test_accuracy, 1.0);
}

class RoundInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(RoundInvariantTest, HoldAcrossParameterGrid)
{
    const auto [batch, epochs, clients] = GetParam();
    FlConfig config;
    config.workload = models::Workload::CnnMnist;
    config.n_devices = 10;
    config.train_samples = 160;
    config.test_samples = 40;
    config.seed = 77;
    FlSimulator sim(config);
    for (int round = 0; round < 2; ++round) {
        auto r = sim.runRoundWithParams(
            GlobalParams{batch, epochs, clients});
        expectRoundInvariants(sim, r, clients);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RoundInvariantTest,
    ::testing::Combine(::testing::Values(1, 8, 32),
                       ::testing::Values(1, 5, 20),
                       ::testing::Values(1, 5, 20)));

class VarianceInvariantTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>>
{
};

TEST_P(VarianceInvariantTest, HoldAcrossVarianceAndDistribution)
{
    const auto [interference, network, non_iid] = GetParam();
    FlConfig config;
    config.workload = models::Workload::CnnMnist;
    config.n_devices = 10;
    config.train_samples = 160;
    config.test_samples = 40;
    config.interference = interference;
    config.network_unstable = network;
    config.distribution = non_iid ? data::Distribution::NonIid
                                  : data::Distribution::IidIdeal;
    config.seed = 78;
    FlSimulator sim(config);
    for (int round = 0; round < 3; ++round) {
        auto r = sim.runRoundWithParams(GlobalParams{8, 5, 6});
        expectRoundInvariants(sim, r, 6);
    }
}

INSTANTIATE_TEST_SUITE_P(Regimes, VarianceInvariantTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

class WorkloadInvariantTest
    : public ::testing::TestWithParam<models::Workload>
{
};

TEST_P(WorkloadInvariantTest, EveryWorkloadRunsAndLearns)
{
    FlConfig config;
    config.workload = GetParam();
    config.n_devices = 10;
    config.train_samples = 200;
    config.test_samples = 60;
    config.seed = 79;
    FlSimulator sim(config);
    double first = 0.0, last = 0.0;
    for (int round = 0; round < 6; ++round) {
        auto r = sim.runRoundWithParams(GlobalParams{8, 5, 8});
        expectRoundInvariants(sim, r, 8);
        if (round == 0)
            first = r.test_accuracy;
        last = r.test_accuracy;
    }
    EXPECT_GT(last, first) << models::workloadName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadInvariantTest,
    ::testing::Values(models::Workload::CnnMnist,
                      models::Workload::LstmShakespeare,
                      models::Workload::MobileNetImageNet));

TEST(EnergyMonotonicity, MoreEpochsMoreParticipantEnergy)
{
    // With identical seeds and selection, a round with E = 15 must cost
    // the participants more energy than one with E = 1.
    auto run = [](int epochs) {
        FlConfig config;
        config.workload = models::Workload::CnnMnist;
        config.n_devices = 10;
        config.train_samples = 160;
        config.test_samples = 40;
        config.seed = 80;
        FlSimulator sim(config);
        return sim.runRoundWithParams(GlobalParams{8, epochs, 6})
            .energy_participants;
    };
    EXPECT_GT(run(15), run(1));
}

TEST(ScenarioInvariant, FullScaleDisabledByDefault)
{
    // The test environment must not accidentally run at paper scale.
    EXPECT_FALSE(exp::fullScale());
}

} // namespace
} // namespace fl
} // namespace fedgpo
