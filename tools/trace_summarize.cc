/**
 * @file
 * trace_summarize: offline reporter over a directory of JSONL round
 * traces (the files JsonlTraceWriter and the campaign runner emit under
 * FEDGPO_TRACE_DIR).
 *
 *   trace_summarize <trace_dir> [-o <out_dir>]
 *
 * Reads every *.jsonl file in <trace_dir> (sorted by name), aggregates
 * per-stage host timings, per-client cost/drop statistics, FedGPO
 * decision statistics (exploration rate, chosen-K histogram, reward term
 * means), and fault totals, then writes to <out_dir> (default:
 * <trace_dir>):
 *
 *   stages.csv  — per-stage wall-time stats across all rounds
 *   clients.csv — per-client aggregates (rounds, time, energy, drops)
 *   report.md   — the full markdown report
 *
 * Unparseable lines are warned about and skipped; the tool exits
 * non-zero only when no trace file yields any round at all.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace fs = std::filesystem;
using fedgpo::util::JsonValue;
using fedgpo::util::RunningStat;
using fedgpo::util::Table;
using fedgpo::util::fmt;
using fedgpo::util::fmtPct;

namespace {

struct ClientAgg
{
    std::string tier;
    std::size_t rounds = 0;
    std::size_t dropped = 0;
    std::size_t retries = 0;
    RunningStat t_round;
    RunningStat e_total;
    RunningStat train_loss;
};

struct Summary
{
    std::size_t files = 0;
    std::size_t rounds = 0;
    std::size_t bad_lines = 0;
    std::size_t aborted = 0;
    std::size_t upload_retries = 0;

    std::map<std::string, RunningStat> stage_ms; //!< per stage name
    RunningStat accuracy;
    RunningStat round_time;
    RunningStat energy_total;

    std::map<std::size_t, ClientAgg> clients;
    std::map<std::string, std::size_t> faults; //!< per fault kind

    // Communication (rounds carrying byte counters; exact int64 sums).
    std::uint64_t bytes_up_total = 0;
    std::uint64_t bytes_down_total = 0;
    std::size_t comm_rounds = 0;
    RunningStat bytes_up_round;   //!< per-round upload bytes
    RunningStat bytes_down_round; //!< per-round download bytes
    RunningStat compression;      //!< per-client upload compression ratio
    std::map<std::string, std::size_t> codec_rounds; //!< rounds per codec

    // FedGPO decision statistics (rounds carrying a `decision` section).
    std::size_t decision_rounds = 0;
    std::size_t k_explored = 0;
    std::size_t device_decisions = 0;
    std::size_t device_explored = 0;
    std::map<int, std::size_t> k_histogram;
    RunningStat reward_total;
    RunningStat reward_energy_global;
    RunningStat reward_energy_local;
    RunningStat reward_accuracy;
    RunningStat reward_improvement;
    RunningStat device_reward_mean;
};

void
foldRound(const JsonValue &line, Summary &s)
{
    ++s.rounds;
    s.accuracy.add(line.at("test_accuracy").asNumber());
    s.round_time.add(line.at("round_time").asNumber());
    s.energy_total.add(line.at("energy_total").asNumber());
    if (line.at("aborted").asBool())
        ++s.aborted;
    s.upload_retries +=
        static_cast<std::size_t>(line.at("upload_retries").asNumber());

    const JsonValue &stages = line.at("stages_ms");
    for (const auto &[name, value] : stages.members())
        s.stage_ms[name].add(value.asNumber());

    const JsonValue &faults = line.at("faults");
    for (std::size_t i = 0; i < faults.size(); ++i)
        ++s.faults[faults.at(i).at("kind").asString()];

    if (line.has("bytes_up_total")) {
        ++s.comm_rounds;
        // asInt64 keeps byte counters exact beyond double's 2^53 range.
        const std::int64_t up = line.at("bytes_up_total").asInt64();
        const std::int64_t down = line.at("bytes_down_total").asInt64();
        s.bytes_up_total += static_cast<std::uint64_t>(up);
        s.bytes_down_total += static_cast<std::uint64_t>(down);
        s.bytes_up_round.add(static_cast<double>(up));
        s.bytes_down_round.add(static_cast<double>(down));
        ++s.codec_rounds[line.at("codec").asString()];
    }

    const JsonValue &clients = line.at("clients");
    for (std::size_t i = 0; i < clients.size(); ++i) {
        const JsonValue &c = clients.at(i);
        const auto id =
            static_cast<std::size_t>(c.at("id").asNumber());
        ClientAgg &agg = s.clients[id];
        agg.tier = c.at("tier").asString();
        ++agg.rounds;
        if (c.at("dropped").asBool())
            ++agg.dropped;
        agg.retries +=
            static_cast<std::size_t>(c.at("retries").asNumber());
        if (c.has("compression_ratio") &&
            c.at("compression_ratio").asNumber() > 0.0)
            s.compression.add(c.at("compression_ratio").asNumber());
        agg.t_round.add(c.at("t_round").asNumber());
        agg.e_total.add(c.at("e_total").asNumber());
        agg.train_loss.add(c.at("train_loss").asNumber());
    }

    if (!line.has("decision"))
        return;
    const JsonValue &d = line.at("decision");
    ++s.decision_rounds;
    const JsonValue &k = d.at("k");
    if (k.at("explored").asBool())
        ++s.k_explored;
    ++s.k_histogram[static_cast<int>(k.at("value").asNumber())];
    const JsonValue &devices = d.at("devices");
    for (std::size_t i = 0; i < devices.size(); ++i) {
        ++s.device_decisions;
        if (devices.at(i).at("explored").asBool())
            ++s.device_explored;
    }
    const JsonValue &reward = d.at("reward");
    s.reward_total.add(reward.at("total").asNumber());
    s.reward_energy_global.add(
        reward.at("energy_global_term").asNumber());
    s.reward_energy_local.add(reward.at("energy_local_term").asNumber());
    s.reward_accuracy.add(reward.at("accuracy_term").asNumber());
    s.reward_improvement.add(reward.at("improvement_term").asNumber());
    s.device_reward_mean.add(d.at("device_reward_mean").asNumber());
}

/** Stage rows in pipeline order, then any unknown names. */
std::vector<std::string>
orderedStages(const Summary &s)
{
    static const char *kOrder[] = {"select",    "train",  "encode",
                                   "cost",      "recover", "straggler",
                                   "aggregate", "energy",  "evaluate"};
    std::vector<std::string> out;
    for (const char *name : kOrder)
        if (s.stage_ms.count(name) != 0)
            out.push_back(name);
    for (const auto &[name, stat] : s.stage_ms)
        if (std::find(out.begin(), out.end(), name) == out.end())
            out.push_back(name);
    return out;
}

/**
 * Table data kept raw so the same rows can render three ways: aligned
 * console table, CSV (both via util::Table), and markdown.
 */
struct RawTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    void
    markdown(std::ostream &os) const
    {
        for (const auto &h : header)
            os << "| " << h << " ";
        os << "|\n";
        for (std::size_t i = 0; i < header.size(); ++i)
            os << "| --- ";
        os << "|\n";
        for (const auto &row : rows) {
            for (const auto &cell : row)
                os << "| " << cell << " ";
            os << "|\n";
        }
    }

    Table
    toTable() const
    {
        Table t(header);
        for (const auto &row : rows)
            t.addRow(row);
        return t;
    }
};

RawTable
stageRaw(const Summary &s)
{
    RawTable t;
    t.header = {"stage", "rounds", "total_ms", "mean_ms", "min_ms",
                "max_ms"};
    for (const std::string &name : orderedStages(s)) {
        const RunningStat &st = s.stage_ms.at(name);
        t.rows.push_back({name, std::to_string(st.count()),
                          fmt(st.sum(), 2), fmt(st.mean(), 3),
                          fmt(st.min(), 3), fmt(st.max(), 3)});
    }
    return t;
}

RawTable
clientRaw(const Summary &s)
{
    RawTable t;
    t.header = {"client",         "tier",           "rounds",
                "dropped",        "retries",        "mean_t_round_s",
                "mean_e_total_j", "mean_train_loss"};
    for (const auto &[id, agg] : s.clients) {
        t.rows.push_back(
            {std::to_string(id), agg.tier, std::to_string(agg.rounds),
             std::to_string(agg.dropped), std::to_string(agg.retries),
             fmt(agg.t_round.mean(), 2), fmt(agg.e_total.mean(), 2),
             fmt(agg.train_loss.mean(), 4)});
    }
    return t;
}

void
writeReport(std::ostream &os, const Summary &s)
{
    os << "# Trace summary\n\n";
    os << "- files: " << s.files << "\n";
    os << "- rounds: " << s.rounds << "\n";
    if (s.bad_lines > 0)
        os << "- unparseable lines skipped: " << s.bad_lines << "\n";
    os << "- aborted rounds: " << s.aborted << "\n";
    os << "- upload retries: " << s.upload_retries << "\n";
    os << "- final-round test accuracy (mean across rounds "
       << "min/mean/max): " << fmt(s.accuracy.min(), 4) << " / "
       << fmt(s.accuracy.mean(), 4) << " / " << fmt(s.accuracy.max(), 4)
       << "\n";
    os << "- modeled round time (s, mean): " << fmt(s.round_time.mean(), 2)
       << "\n";
    os << "- modeled round energy (J, mean): "
       << fmt(s.energy_total.mean(), 2) << "\n\n";

    os << "## Host time per stage\n\n";
    stageRaw(s).markdown(os);

    os << "\n## Clients\n\n";
    clientRaw(s).markdown(os);

    if (s.comm_rounds > 0) {
        os << "\n## Communication\n\n";
        os << "- bytes uploaded (total, exact): " << s.bytes_up_total
           << "\n";
        os << "- bytes downloaded (total, exact): " << s.bytes_down_total
           << "\n";
        os << "- upload bytes per round (mean/min/max): "
           << fmt(s.bytes_up_round.mean(), 0) << " / "
           << fmt(s.bytes_up_round.min(), 0) << " / "
           << fmt(s.bytes_up_round.max(), 0) << "\n";
        os << "- download bytes per round (mean): "
           << fmt(s.bytes_down_round.mean(), 0) << "\n";
        if (s.compression.count() > 0) {
            os << "- upload compression ratio (mean/min/max over "
               << s.compression.count()
               << " uploads): " << fmt(s.compression.mean(), 2) << " / "
               << fmt(s.compression.min(), 2) << " / "
               << fmt(s.compression.max(), 2) << "\n";
        }
        os << "\n### Rounds per codec\n\n";
        RawTable ct;
        ct.header = {"codec", "rounds"};
        for (const auto &[name, n] : s.codec_rounds)
            ct.rows.push_back({name, std::to_string(n)});
        ct.markdown(os);
    }

    if (!s.faults.empty()) {
        os << "\n## Faults\n\n";
        RawTable t;
        t.header = {"kind", "events"};
        for (const auto &[kind, n] : s.faults)
            t.rows.push_back({kind, std::to_string(n)});
        t.markdown(os);
    }

    if (s.decision_rounds > 0) {
        os << "\n## FedGPO decisions\n\n";
        os << "- rounds with a decision record: " << s.decision_rounds
           << "\n";
        os << "- K exploration rate: "
           << fmtPct(static_cast<double>(s.k_explored) /
                     static_cast<double>(s.decision_rounds))
           << "\n";
        if (s.device_decisions > 0) {
            os << "- device (B,E) exploration rate: "
               << fmtPct(static_cast<double>(s.device_explored) /
                         static_cast<double>(s.device_decisions))
               << " over " << s.device_decisions << " decisions\n";
        }
        os << "\n### Chosen K\n\n";
        RawTable kt;
        kt.header = {"K", "rounds"};
        for (const auto &[k, n] : s.k_histogram)
            kt.rows.push_back({std::to_string(k), std::to_string(n)});
        kt.markdown(os);

        os << "\n### Reward terms (mean per round)\n\n";
        RawTable rt;
        rt.header = {"term", "mean"};
        rt.rows.push_back({"total", fmt(s.reward_total.mean(), 3)});
        rt.rows.push_back(
            {"energy_global", fmt(s.reward_energy_global.mean(), 3)});
        rt.rows.push_back(
            {"energy_local", fmt(s.reward_energy_local.mean(), 3)});
        rt.rows.push_back({"accuracy", fmt(s.reward_accuracy.mean(), 3)});
        rt.rows.push_back(
            {"improvement", fmt(s.reward_improvement.mean(), 3)});
        rt.rows.push_back(
            {"device_reward_mean", fmt(s.device_reward_mean.mean(), 3)});
        rt.markdown(os);
    }
}

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0 << " <trace_dir> [-o <out_dir>]\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_dir;
    std::string out_dir;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            out_dir = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (trace_dir.empty()) {
            trace_dir = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (trace_dir.empty())
        return usage(argv[0]);
    if (out_dir.empty())
        out_dir = trace_dir;

    std::error_code ec;
    if (!fs::is_directory(trace_dir, ec)) {
        std::cerr << "trace_summarize: '" << trace_dir
                  << "' is not a directory\n";
        return 1;
    }
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(trace_dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".jsonl")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::cerr << "trace_summarize: no *.jsonl files in '" << trace_dir
                  << "'\n";
        return 1;
    }

    Summary summary;
    for (const fs::path &file : files) {
        std::ifstream in(file);
        if (!in.good()) {
            std::cerr << "trace_summarize: cannot read " << file
                      << "; skipping\n";
            continue;
        }
        ++summary.files;
        std::string line;
        std::size_t line_no = 0;
        while (std::getline(in, line)) {
            ++line_no;
            if (line.empty())
                continue;
            JsonValue parsed;
            std::string error;
            if (!JsonValue::parse(line, parsed, &error) ||
                !parsed.isObject()) {
                ++summary.bad_lines;
                std::cerr << "trace_summarize: " << file.filename()
                          << ":" << line_no << ": skipping bad line ("
                          << error << ")\n";
                continue;
            }
            foldRound(parsed, summary);
        }
    }
    if (summary.rounds == 0) {
        std::cerr << "trace_summarize: no parseable rounds in '"
                  << trace_dir << "'\n";
        return 1;
    }

    fs::create_directories(out_dir, ec);

    const std::string stages_csv = out_dir + "/stages.csv";
    const std::string clients_csv = out_dir + "/clients.csv";
    const std::string report_md = out_dir + "/report.md";
    bool ok = true;
    ok &= stageRaw(summary).toTable().writeCsv(stages_csv);
    ok &= clientRaw(summary).toTable().writeCsv(clients_csv);
    {
        std::ofstream report(report_md, std::ios::trunc);
        if (!report.good()) {
            std::cerr << "trace_summarize: cannot write " << report_md
                      << "\n";
            ok = false;
        } else {
            writeReport(report, summary);
        }
    }

    std::cout << "trace_summarize: " << summary.rounds << " rounds from "
              << summary.files << " file(s) -> " << report_md << ", "
              << stages_csv << ", " << clients_csv << "\n";
    stageRaw(summary).toTable().print(std::cout, "Host time per stage");
    return ok ? 0 : 1;
}
