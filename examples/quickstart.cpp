/**
 * @file
 * Quickstart: run a small federated-learning session with FedGPO picking
 * the global parameters each round, and print the per-round trace.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/fedgpo.h"
#include "fl/round/trace_writer.h"
#include "fl/simulator.h"
#include "obs/metrics.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    // 1. Describe the FL deployment: 24 devices with the paper's H/M/L
    //    tier mix, training the CNN-MNIST workload on IID data.
    fl::FlConfig config;
    config.workload = models::Workload::CnnMnist;
    config.n_devices = 24;
    config.train_samples = 720;
    config.test_samples = 200;
    config.seed = 1;

    fl::FlSimulator sim(config);
    std::cout << "Fleet: " << sim.numDevices() << " devices, model has "
              << sim.globalModel().paramCount() << " parameters\n";
    std::cout << "Runtime: " << sim.threads()
              << " worker thread(s) (override with FEDGPO_THREADS; "
                 "results are thread-count-invariant)\n\n";

    // 2. Create the FedGPO policy (paper defaults: gamma=0.9, mu=0.1,
    //    epsilon=0.1), and stream a per-round JSONL trace alongside the
    //    printed table (see README, "Round traces").
    core::FedGpo policy;
    std::string trace_path = "quickstart_trace.jsonl";
    if (const char *dir = std::getenv("FEDGPO_TRACE_DIR")) {
        if (*dir != '\0')
            trace_path = std::string(dir) + "/quickstart_trace.jsonl";
    }
    fl::round::JsonlTraceWriter trace(trace_path);
    if (trace.ok())
        sim.addRoundObserver(&trace);

    // 3. Drive aggregation rounds. Each call selects K clients, assigns
    //    per-device (B, E), runs real local SGD on every client, models
    //    time/energy, aggregates, and feeds the reward back into the
    //    Q-tables.
    util::Table table({"round", "test acc", "round time (s)",
                       "energy (J)", "K", "dropped"});
    for (int round = 0; round < 12; ++round) {
        fl::RoundResult r = sim.runRound(policy);
        table.addRow({std::to_string(r.round), util::fmt(r.test_accuracy),
                      util::fmt(r.round_time, 1),
                      util::fmt(r.energy_total, 1),
                      std::to_string(r.participants.size()),
                      std::to_string(r.droppedCount())});
    }
    table.print(std::cout, "FedGPO-driven federated learning");
    if (trace.ok())
        std::cout << "\nWrote " << trace.roundsWritten()
                  << " round records to " << trace_path << "\n";

    // With FEDGPO_METRICS=basic|profile: print the host-time profile and
    // write the Prometheus snapshot ($FEDGPO_METRICS_FILE).
    if (obs::enabled()) {
        std::cout << "\n";
        obs::finishRun(&std::cout);
    }

    std::cout << "\nQ-table memory: "
              << static_cast<double>(policy.qTableBytes()) / 1e6
              << " MB across "
              << device::kNumCategories << " shared category tables + 1 "
              << "global K table\n";
    return 0;
}
