/**
 * @file
 * Compression study: Identity vs Int8 quantization vs TopK
 * sparsification under fig04-style runtime variance (co-running
 * interference + unstable network). For each codec the same fleet trains
 * the same schedule; the study reports time-to-accuracy, modeled energy,
 * and exact uplink/downlink byte totals, then checks the headline claim:
 * the lossy codecs cut modeled upload bytes by several x while landing
 * within a couple points of Identity's final accuracy (the banked TopK
 * residual and unbiased Int8 rounding are what make that possible).
 *
 *   ./build/examples/compression_study [--smoke]
 *
 * --smoke shrinks the fleet and round count for CI; the byte-reduction
 * checks still run (they are scale-free), only the accuracy-parity
 * tolerance is relaxed to match the noisier short run. Exits non-zero
 * when a check fails, so CI can gate on it.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "exp/scenario.h"
#include "fl/simulator.h"
#include "runtime/runtime_config.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

struct StudyResult
{
    std::string codec;
    double final_accuracy = 0.0;
    double best_accuracy = 0.0;
    double total_energy = 0.0;
    double total_time = 0.0;
    double time_to_target = -1.0; //!< simulated s to reach the target
    std::uint64_t bytes_up = 0;
    std::uint64_t bytes_down = 0;
};

StudyResult
runStudy(comm::Codec codec, bool smoke, double target_accuracy)
{
    exp::Scenario scenario;
    scenario.workload = models::Workload::CnnMnist;
    scenario.variance = exp::Variance::Both; // fig04-style runtime noise
    scenario.distribution = data::Distribution::IidIdeal;
    scenario.seed = 23;
    scenario.n_devices = smoke ? 12 : 32;
    scenario.train_samples = smoke ? 240 : 800;
    scenario.test_samples = smoke ? 80 : 160;
    const int rounds = smoke ? 6 : 25;

    fl::FlConfig config = scenario.toFlConfig();
    config.comm.codec = codec;

    fl::FlSimulator sim(config);
    StudyResult out;
    out.codec = comm::codecName(codec);
    for (int r = 0; r < rounds; ++r) {
        const fl::RoundResult res =
            sim.runRoundWithParams(fl::GlobalParams{8, 5, 10});
        out.final_accuracy = res.test_accuracy;
        out.best_accuracy = std::max(out.best_accuracy, res.test_accuracy);
        out.total_energy += res.energy_total;
        out.total_time += res.round_time;
        out.bytes_up += res.bytes_up_total;
        out.bytes_down += res.bytes_down_total;
        if (out.time_to_target < 0.0 &&
            res.test_accuracy >= target_accuracy)
            out.time_to_target = out.total_time;
    }
    return out;
}

std::string
fmtBytes(std::uint64_t bytes)
{
    return util::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 2) +
           " MiB";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    std::cout << "Runtime: " << runtime::resolveThreads(0)
              << " worker thread(s) (override with FEDGPO_THREADS)\n";
    std::cout << "Mode: " << (smoke ? "smoke" : "full") << "\n\n";

    const double target_accuracy = smoke ? 0.5 : 0.8;
    std::vector<StudyResult> results;
    for (const comm::Codec codec :
         {comm::Codec::Identity, comm::Codec::Int8Quant,
          comm::Codec::TopK}) {
        results.push_back(runStudy(codec, smoke, target_accuracy));
    }
    const StudyResult &identity = results[0];

    util::Table table({"codec", "final acc", "best acc", "bytes up",
                       "upload reduction", "energy (J)",
                       "t to " + util::fmtPct(target_accuracy, 0)});
    for (const StudyResult &r : results) {
        const double reduction =
            r.bytes_up > 0 ? static_cast<double>(identity.bytes_up) /
                                 static_cast<double>(r.bytes_up)
                           : 0.0;
        table.addRow({r.codec, util::fmtPct(r.final_accuracy, 1),
                      util::fmtPct(r.best_accuracy, 1), fmtBytes(r.bytes_up),
                      util::fmt(reduction, 2) + "x",
                      util::fmt(r.total_energy, 0),
                      r.time_to_target >= 0.0
                          ? util::fmt(r.time_to_target, 0) + " s"
                          : "never"});
    }
    table.print(std::cout,
                "Identity vs Int8 vs TopK under runtime variance");

    // Headline checks (CI gates on the exit code).
    int failures = 0;
    const StudyResult &int8 = results[1];
    const StudyResult &topk = results[2];
    const double int8_reduction = static_cast<double>(identity.bytes_up) /
                                  static_cast<double>(int8.bytes_up);
    const double topk_reduction = static_cast<double>(identity.bytes_up) /
                                  static_cast<double>(topk.bytes_up);
    // Int8's ceiling is just under 4x (1 byte/param + chunk scales);
    // TopK(0.1) models 8 bytes per kept param: 5x.
    if (int8_reduction < 3.5) {
        std::cerr << "FAIL: int8 upload reduction " << int8_reduction
                  << "x < 3.5x\n";
        ++failures;
    }
    if (topk_reduction < 4.0) {
        std::cerr << "FAIL: topk upload reduction " << topk_reduction
                  << "x < 4x\n";
        ++failures;
    }
    const double accuracy_tolerance = smoke ? 0.10 : 0.02;
    for (const StudyResult *r : {&int8, &topk}) {
        if (r->final_accuracy + accuracy_tolerance <
            identity.final_accuracy) {
            std::cerr << "FAIL: " << r->codec << " final accuracy "
                      << r->final_accuracy << " more than "
                      << accuracy_tolerance << " below identity's "
                      << identity.final_accuracy << "\n";
            ++failures;
        }
    }
    if (identity.bytes_down != int8.bytes_down) {
        std::cerr << "FAIL: downlink bytes must not depend on the "
                     "(uplink) codec\n";
        ++failures;
    }

    if (failures == 0)
        std::cout << "\nAll compression-study checks passed.\n";
    return failures == 0 ? 0 : 1;
}
