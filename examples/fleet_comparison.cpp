/**
 * @file
 * Fleet comparison: run the same heterogeneous FL deployment under every
 * optimization policy the library ships — Fixed, Adaptive (BO),
 * Adaptive (GA), FedEx, ABS, and FedGPO — and compare energy, time, and
 * accuracy side by side.
 *
 *   ./build/examples/fleet_comparison
 */

#include <iostream>
#include <memory>

#include "core/fedgpo.h"
#include "exp/campaign.h"
#include "optim/abs_drl.h"
#include "optim/bayesian.h"
#include "optim/fedex.h"
#include "optim/fixed.h"
#include "optim/genetic.h"
#include "runtime/runtime_config.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    // A small heterogeneous fleet: 15% high-end, 35% mid, 50% low-end
    // devices (the paper's in-the-field mix), IID data, no variance.
    exp::Scenario scenario;
    scenario.name = "fleet-comparison";
    scenario.workload = models::Workload::CnnMnist;
    scenario.n_devices = 32;
    scenario.train_samples = 800;
    scenario.test_samples = 160;
    scenario.seed = 9;
    const int warmup = 30;
    const int rounds = 15;

    std::cout << "Comparing 6 policies on " << scenario.n_devices
              << " devices (" << warmup << " warmup + " << rounds
              << " measured rounds each; this takes a few minutes)\n";
    std::cout << "Runtime: " << runtime::resolveThreads(0)
              << " worker thread(s) (override with FEDGPO_THREADS)\n\n";

    std::vector<std::unique_ptr<optim::ParamOptimizer>> policies;
    policies.push_back(std::make_unique<optim::FixedOptimizer>(
        fl::GlobalParams{8, 10, 20}, "Fixed (Best)"));
    policies.push_back(std::make_unique<optim::BayesianOptimizer>(9));
    policies.push_back(std::make_unique<optim::GeneticOptimizer>(9));
    policies.push_back(std::make_unique<optim::FedExOptimizer>(9));
    policies.push_back(std::make_unique<optim::AbsOptimizer>(9));
    core::FedGpoConfig config;
    config.seed = 9;
    policies.push_back(std::make_unique<core::FedGpo>(config));

    util::Table table({"policy", "energy (kJ)", "avg round (s)",
                       "final acc", "conv round"});
    for (auto &policy : policies) {
        const bool adaptive = policy->name() != "Fixed (Best)";
        auto r = adaptive
                     ? exp::runCampaignWithWarmup(scenario, *policy,
                                                  warmup, rounds)
                     : exp::runCampaign(scenario, *policy, rounds);
        table.addRow({r.policy, util::fmt(r.total_energy / 1000.0, 1),
                      util::fmt(r.avg_round_time, 1),
                      util::fmt(r.final_accuracy, 3),
                      std::to_string(r.converged_round)});
        std::cout << r.policy << " done\n";
    }
    std::cout << "\n";
    table.print(std::cout, "Fleet comparison (" + std::to_string(rounds) +
                               " measured rounds)");
    return 0;
}
