/**
 * @file
 * Non-IID study: how Dirichlet label skew changes what the optimal
 * global parameters are, and how FedGPO's selections respond.
 *
 *   ./build/examples/noniid_study
 */

#include <iostream>

#include "core/fedgpo.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "exp/campaign.h"
#include "fl/simulator.h"
#include "runtime/runtime_config.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    std::cout << "Runtime: " << runtime::resolveThreads(0)
              << " worker thread(s) (override with FEDGPO_THREADS)\n\n";

    // 1. Show what Dirichlet(0.1) does to the per-device label mix.
    {
        util::Rng rng(4);
        auto dataset = data::makeSyntheticMnist(600, rng);
        util::Rng prng(5);
        auto iid = data::iidPartition(dataset, 12, prng);
        auto dir = data::dirichletPartition(dataset, 12, 0.1, prng);
        util::Table table({"device", "IID classes", "non-IID classes",
                           "non-IID samples"});
        for (std::size_t d = 0; d < 12; ++d) {
            table.addRow({std::to_string(d),
                          std::to_string(dataset.classesPresent(iid[d])),
                          std::to_string(dataset.classesPresent(dir[d])),
                          std::to_string(dir[d].size())});
        }
        table.print(std::cout,
                    "Dirichlet(0.1) label skew vs IID (10-class data)");
    }

    // 2. Run FedGPO on the non-IID scenario and report what it selects.
    exp::Scenario scenario;
    scenario.workload = models::Workload::CnnMnist;
    scenario.distribution = data::Distribution::NonIid;
    scenario.n_devices = 32;
    scenario.train_samples = 800;
    scenario.test_samples = 160;
    scenario.seed = 21;

    core::FedGpoConfig config;
    config.seed = 21;
    core::FedGpo policy(config);
    fl::FlSimulator sim(scenario.toFlConfig());
    std::cout << "\nFedGPO on non-IID data (watch K and per-device E "
                 "adapt):\n";
    util::Table trace({"round", "K", "mean B", "mean E", "test acc"});
    for (int r = 0; r < 25; ++r) {
        auto res = sim.runRound(policy);
        double mb = 0.0, me = 0.0;
        for (const auto &p : res.participants) {
            mb += p.params.batch;
            me += p.params.epochs;
        }
        const double n = static_cast<double>(res.participants.size());
        if (r % 2 == 1) {
            trace.addRow({std::to_string(r + 1),
                          std::to_string(res.participants.size()),
                          util::fmt(mb / n, 1), util::fmt(me / n, 1),
                          util::fmt(res.test_accuracy, 3)});
        }
    }
    trace.print(std::cout, "");
    return 0;
}
