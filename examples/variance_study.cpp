/**
 * @file
 * Runtime-variance study: watch the per-device cost model react to
 * co-running interference and network instability, and compare the
 * energy bill of fixed parameters vs the gap-minimizing oracle under
 * heavy variance. (Chronically interfered low-tier devices can miss the
 * round deadline under either policy; the oracle's win is the energy it
 * stops burning on them.)
 *
 *   ./build/examples/variance_study
 */

#include <iostream>

#include "device/cost_model.h"
#include "exp/campaign.h"
#include "fl/simulator.h"
#include "optim/callback_policy.h"
#include "optim/fixed.h"
#include "optim/oracle.h"
#include "runtime/runtime_config.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    std::cout << "Runtime: " << runtime::resolveThreads(0)
              << " worker thread(s) (override with FEDGPO_THREADS)\n\n";

    // 1. Single-device view: the same work under increasing interference.
    {
        auto model = models::buildModel(models::Workload::CnnMnist, 7);
        device::LocalWorkSpec work;
        work.train_flops_per_sample = model->trainFlopsPerSample();
        work.samples = 25;
        work.batch = 8;
        work.epochs = 10;
        work.param_bytes = model->paramBytes();
        device::NetworkState net;
        util::Table table({"co-runner CPU", "H time (s)", "L time (s)",
                           "L energy (J)"});
        for (double cpu : {0.0, 0.3, 0.6, 0.9}) {
            device::InterferenceState interference;
            interference.co_cpu = cpu;
            interference.co_mem = cpu * 0.6;
            auto h = device::clientRoundCost(
                device::profileFor(device::Category::High),
                device::costFor(models::Workload::CnnMnist), work,
                interference, net);
            auto l = device::clientRoundCost(
                device::profileFor(device::Category::Low),
                device::costFor(models::Workload::CnnMnist), work,
                interference, net);
            table.addRow({util::fmtPct(cpu, 0), util::fmt(h.t_round, 1),
                          util::fmt(l.t_round, 1),
                          util::fmt(l.e_total, 0)});
        }
        table.print(std::cout,
                    "Per-device cost vs co-runner load (B=8, E=10)");
    }

    // 2. Fleet view under interference + unstable network: fixed
    //    parameters drop stragglers; the oracle adapts and keeps them.
    exp::Scenario scenario;
    scenario.workload = models::Workload::CnnMnist;
    scenario.variance = exp::Variance::Both;
    scenario.n_devices = 32;
    scenario.train_samples = 800;
    scenario.test_samples = 160;
    scenario.seed = 31;
    const int rounds = 15;

    std::size_t fixed_drops = 0, oracle_drops = 0;
    double fixed_energy = 0.0, oracle_energy = 0.0;
    double fixed_acc = 0.0, oracle_acc = 0.0;
    {
        fl::FlSimulator sim(scenario.toFlConfig());
        optim::FixedOptimizer fixed(fl::GlobalParams{8, 10, 20});
        for (int r = 0; r < rounds; ++r) {
            auto res = sim.runRound(fixed);
            fixed_drops += res.droppedCount();
            fixed_energy += res.energy_total;
            fixed_acc = res.test_accuracy;
        }
    }
    {
        fl::FlSimulator sim(scenario.toFlConfig());
        optim::CallbackPolicy oracle(
            "Oracle", 20,
            [&sim](const std::vector<fl::DeviceObservation> &obs,
                   const nn::LayerCensus &) {
                const fl::PerDeviceParams base{8, 10};
                const double target =
                    optim::oracleTargetTime(sim, obs, base);
                std::vector<fl::PerDeviceParams> out;
                for (const auto &o : obs)
                    out.push_back(optim::oracleParamsFor(sim, o.client_id,
                                                         target));
                return out;
            });
        for (int r = 0; r < rounds; ++r) {
            auto res = sim.runRound(oracle);
            oracle_drops += res.droppedCount();
            oracle_energy += res.energy_total;
            oracle_acc = res.test_accuracy;
        }
    }
    util::Table table({"policy", "dropped clients", "energy (kJ)",
                       "final acc"});
    table.addRow({"Fixed (8,10,20)", std::to_string(fixed_drops),
                  util::fmt(fixed_energy / 1000.0, 1),
                  util::fmt(fixed_acc, 3)});
    table.addRow({"Gap-minimizing oracle", std::to_string(oracle_drops),
                  util::fmt(oracle_energy / 1000.0, 1),
                  util::fmt(oracle_acc, 3)});
    std::cout << "\n";
    table.print(std::cout,
                "Fleet under interference + unstable network (" +
                    std::to_string(rounds) + " rounds)");
    return 0;
}
