/**
 * @file
 * Fault-injection study: the same heterogeneous deployment under rising
 * dropout — devices offline at selection, mid-training crashes, flaky
 * uploads with retry/backoff, and a quorum gate that aborts rounds when
 * too few updates survive. Compares FedGPO against the fixed-parameter
 * baseline: the Q-learner sees aborted rounds as heavily penalized K
 * choices and learns to over-provision the cohort, while Fixed keeps
 * paying for quorum misses.
 *
 *   ./build/examples/fault_study [--smoke]
 *
 * --smoke runs a two-level, few-round version (used by CI under ASan to
 * exercise every fault path quickly).
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/fedgpo.h"
#include "fl/simulator.h"
#include "optim/fixed.h"
#include "runtime/runtime_config.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

struct StudyResult
{
    double final_acc = 0.0;
    double energy_kj = 0.0;
    std::size_t dropped_offline = 0;
    std::size_t dropped_crashed = 0;
    std::size_t dropped_upload = 0;
    std::size_t upload_retries = 0;
    std::size_t rounds_aborted = 0;
};

StudyResult
runUnderFaults(fl::FlConfig config, optim::ParamOptimizer &policy,
               int rounds)
{
    fl::FlSimulator sim(config);
    StudyResult out;
    for (int r = 0; r < rounds; ++r) {
        const fl::RoundResult res = sim.runRound(policy);
        out.final_acc = res.test_accuracy;
        out.energy_kj += res.energy_total / 1000.0;
        out.dropped_offline += res.dropped_offline;
        out.dropped_crashed += res.dropped_crashed;
        out.dropped_upload += res.dropped_upload;
        out.upload_retries += res.upload_retries;
        if (res.aborted)
            ++out.rounds_aborted;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    fl::FlConfig base;
    base.workload = models::Workload::CnnMnist;
    base.n_devices = smoke ? 16 : 32;
    base.train_samples = smoke ? 320 : 800;
    base.test_samples = smoke ? 96 : 160;
    base.seed = 17;
    base.interference = true;
    base.network_unstable = true;
    const int rounds = smoke ? 4 : 20;
    const std::vector<double> dropout_levels =
        smoke ? std::vector<double>{0.0, 0.3}
              : std::vector<double>{0.0, 0.1, 0.2, 0.3};

    std::cout << "Fault study: " << base.n_devices << " devices, "
              << rounds << " rounds per cell"
              << (smoke ? " (smoke mode)" : "") << "\n";
    std::cout << "Runtime: " << runtime::resolveThreads(0)
              << " worker thread(s) (override with FEDGPO_THREADS)\n\n";

    util::Table table({"dropout", "policy", "final acc", "energy (kJ)",
                       "offline", "crashed", "upload lost", "retries",
                       "aborted"});
    for (double level : dropout_levels) {
        fl::FlConfig config = base;
        config.faults.offline_rate = level;
        config.faults.crash_rate = level * 0.5;
        config.faults.upload_failure_rate = level;
        config.faults.quorum_fraction = 0.5;

        optim::FixedOptimizer fixed(fl::GlobalParams{8, 10, 12},
                                    "Fixed (8,10,12)");
        core::FedGpoConfig gpo_config;
        gpo_config.seed = base.seed;
        core::FedGpo fedgpo(gpo_config);

        struct Row
        {
            const char *name;
            optim::ParamOptimizer *policy;
        };
        for (const Row &row : {Row{"Fixed (8,10,12)", &fixed},
                               Row{"FedGPO", &fedgpo}}) {
            const StudyResult r =
                runUnderFaults(config, *row.policy, rounds);
            table.addRow({util::fmtPct(level, 0), row.name,
                          util::fmt(r.final_acc, 3),
                          util::fmt(r.energy_kj, 1),
                          std::to_string(r.dropped_offline),
                          std::to_string(r.dropped_crashed),
                          std::to_string(r.dropped_upload),
                          std::to_string(r.upload_retries),
                          std::to_string(r.rounds_aborted)});
        }
    }
    table.print(std::cout,
                "FedGPO vs fixed baseline under rising dropout "
                "(quorum = 50% of K)");
    std::cout << "\nOffline devices are redrawn at selection; crashes "
                 "surface as partial reports;\nfailed uploads retry with "
                 "capped exponential backoff before the update is lost.\n";
    return 0;
}
