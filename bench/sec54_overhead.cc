/**
 * @file
 * Section 5.4: convergence and overhead analysis.
 *
 * Micro-benchmarks (google-benchmark) of the four FedGPO runtime
 * components — per-device state identification, global-parameter
 * selection, reward calculation, and the Q-table update — plus the
 * Q-table memory footprint and the learning-phase convergence trace.
 *
 * Paper values: 499.6 us total per round (496.8 us state identification,
 * 0.2 us action selection, 2.1 us reward, 0.5 us table update), 0.4 MB
 * of tables, reward converging after 30-40 rounds. The state-
 * identification cost is dominated by reading OS counters on a real
 * device; in simulation the featurization itself is what remains, so
 * expect that component to be far below 496.8 us here.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/fedgpo.h"
#include "core/reward.h"
#include "core/state.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

nn::LayerCensus
census()
{
    nn::LayerCensus c;
    c.conv = 2;
    c.dense = 2;
    return c;
}

fl::DeviceObservation
observation()
{
    fl::DeviceObservation obs;
    obs.client_id = 3;
    obs.category = device::Category::Mid;
    obs.interference.co_cpu = 0.4;
    obs.interference.co_mem = 0.2;
    obs.network.bandwidth_mbps = 62.0;
    obs.data_classes = 9;
    obs.total_classes = 10;
    obs.shard_size = 25;
    return obs;
}

void
BM_StateIdentification(benchmark::State &state)
{
    const auto c = census();
    const auto obs = observation();
    for (auto _ : state) {
        auto key = core::encodeState(c, obs);
        benchmark::DoNotOptimize(key.index());
    }
}
BENCHMARK(BM_StateIdentification);

void
BM_ActionSelection(benchmark::State &state)
{
    util::Rng rng(1);
    core::QTable table(core::kNumStates, core::kNumDeviceActions, rng);
    std::size_t s = 123;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.bestAction(s));
        s = (s + 7) % core::kNumStates;
    }
}
BENCHMARK(BM_ActionSelection);

void
BM_RewardCalculation(benchmark::State &state)
{
    double acc = 0.91;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::fedgpoReward(0.7, 0.4, acc, acc - 0.004));
        acc = acc < 0.99 ? acc + 1e-6 : 0.91;
    }
}
BENCHMARK(BM_RewardCalculation);

void
BM_QTableUpdate(benchmark::State &state)
{
    util::Rng rng(2);
    core::QTable table(core::kNumStates, core::kNumDeviceActions, rng);
    std::size_t s = 5, a = 11;
    for (auto _ : state) {
        table.update(s, a, -12.0, s, 0.3, 0.1);
        s = (s + 13) % core::kNumStates;
        a = (a + 3) % core::kNumDeviceActions;
    }
}
BENCHMARK(BM_QTableUpdate);

void
BM_FullDecisionRound(benchmark::State &state)
{
    // End-to-end policy cost for a K=20 round (decision side only; no NN
    // training): chooseClients + assign + feedback.
    core::FedGpo policy;
    const auto c = census();
    std::vector<fl::DeviceObservation> devices;
    for (std::size_t i = 0; i < 20; ++i) {
        auto obs = observation();
        obs.client_id = i;
        obs.category = static_cast<device::Category>(i % 3);
        devices.push_back(obs);
    }
    double acc = 0.5;
    for (auto _ : state) {
        policy.chooseClients(48);
        auto params = policy.assign(devices, c);
        fl::RoundResult result;
        acc = acc < 0.95 ? acc + 0.001 : 0.5;
        result.test_accuracy = acc;
        result.energy_total = 2000.0;
        for (std::size_t i = 0; i < devices.size(); ++i) {
            fl::ClientRoundReport report;
            report.client_id = i;
            report.category = devices[i].category;
            report.params = params[i];
            report.cost.e_total = 100.0;
            report.samples = 25;
            result.participants.push_back(report);
        }
        policy.feedback(result);
    }
}
BENCHMARK(BM_FullDecisionRound);

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Section 5.4: FedGPO overhead analysis ===\n"
              << "paper: state id 496.8us (dominated by reading OS "
                 "counters on-device), action 0.2us, reward 2.1us, "
                 "update 0.5us; tables 0.4MB; reward converges after "
                 "30-40 rounds\n\n";

    // Memory footprint.
    core::FedGpo policy;
    std::cout << "Q-table memory: "
              << static_cast<double>(policy.qTableBytes()) / 1e6
              << " MB (3 shared category tables of "
              << core::kNumStates << "x" << core::kNumDeviceActions
              << " + K table of " << core::kNumGlobalStates << "x"
              << core::kNumClientActions << ")\n\n";

    // Learning-phase convergence trace on a real (small) scenario.
    auto scenario = benchutil::scenarioFor(models::Workload::CnnMnist,
                                           exp::Variance::None,
                                           data::Distribution::IidIdeal);
    scenario.n_devices = 24;
    scenario.train_samples = 480;
    scenario.test_samples = 120;
    core::FedGpoConfig config;
    config.seed = 42;
    core::FedGpo learner(config);
    fl::FlSimulator sim(scenario.toFlConfig());
    util::Table trace({"round", "max |Q delta|", "test acc"});
    for (int r = 1; r <= 40; ++r) {
        auto result = sim.runRound(learner);
        if (r % 4 == 0) {
            trace.addRow({std::to_string(r),
                          util::fmt(learner.learningDelta(), 2),
                          util::fmt(result.test_accuracy, 3)});
        }
    }
    trace.print(std::cout, "Learning-phase convergence (paper: settles "
                           "after 30-40 rounds)");
    trace.writeCsv("sec54_convergence.csv");
    std::cout << "\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
