/**
 * @file
 * Throughput benchmark for the blocked tensor kernel layer.
 *
 * Times every GEMM variant and the im2col transform on the actual shapes
 * the three model-zoo workloads produce (CNN-MNIST, LSTM-Shakespeare,
 * MobileNet-ImageNet at a typical local batch), reporting GFLOP/s for the
 * blocked kernels in tensor/ops.h side by side with the retained naive
 * references in tensor/reference.h — the pre-kernel-layer implementations,
 * so the "speedup" column is the before/after of the rebuild.
 *
 * Results are mirrored into BENCH_kernels.json (override with -o PATH).
 * --smoke shrinks the per-case measurement window so CI can exercise the
 * full harness in a couple of seconds.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/reference.h"
#include "tensor/tensor.h"

namespace {

using fedgpo::tensor::Tensor;
namespace ops = fedgpo::tensor;
namespace ref = fedgpo::tensor::reference;

void
fillRandom(Tensor &t, std::mt19937 &gen)
{
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = dist(gen);
}

/**
 * Seconds per call, measured over a window of at least `min_time` seconds
 * (the rep count doubles until the window is long enough to trust).
 */
double
secondsPerCall(const std::function<void()> &op, double min_time)
{
    op(); // warm-up: size outputs, grow the pack panel, fault-in pages
    std::size_t reps = 1;
    for (;;) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < reps; ++r)
            op();
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        if (dt.count() >= min_time || reps >= (1u << 24))
            return dt.count() / static_cast<double>(reps);
        reps *= 2;
    }
}

struct Row {
    std::string workload;
    std::string layer;
    std::string kernel;
    std::size_t m, k, n;       // logical GEMM dims (k = reduction extent)
    double blocked_gflops = 0.0;
    double reference_gflops = 0.0;
    double speedup = 0.0;
};

/** Forward GEMM shape of one layer: [m, k] x [k, n]. */
struct GemmCase {
    const char *workload;
    const char *layer;
    std::size_t m, k, n;
};

// The zoo's GEMMs at local batch 8 (src/models/zoo.cc, 16x16 inputs):
// conv layers appear as their im2col GEMM [n*oh*ow, c*kh*kw] x [., out_c].
const GemmCase kGemmCases[] = {
    {"cnn_mnist", "conv1_3x3", 8 * 256, 9, 8},
    {"cnn_mnist", "conv2_3x3", 8 * 64, 72, 16},
    {"cnn_mnist", "dense1", 8, 256, 32},
    {"cnn_mnist", "dense2", 8, 32, 10},
    {"lstm_shakespeare", "lstm_wx", 8, 28, 128},
    {"lstm_shakespeare", "lstm_wh", 8, 32, 128},
    {"lstm_shakespeare", "head", 8, 32, 28},
    {"mobilenet_imagenet", "stem_3x3", 8 * 256, 27, 8},
    {"mobilenet_imagenet", "pw1_1x1", 8 * 256, 8, 16},
    {"mobilenet_imagenet", "pw2_1x1", 8 * 64, 16, 32},
    {"mobilenet_imagenet", "head", 8, 512, 20},
};

struct ConvCase {
    const char *workload;
    const char *layer;
    std::size_t n, c, h, w, k, stride, pad;
};

const ConvCase kConvCases[] = {
    {"cnn_mnist", "conv1_3x3", 8, 1, 16, 16, 3, 1, 1},
    {"cnn_mnist", "conv2_3x3", 8, 8, 8, 8, 3, 1, 1},
    {"mobilenet_imagenet", "pw1_1x1", 8, 8, 16, 16, 1, 1, 0},
};

double
gflops(std::size_t m, std::size_t k, std::size_t n, double sec)
{
    return 2.0 * static_cast<double>(m) * k * n / sec / 1e9;
}

void
printRow(const Row &r)
{
    std::printf("%-20s %-10s %-15s m=%-5zu k=%-4zu n=%-4zu "
                "%8.3f GF/s  (naive %7.3f)  %5.2fx\n",
                r.workload.c_str(), r.layer.c_str(), r.kernel.c_str(), r.m,
                r.k, r.n, r.blocked_gflops, r.reference_gflops, r.speedup);
    std::fflush(stdout);
}

void
writeJson(const std::vector<Row> &rows, const std::string &path, bool smoke)
{
    std::ofstream out(path);
    out << "{\n  \"schema\": \"fedgpo.kernel_bench.v1\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"batch\": 8,\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        out << "    {\"workload\": \"" << r.workload << "\", \"layer\": \""
            << r.layer << "\", \"kernel\": \"" << r.kernel
            << "\", \"m\": " << r.m << ", \"k\": " << r.k
            << ", \"n\": " << r.n << ", \"blocked_gflops\": "
            << r.blocked_gflops << ", \"reference_gflops\": "
            << r.reference_gflops << ", \"speedup\": " << r.speedup << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }
    const double min_time = smoke ? 0.003 : 0.08;

    std::mt19937 gen(20260806);
    std::vector<Row> rows;

    for (const auto &gc : kGemmCases) {
        // Operands for every variant of this layer's GEMM. The transposed
        // variants are the layer's actual backward GEMMs: dW reduces over
        // the batch-rows (transA), dX reduces over the output features
        // (transB).
        Tensor a({gc.m, gc.k}), b({gc.k, gc.n}), bias({gc.n});
        Tensor at({gc.k, gc.m}), bt({gc.n, gc.k});
        Tensor acc({gc.m, gc.n});
        fillRandom(a, gen);
        fillRandom(b, gen);
        fillRandom(bias, gen);
        fillRandom(at, gen);
        fillRandom(bt, gen);
        fillRandom(acc, gen);
        Tensor c;

        struct Variant {
            const char *kernel;
            std::size_t m, k, n;
            std::function<void()> blocked;
            std::function<void()> naive;
        };
        const Variant variants[] = {
            {"matmul", gc.m, gc.k, gc.n,
             [&] { ops::matmul(a, b, c); },
             [&] { ref::matmulRef(a, b, c); }},
            {"matmul_bias", gc.m, gc.k, gc.n,
             [&] { ops::matmulBias(a, b, bias, c); },
             [&] { ref::matmulBiasRef(a, b, bias, c); }},
            {"matmul_accum", gc.m, gc.k, gc.n,
             [&] { ops::matmulAccum(a, b, acc); },
             [&] { ref::matmulAccumRef(a, b, acc); }},
            {"matmul_trans_a", gc.k, gc.m, gc.n,
             [&] { ops::matmulTransA(a, b, c); },
             [&] { ref::matmulTransARef(a, b, c); }},
            {"matmul_trans_b", gc.m, gc.n, gc.k,
             [&] { ops::matmulTransB(a, bt, c); },
             [&] { ref::matmulTransBRef(a, bt, c); }},
        };
        for (const auto &v : variants) {
            Row r;
            r.workload = gc.workload;
            r.layer = gc.layer;
            r.kernel = v.kernel;
            r.m = v.m;
            r.k = v.k;
            r.n = v.n;
            r.blocked_gflops =
                gflops(v.m, v.k, v.n, secondsPerCall(v.blocked, min_time));
            r.reference_gflops =
                gflops(v.m, v.k, v.n, secondsPerCall(v.naive, min_time));
            r.speedup = r.blocked_gflops / r.reference_gflops;
            printRow(r);
            rows.push_back(r);
        }
    }

    for (const auto &cc : kConvCases) {
        Tensor in({cc.n, cc.c, cc.h, cc.w});
        fillRandom(in, gen);
        Tensor cols;
        Row r;
        r.workload = cc.workload;
        r.layer = cc.layer;
        r.kernel = "im2col";
        // Report element throughput as "GFLOP/s" with one op per written
        // column element, so the JSON schema stays uniform.
        const std::size_t oh =
            ops::convOutExtent(cc.h, cc.k, cc.stride, cc.pad);
        const std::size_t ow =
            ops::convOutExtent(cc.w, cc.k, cc.stride, cc.pad);
        r.m = cc.n * oh * ow;
        r.k = 1;
        r.n = cc.c * cc.k * cc.k;
        const double sb = secondsPerCall(
            [&] { ops::im2col(in, cc.k, cc.k, cc.stride, cc.pad, cols); },
            min_time);
        const double sr = secondsPerCall(
            [&] { ref::im2colRef(in, cc.k, cc.k, cc.stride, cc.pad, cols); },
            min_time);
        r.blocked_gflops = static_cast<double>(r.m) * r.n / sb / 1e9;
        r.reference_gflops = static_cast<double>(r.m) * r.n / sr / 1e9;
        r.speedup = sr / sb;
        printRow(r);
        rows.push_back(r);
    }

    writeJson(rows, out_path, smoke);
    std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
    return 0;
}
