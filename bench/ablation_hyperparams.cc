/**
 * @file
 * Hyperparameter sensitivity ablation — the reproduction's version of
 * the paper's Section 4.1 study ("We determine two hyperparameters
 * (learning rate and discount factor) of FedGPO by evaluating the three
 * values of 0.1, 0.5, and 0.9 for each one").
 *
 * The paper selects gamma = 0.9 / mu = 0.1 on its emulation testbed;
 * this bench reruns the sweep on the synthetic substrate (where the
 * round reward is noisier) and reports energy-to-target PPW and final
 * accuracy per setting — the basis for this reproduction's default
 * gamma (see core/fedgpo.h).
 */

#include <iostream>

#include "bench_util.h"
#include "core/fedgpo.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

exp::CampaignResult
runWith(double gamma, double mu, const exp::Scenario &scenario)
{
    core::FedGpoConfig config;
    config.seed = scenario.seed;
    config.gamma = gamma;
    config.mu = mu;
    core::FedGpo policy(config);
    // Shorter warmup than the headline benches: the sweep compares
    // settings against each other, not against the paper's numbers.
    return exp::runCampaignWithWarmup(scenario, policy, 40,
                                      benchutil::comparisonRounds());
}

} // namespace

int
main()
{
    benchutil::banner(
        "Ablation: FedGPO hyperparameter sensitivity (gamma, mu)",
        "paper picks gamma=0.9, mu=0.1 on its testbed; this reproduction "
        "re-runs the sweep on the synthetic substrate");

    auto scenario = benchutil::scenarioFor(models::Workload::CnnMnist,
                                           exp::Variance::None,
                                           data::Distribution::IidIdeal);

    // Reference target from the default configuration.
    auto reference = runWith(0.3, 0.1, scenario);
    const double target = benchutil::accuracyTarget(reference);

    util::Table table({"gamma", "mu", "norm PPW", "final acc",
                       "conv round"});
    table.addRow({"0.3 (default)", "0.1", "1.00x",
                  util::fmt(reference.final_accuracy, 3),
                  std::to_string(reference.converged_round)});
    for (double gamma : {0.1, 0.5, 0.9}) {
        auto r = runWith(gamma, 0.1, scenario);
        table.addRow({util::fmt(gamma, 1), "0.1",
                      util::fmtX(r.ppwAt(target) / reference.ppwAt(target),
                                 2),
                      util::fmt(r.final_accuracy, 3),
                      std::to_string(r.converged_round)});
        std::cout << "gamma " << gamma << " done\n";
    }
    if (exp::fullScale()) {
        auto r = runWith(0.3, 0.9, scenario);
        table.addRow({"0.3", "0.9",
                      util::fmtX(r.ppwAt(target) / reference.ppwAt(target),
                                 2),
                      util::fmt(r.final_accuracy, 3),
                      std::to_string(r.converged_round)});
        std::cout << "mu 0.9 done\n";
    }
    std::cout << "\n";
    table.print(std::cout, "Hyperparameter sensitivity (PPW normalized "
                           "to gamma=0.3, mu=0.1)");
    table.writeCsv("ablation_hyperparams.csv");
    return 0;
}
