/**
 * @file
 * Update-codec benchmark: encode/decode throughput of Identity, Int8
 * quantization, and TopK sparsification on the three model-zoo
 * parameter-vector sizes, plus the modeled end-to-end bytes each codec
 * saves per upload.
 *
 * Throughput is reported in M params/s (host wall time of the simulated
 * encode — this is the Encode-stage cost the round engine pays, so it
 * bounds how much fleet the host can simulate per second).
 *
 * Results are mirrored into BENCH_comm.json (override with -o PATH).
 * --smoke shrinks the measurement window so CI can exercise the full
 * harness in under a second.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "models/zoo.h"
#include "util/rng.h"

namespace {

using namespace fedgpo;

/** Seconds per call over a self-scaling measurement window. */
double
secondsPerCall(const std::function<void()> &op, double min_time)
{
    op(); // warm-up: size buffers, fault-in pages
    std::size_t reps = 1;
    for (;;) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < reps; ++r)
            op();
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        if (dt.count() >= min_time || reps >= (1u << 24))
            return dt.count() / static_cast<double>(reps);
        reps *= 2;
    }
}

struct Row
{
    std::string workload;
    std::string codec;
    std::size_t params = 0;
    std::uint64_t raw_bytes = 0;
    std::uint64_t payload_bytes = 0;
    double compression = 0.0;
    double encode_mparams_s = 0.0;
    double decode_mparams_s = 0.0;
};

void
printRow(const Row &r)
{
    std::printf("%-22s %-10s params=%-8zu payload=%-8llu %5.2fx  "
                "enc %8.1f Mp/s  dec %8.1f Mp/s\n",
                r.workload.c_str(), r.codec.c_str(), r.params,
                static_cast<unsigned long long>(r.payload_bytes),
                r.compression, r.encode_mparams_s, r.decode_mparams_s);
    std::fflush(stdout);
}

void
writeJson(const std::vector<Row> &rows, const std::string &path, bool smoke)
{
    std::ofstream out(path);
    out << "{\n  \"schema\": \"fedgpo.comm_bench.v1\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        out << "    {\"workload\": \"" << r.workload << "\", \"codec\": \""
            << r.codec << "\", \"params\": " << r.params
            << ", \"raw_bytes\": " << r.raw_bytes
            << ", \"payload_bytes\": " << r.payload_bytes
            << ", \"compression\": " << r.compression
            << ", \"encode_mparams_s\": " << r.encode_mparams_s
            << ", \"decode_mparams_s\": " << r.decode_mparams_s << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_comm.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }
    const double min_time = smoke ? 0.003 : 0.08;

    const models::Workload workloads[] = {
        models::Workload::CnnMnist, models::Workload::LstmShakespeare,
        models::Workload::MobileNetImageNet};

    comm::CommConfig comm_config; // paper-default knobs
    std::vector<Row> rows;
    for (const models::Workload w : workloads) {
        auto model = models::buildModel(w, 7);
        const std::size_t n = model->paramCount();

        // A realistic update delta: small, zero-heavy, sign-mixed.
        std::vector<float> delta(n);
        util::Rng fill(11);
        for (std::size_t i = 0; i < n; ++i) {
            const double u = fill.uniform();
            delta[i] = u < 0.3 ? 0.0f
                               : static_cast<float>((u - 0.65) * 0.02);
        }

        for (std::size_t ci = 0; ci < comm::kNumCodecs; ++ci) {
            const comm::Codec codec = static_cast<comm::Codec>(ci);
            const auto impl = comm::makeCodec(codec, comm_config);
            util::Rng rng(31);
            std::vector<float> residual;
            comm::Encoded enc;
            std::vector<float> back;

            Row row;
            row.workload = models::workloadName(w);
            row.codec = comm::codecName(codec);
            row.params = n;
            row.raw_bytes = static_cast<std::uint64_t>(n) * 4;
            row.payload_bytes = impl->payloadBytes(n);
            row.compression = static_cast<double>(row.raw_bytes) /
                              static_cast<double>(row.payload_bytes);
            const double enc_s = secondsPerCall(
                [&] { impl->encode(delta, residual, rng, enc); },
                min_time);
            const double dec_s = secondsPerCall(
                [&] { impl->decode(enc, back); }, min_time);
            row.encode_mparams_s = static_cast<double>(n) / enc_s / 1e6;
            row.decode_mparams_s = static_cast<double>(n) / dec_s / 1e6;
            printRow(row);
            rows.push_back(row);
        }
    }

    writeJson(rows, out_path, smoke);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
