/**
 * @file
 * Shared helpers for the figure/table bench harnesses.
 *
 * Every bench prints the series the corresponding paper figure plots,
 * normalized the way the paper normalizes them, plus the paper's reported
 * shape for side-by-side comparison, and mirrors its rows into a CSV in
 * the working directory. FEDGPO_BENCH_FULL=1 switches to paper-scale
 * fleets/rounds; the default is a single-core-friendly scale that
 * preserves the tier mix, the parameter grids, and the variance processes.
 */

#ifndef FEDGPO_BENCH_BENCH_UTIL_H_
#define FEDGPO_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <iostream>
#include <string>

#include "exp/campaign.h"
#include "runtime/runtime_config.h"
#include "util/stats.h"
#include "util/table.h"
#include "exp/scenario.h"

namespace fedgpo {
namespace benchutil {

/** Measured campaign length for comparison benches. */
inline int
comparisonRounds()
{
    return exp::fullScale() ? 100 : 15;
}

/**
 * Warmup rounds for learning policies before measurement (see
 * exp::runCampaignWithWarmup). The paper's Q-tables converge after 30-40
 * rounds at 200 devices; the scaled-down quick fleet needs proportionally
 * more rounds for the same number of per-state visits.
 */
inline int
warmupRounds()
{
    return exp::fullScale() ? 40 : 80;
}

/**
 * Shorter warmup for the low-dimensional learners (BO's GP posterior,
 * GA's population, FedEx's 150 weights, ABS's tiny DQN) — they saturate
 * long before FedGPO's 2304x30 tables do.
 */
inline int
shortWarmupRounds()
{
    return exp::fullScale() ? 30 : 30;
}

/** Campaign length for parameter-sweep benches (many configs). */
inline int
sweepRounds()
{
    return exp::fullScale() ? 60 : 10;
}

/** Scenario with bench-scale data sizes applied. */
inline exp::Scenario
scenarioFor(models::Workload w, exp::Variance v, data::Distribution dist,
            std::uint64_t seed = 42)
{
    exp::Scenario s = exp::makeScenario(w, v, dist, seed);
    if (!exp::fullScale()) {
        s.n_devices = 48;
        s.train_samples = 1200;
        // A large evaluation set keeps the per-round accuracy signal's
        // sampling noise well below Eq. 1's improvement cap.
        s.test_samples = 400;
    }
    return s;
}

/**
 * Matched-quality accuracy target for PPW comparisons: slightly below the
 * baseline's plateau, so every policy is scored on reaching the same
 * model quality (see EXPERIMENTS.md, "metrics").
 */
inline double
accuracyTarget(const exp::CampaignResult &baseline)
{
    return std::max(0.3, baseline.best_accuracy - 0.03);
}

/**
 * The Fixed (Best) baseline configuration. The paper identifies
 * (B, E, K) = (8, 10, 20) as the most energy-efficient fixed setting for
 * CNN-MNIST under IID data (Figs. 1 and 7); quick mode reuses it
 * directly, full mode re-derives it by grid search as the paper does.
 */
inline fl::GlobalParams
bestFixed(const exp::Scenario &scenario)
{
    if (!exp::fullScale())
        return fl::GlobalParams{8, 10, 20};
    return exp::gridSearchBestFixed(scenario, exp::coarseGrid(), 15);
}

/** Standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &paper_claim)
{
    std::cout << "=== " << experiment << " ===\n";
    std::cout << "scale: "
              << (exp::fullScale() ? "FULL (paper scale)"
                                   : "quick (set FEDGPO_BENCH_FULL=1 for "
                                     "paper scale)")
              << "\n";
    // Host parallelism is reported for reproducibility of wall-clock
    // numbers only; modeled time/energy are thread-count-invariant.
    std::cout << "threads: " << runtime::resolveThreads(0)
              << " (override with FEDGPO_THREADS)\n";
    std::cout << "paper reports: " << paper_claim << "\n\n";
}

/** Policies selectable in comparison benches. */
enum class Policy { FixedBest, Bo, Ga, FedGpo, FedEx, Abs };

/**
 * Run one scenario under a set of policies, warm-starting every learning
 * policy (see exp::runCampaignWithWarmup), and return (name, result)
 * pairs in the order given.
 */
std::vector<std::pair<std::string, exp::CampaignResult>>
runComparison(const exp::Scenario &scenario,
              const std::vector<Policy> &policies);

/** One-line campaign summary used by several benches. */
inline std::string
describe(const exp::CampaignResult &r)
{
    std::string out = r.policy + ": acc=" + util::fmt(r.final_accuracy, 3);
    out += " conv_round=" + std::to_string(r.converged_round);
    out += " energy=" + util::fmt(r.total_energy, 0) + "J";
    return out;
}

} // namespace benchutil
} // namespace fedgpo

#endif // FEDGPO_BENCH_BENCH_UTIL_H_
