#include "bench_util.h"

#include <memory>

#include "core/fedgpo.h"
#include "optim/abs_drl.h"
#include "optim/bayesian.h"
#include "optim/fedex.h"
#include "optim/fixed.h"
#include "optim/genetic.h"

namespace fedgpo {
namespace benchutil {

std::vector<std::pair<std::string, exp::CampaignResult>>
runComparison(const exp::Scenario &scenario,
              const std::vector<Policy> &policies)
{
    const int rounds = comparisonRounds();
    std::vector<std::pair<std::string, exp::CampaignResult>> out;
    for (Policy which : policies) {
        std::unique_ptr<optim::ParamOptimizer> policy;
        bool warm = true;
        switch (which) {
          case Policy::FixedBest:
            policy = std::make_unique<optim::FixedOptimizer>(
                bestFixed(scenario), "Fixed (Best)");
            warm = false;  // its "warmup" is the offline grid search
            break;
          case Policy::Bo:
            policy =
                std::make_unique<optim::BayesianOptimizer>(scenario.seed);
            break;
          case Policy::Ga:
            policy =
                std::make_unique<optim::GeneticOptimizer>(scenario.seed);
            break;
          case Policy::FedGpo: {
            core::FedGpoConfig config;
            config.seed = scenario.seed;
            policy = std::make_unique<core::FedGpo>(config);
            break;
          }
          case Policy::FedEx:
            policy = std::make_unique<optim::FedExOptimizer>(scenario.seed);
            break;
          case Policy::Abs:
            policy = std::make_unique<optim::AbsOptimizer>(scenario.seed);
            break;
        }
        const int warmup = which == Policy::FedGpo ? warmupRounds()
                                                   : shortWarmupRounds();
        auto result =
            warm ? exp::runCampaignWithWarmup(scenario, *policy, warmup,
                                              rounds)
                 : exp::runCampaign(scenario, *policy, rounds);
        out.emplace_back(policy->name(), std::move(result));
    }
    return out;
}

} // namespace benchutil
} // namespace fedgpo
