/**
 * @file
 * Figure 1: convergence performance and global PPW of CNN-MNIST across
 * the (B, E, K) grid, normalized to (1, 10, 20).
 *
 * Paper shape: both the convergence round and the global PPW vary
 * strongly with every one of the three parameters; mid-size B (around 8)
 * with moderate E is the most energy-efficient region, and (8, 10, 20)
 * is the best fixed setting.
 */

#include <iostream>

#include "bench_util.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

struct SweepPoint
{
    fl::GlobalParams params;
    exp::CampaignResult result;
};

void
sweepAxis(const std::string &axis, const std::vector<fl::GlobalParams> &grid,
          const exp::Scenario &scenario, int rounds,
          const exp::CampaignResult &reference, double target,
          util::Table &table)
{
    for (const auto &params : grid) {
        auto r = exp::runCampaignFixed(scenario, params, rounds);
        const double norm_ppw = r.ppwAt(target) / reference.ppwAt(target);
        const int conv = fl::roundsToAccuracy(r.accuracy, target);
        const int ref_conv =
            fl::roundsToAccuracy(reference.accuracy, target);
        const double norm_conv =
            conv > 0 && ref_conv > 0
                ? static_cast<double>(conv) / ref_conv
                : 0.0;
        table.addRow({axis, params.toString(),
                      conv > 0 ? util::fmt(norm_conv, 2) : "n/a",
                      util::fmtX(norm_ppw, 2),
                      util::fmt(r.best_accuracy, 3)});
    }
}

} // namespace

int
main()
{
    benchutil::banner(
        "Figure 1: global impact of (B, E, K) on CNN-MNIST",
        "convergence round and global PPW vary strongly along each "
        "parameter axis; values normalized to (1, 10, 20)");

    auto scenario = benchutil::scenarioFor(models::Workload::CnnMnist,
                                           exp::Variance::None,
                                           data::Distribution::IidIdeal);
    const int rounds = benchutil::sweepRounds();

    // The paper's normalization reference.
    const fl::GlobalParams reference_params{1, 10, 20};
    auto reference = exp::runCampaignFixed(scenario, reference_params,
                                           rounds);
    const double target = benchutil::accuracyTarget(reference);
    std::cout << "reference " << reference_params.toString()
              << ": best acc " << util::fmt(reference.best_accuracy, 3)
              << ", target acc " << util::fmt(target, 3) << "\n\n";

    util::Table table({"axis", "(B, E, K)", "norm conv round", "norm PPW",
                       "best acc"});
    table.addRow({"ref", reference_params.toString(), "1.00", "1.00x",
                  util::fmt(reference.best_accuracy, 3)});

    // Sweep each axis around the paper's default point.
    std::vector<fl::GlobalParams> b_axis, e_axis, k_axis;
    for (int b : {2, 4, 8, 16, 32})
        b_axis.push_back({b, 10, 20});
    for (int e : {1, 5, 15, 20})
        e_axis.push_back({8, e, 20});
    for (int k : {1, 5, 10, 15})
        k_axis.push_back({8, 10, k});

    sweepAxis("B", b_axis, scenario, rounds, reference, target, table);
    sweepAxis("E", e_axis, scenario, rounds, reference, target, table);
    sweepAxis("K", k_axis, scenario, rounds, reference, target, table);

    table.print(std::cout, "Figure 1 (normalized to (1, 10, 20))");
    table.writeCsv("fig01_param_sweep.csv");
    return 0;
}
