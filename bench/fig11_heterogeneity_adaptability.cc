/**
 * @file
 * Figure 11: adaptability to data heterogeneity (CNN-MNIST) — PPW,
 * convergence time, and accuracy under (a) ideal IID and (b) non-IID
 * Dirichlet(0.1) data for Fixed (Best) / Adaptive (BO) / Adaptive (GA) /
 * FedGPO.
 *
 * Paper shape: under non-IID data FedGPO achieves 6.2x / 1.9x / 1.3x
 * higher PPW than Fixed/BO/GA by adjusting E and K along with B, and
 * also improves convergence time and accuracy.
 */

#include <iostream>

#include "bench_util.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    benchutil::banner(
        "Figure 11: adaptability to data heterogeneity (CNN-MNIST)",
        "non-IID: FedGPO 6.2x/1.9x/1.3x PPW vs Fixed/BO/GA via adaptive "
        "E and K");

    const std::vector<benchutil::Policy> policies = {
        benchutil::Policy::FixedBest, benchutil::Policy::Bo,
        benchutil::Policy::Ga, benchutil::Policy::FedGpo};

    util::Table table({"distribution", "policy", "norm PPW",
                       "conv speedup", "final acc"});
    for (auto dist : {data::Distribution::IidIdeal,
                      data::Distribution::NonIid}) {
        const char *label =
            dist == data::Distribution::IidIdeal ? "Ideal IID" : "Non-IID";
        auto scenario = benchutil::scenarioFor(
            models::Workload::CnnMnist, exp::Variance::None, dist);
        auto runs = benchutil::runComparison(scenario, policies);
        const auto &fixed = runs[0].second;
        const double target = benchutil::accuracyTarget(fixed);
        for (const auto &[name, result] : runs) {
            table.addRow(
                {label, name,
                 util::fmtX(result.ppwAt(target) / fixed.ppwAt(target)),
                 util::fmtX(fixed.timeToAccuracy(target) /
                            result.timeToAccuracy(target)),
                 util::fmt(result.final_accuracy, 3)});
        }
        std::cout << label << " done\n";
    }
    std::cout << "\n";
    table.print(std::cout,
                "Figure 11 (normalized to Fixed (Best) per scenario)");
    table.writeCsv("fig11_heterogeneity_adaptability.csv");
    return 0;
}
