/**
 * @file
 * Figure 2: the most energy-efficient (B, E, K) shifts with the NN
 * characteristics.
 *
 * Paper shape: CNN-MNIST's best combination is (8, 10, 20) while
 * LSTM-Shakespeare's shifts to (4, 20, 20) — the memory-intensive RC
 * layers favor smaller input batches with more iterations.
 */

#include <iostream>

#include "bench_util.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    benchutil::banner(
        "Figure 2: NN characteristics shift the optimal (B, E, K)",
        "CNN-MNIST best at (8, 10, 20); LSTM-Shakespeare shifts toward "
        "smaller B / more E (paper: (4, 20, 20)) due to RC-layer memory "
        "pressure");

    const int rounds = benchutil::sweepRounds();
    const std::vector<fl::GlobalParams> grid = {
        {4, 10, 20}, {8, 10, 20}, {32, 10, 20},
        {4, 20, 20}, {8, 20, 20},
    };

    util::Table table({"workload", "(B, E, K)", "norm PPW", "best acc"});
    for (auto w : {models::Workload::CnnMnist,
                   models::Workload::LstmShakespeare}) {
        auto scenario = benchutil::scenarioFor(
            w, exp::Variance::None, data::Distribution::IidIdeal);

        // Evaluate the grid against a common per-workload target.
        std::vector<exp::CampaignResult> results;
        for (const auto &params : grid)
            results.push_back(exp::runCampaignFixed(scenario, params,
                                                    rounds));
        double plateau = 0.0;
        for (const auto &r : results)
            plateau = std::max(plateau, r.best_accuracy);
        const double target = std::max(0.3, plateau - 0.03);
        const double ref = results[1].ppwAt(target);  // (8,10,20)

        double best_ppw = -1.0;
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const double ppw = results[i].ppwAt(target) / ref;
            if (ppw > best_ppw) {
                best_ppw = ppw;
                best_idx = i;
            }
            table.addRow({models::workloadName(w), grid[i].toString(),
                          util::fmtX(ppw, 2),
                          util::fmt(results[i].best_accuracy, 3)});
        }
        std::cout << models::workloadName(w)
                  << ": most energy-efficient combination "
                  << grid[best_idx].toString() << "\n";
    }

    std::cout << "\n";
    table.print(std::cout,
                "Figure 2 (PPW normalized to (8, 10, 20) per workload)");
    table.writeCsv("fig02_nn_characteristics.csv");
    return 0;
}
