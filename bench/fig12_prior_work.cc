/**
 * @file
 * Figure 12: comparison with prior work (CNN-MNIST) — FedGPO vs FedEx
 * (exponentiated-gradient tuning) and ABS (deep-RL batch-size-only)
 * with and without runtime variance and data heterogeneity.
 *
 * Paper shape: FedGPO improves PPW by 1.5x over FedEx and 2.1x over ABS
 * on average; under variance 1.5x / 1.7x; under data heterogeneity
 * 1.4x / 3.6x (ABS cannot adapt E or K, so heterogeneity hurts it most).
 */

#include <iostream>

#include "bench_util.h"
#include "util/stats.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    benchutil::banner(
        "Figure 12: FedGPO vs FedEx and ABS (CNN-MNIST)",
        "FedGPO 1.5x (FedEx) and 2.1x (ABS) PPW on average; ABS is not "
        "robust to data heterogeneity (it only adapts B)");

    const std::vector<benchutil::Policy> policies = {
        benchutil::Policy::FedEx, benchutil::Policy::Abs,
        benchutil::Policy::FedGpo};

    struct ScenarioSpec
    {
        const char *label;
        exp::Variance variance;
        data::Distribution dist;
    };
    const ScenarioSpec specs[] = {
        {"runtime variance", exp::Variance::Both,
         data::Distribution::IidIdeal},
        {"data heterogeneity", exp::Variance::None,
         data::Distribution::NonIid},
    };

    util::Table table({"scenario", "policy", "norm PPW", "conv speedup",
                       "final acc"});
    std::vector<double> vs_fedex, vs_abs;
    for (const auto &spec : specs) {
        auto scenario = benchutil::scenarioFor(models::Workload::CnnMnist,
                                               spec.variance, spec.dist);
        auto runs = benchutil::runComparison(scenario, policies);
        const auto &fedex = runs[0].second;
        const auto &abs = runs[1].second;
        const auto &fedgpo = runs[2].second;
        // Matched quality across the trio. A policy whose accuracy never
        // reaches the target did not deliver the quality being priced —
        // its row is marked DNF and it normalizes as if it spent its
        // whole campaign without finishing.
        double plateau = 0.0;
        for (const auto &[name, r] : runs)
            plateau = std::max(plateau, r.best_accuracy);
        const double target = std::max(0.3, plateau - 0.03);
        const bool fedex_dnf = fedex.best_accuracy < target;
        const auto &ref = fedex_dnf ? fedgpo : fedex;
        for (const auto &[name, result] : runs) {
            const bool dnf = result.best_accuracy < target;
            std::string ppw =
                util::fmtX(result.ppwAt(target) / ref.ppwAt(target));
            std::string speedup = util::fmtX(
                ref.timeToAccuracy(target) /
                result.timeToAccuracy(target));
            if (dnf) {
                ppw += " (DNF)";
                speedup += " (DNF)";
            }
            table.addRow({spec.label, name, ppw, speedup,
                          util::fmt(result.final_accuracy, 3)});
        }
        if (fedex_dnf) {
            std::cout << spec.label << ": FedEx never reached the "
                      << "quality target (normalized to FedGPO "
                      << "instead)\n";
        } else {
            vs_fedex.push_back(fedgpo.ppwAt(target) /
                               fedex.ppwAt(target));
        }
        if (abs.best_accuracy >= target)
            vs_abs.push_back(fedgpo.ppwAt(target) / abs.ppwAt(target));
        std::cout << spec.label << " done\n";
    }
    std::cout << "\n";
    table.print(std::cout, "Figure 12 (normalized to FedEx per scenario, "
                           "or FedGPO where FedEx DNFs)");
    table.writeCsv("fig12_prior_work.csv");
    if (!vs_fedex.empty()) {
        std::cout << "\nFedGPO average PPW vs FedEx (scenarios where "
                  << "FedEx reached the target): "
                  << util::fmtX(util::geomean(vs_fedex))
                  << " (paper: 1.5x)\n";
    }
    if (!vs_abs.empty()) {
        std::cout << "FedGPO average PPW vs ABS: "
                  << util::fmtX(util::geomean(vs_abs))
                  << " (paper: 2.1x)\n";
    }
    return 0;
}
