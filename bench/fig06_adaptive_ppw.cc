/**
 * @file
 * Figure 6: adaptive per-device parameters resolve the straggler problem
 * while guaranteeing convergence — (a) accuracy over rounds, (b) average
 * training time per round, (c) global PPW, fixed vs adaptive.
 *
 * Paper shape: adaptive improves average round time by 2.3x and global
 * PPW by 3.6x while the accuracy-vs-round curve stays on top of the
 * fixed one.
 */

#include <iostream>

#include "bench_util.h"
#include "optim/callback_policy.h"
#include "optim/fixed.h"
#include "optim/oracle.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    benchutil::banner(
        "Figure 6: adaptive parameters improve round time and PPW while "
        "guaranteeing convergence",
        "2.3x average round time, 3.6x global PPW, convergence curve "
        "unchanged");

    auto scenario = benchutil::scenarioFor(models::Workload::CnnMnist,
                                           exp::Variance::None,
                                           data::Distribution::IidIdeal);
    const int rounds = benchutil::comparisonRounds();
    const auto fixed_params = benchutil::bestFixed(scenario);

    optim::FixedOptimizer fixed(fixed_params, "Fixed");
    auto fixed_run = exp::runCampaign(scenario, fixed, rounds);

    // Oracle adaptive: a fresh simulator is built inside runCampaign, so
    // the policy binds to it lazily through a pointer set per campaign.
    fl::FlSimulator sim(scenario.toFlConfig());
    optim::CallbackPolicy adaptive(
        "Adaptive", fixed_params.clients,
        [&sim, &fixed_params](const std::vector<fl::DeviceObservation> &obs,
                              const nn::LayerCensus &) {
            const fl::PerDeviceParams base{fixed_params.batch,
                                           fixed_params.epochs};
            const double target = optim::oracleTargetTime(sim, obs, base);
            std::vector<fl::PerDeviceParams> out;
            out.reserve(obs.size());
            for (const auto &o : obs)
                out.push_back(optim::oracleParamsFor(sim, o.client_id,
                                                     target));
            return out;
        });
    exp::CampaignResult adaptive_run;
    adaptive_run.policy = adaptive.name();
    {
        fl::ConvergenceTracker tracker;
        for (int r = 0; r < rounds; ++r) {
            auto res = sim.runRound(adaptive);
            adaptive_run.accuracy.push_back(res.test_accuracy);
            adaptive_run.round_time.push_back(res.round_time);
            adaptive_run.round_energy.push_back(res.energy_total);
            adaptive_run.total_energy += res.energy_total;
            adaptive_run.total_time += res.round_time;
            const bool was = tracker.converged();
            tracker.add(res.test_accuracy);
            if (!was && tracker.converged()) {
                adaptive_run.converged_round = tracker.convergedRound();
                adaptive_run.time_to_convergence =
                    adaptive_run.total_time;
                adaptive_run.energy_to_convergence =
                    adaptive_run.total_energy;
            }
        }
        adaptive_run.final_accuracy = adaptive_run.accuracy.back();
        adaptive_run.best_accuracy = *std::max_element(
            adaptive_run.accuracy.begin(), adaptive_run.accuracy.end());
        adaptive_run.avg_round_time =
            adaptive_run.total_time / rounds;
    }

    const double target = benchutil::accuracyTarget(fixed_run);

    // Panel (a): convergence curves.
    util::Table curve({"round", "fixed acc", "adaptive acc"});
    for (std::size_t r = 0; r < fixed_run.accuracy.size(); r += 2) {
        curve.addRow({std::to_string(r + 1),
                      util::fmt(fixed_run.accuracy[r], 3),
                      util::fmt(adaptive_run.accuracy[r], 3)});
    }
    curve.print(std::cout, "Figure 6(a): test accuracy per round");
    curve.writeCsv("fig06a_convergence.csv");

    // Panels (b) and (c): round-time and PPW ratios.
    util::Table summary({"metric", "fixed", "adaptive", "improvement"});
    summary.addRow({"avg round time (s)",
                    util::fmt(fixed_run.avg_round_time, 1),
                    util::fmt(adaptive_run.avg_round_time, 1),
                    util::fmtX(fixed_run.avg_round_time /
                               adaptive_run.avg_round_time)});
    summary.addRow(
        {"energy to target acc (J)",
         util::fmt(fixed_run.energyToAccuracy(target), 0),
         util::fmt(adaptive_run.energyToAccuracy(target), 0),
         util::fmtX(adaptive_run.ppwAt(target) / fixed_run.ppwAt(target))});
    summary.addRow({"best accuracy", util::fmt(fixed_run.best_accuracy, 3),
                    util::fmt(adaptive_run.best_accuracy, 3), "-"});
    std::cout << "\n";
    summary.print(std::cout,
                  "Figure 6(b,c): paper reports 2.3x round time, "
                  "3.6x PPW");
    summary.writeCsv("fig06bc_summary.csv");
    return 0;
}
