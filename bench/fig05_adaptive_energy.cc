/**
 * @file
 * Figure 5: per-tier energy with fixed parameters vs with adaptive
 * per-device parameters (the motivation experiment, using the
 * straggler-gap oracle as the adaptive adjuster).
 *
 * Paper shape: with fixed parameters, faster tiers (H, M) burn energy
 * waiting for L; per-device adjustment removes that redundant energy —
 * per-device energy normalized to H with fixed parameters.
 */

#include <iostream>

#include "bench_util.h"
#include "optim/callback_policy.h"
#include "optim/fixed.h"
#include "optim/oracle.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

struct TierEnergy
{
    double per_device[3] = {0.0, 0.0, 0.0};
    double wait[3] = {0.0, 0.0, 0.0};
    std::size_t count[3] = {0, 0, 0};
};

TierEnergy
measure(fl::FlSimulator &sim, optim::ParamOptimizer &policy, int rounds)
{
    TierEnergy out;
    for (int r = 0; r < rounds; ++r) {
        auto res = sim.runRound(policy);
        for (const auto &p : res.participants) {
            const auto c = static_cast<std::size_t>(p.category);
            out.per_device[c] += p.cost.e_total;
            out.wait[c] += p.cost.e_wait;
            ++out.count[c];
        }
    }
    for (std::size_t c = 0; c < 3; ++c) {
        if (out.count[c] > 0) {
            out.per_device[c] /= static_cast<double>(out.count[c]);
            out.wait[c] /= static_cast<double>(out.count[c]);
        }
    }
    return out;
}

} // namespace

int
main()
{
    benchutil::banner(
        "Figure 5: adaptive per-device parameters remove the redundant "
        "straggler-wait energy",
        "fixed parameters make H/M wait for L and burn energy; adaptive "
        "per-device (B, E) saves it (paper: 57.5% redundant energy "
        "saved)");

    auto scenario = benchutil::scenarioFor(models::Workload::CnnMnist,
                                           exp::Variance::None,
                                           data::Distribution::IidIdeal);
    const int rounds = benchutil::sweepRounds();
    const auto fixed_params = benchutil::bestFixed(scenario);

    // (a) Fixed parameters for every device.
    fl::FlSimulator sim_fixed(scenario.toFlConfig());
    optim::FixedOptimizer fixed(fixed_params, "Fixed");
    auto fixed_energy = measure(sim_fixed, fixed, rounds);

    // (b) Oracle adaptive per-device parameters.
    fl::FlSimulator sim_adaptive(scenario.toFlConfig());
    optim::CallbackPolicy adaptive(
        "Adaptive", fixed_params.clients,
        [&sim_adaptive, &fixed_params](
            const std::vector<fl::DeviceObservation> &obs,
            const nn::LayerCensus &) {
            const fl::PerDeviceParams base{fixed_params.batch,
                                           fixed_params.epochs};
            const double target =
                optim::oracleTargetTime(sim_adaptive, obs, base);
            std::vector<fl::PerDeviceParams> out;
            out.reserve(obs.size());
            for (const auto &o : obs) {
                out.push_back(optim::oracleParamsFor(sim_adaptive,
                                                     o.client_id, target));
            }
            return out;
        });
    auto adaptive_energy = measure(sim_adaptive, adaptive, rounds);

    const double ref = fixed_energy.per_device[0];  // H with fixed params
    util::Table table({"tier", "fixed energy", "fixed wait share",
                       "adaptive energy", "adaptive wait share",
                       "saved"});
    double total_fixed = 0.0, total_adaptive = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
        const auto cat = static_cast<device::Category>(c);
        const double f = fixed_energy.per_device[c];
        const double a = adaptive_energy.per_device[c];
        total_fixed += f * fixed_energy.count[c];
        total_adaptive += a * adaptive_energy.count[c];
        table.addRow({device::categoryName(cat), util::fmt(f / ref, 2),
                      util::fmtPct(fixed_energy.wait[c] / std::max(f, 1e-9)),
                      util::fmt(a / ref, 2),
                      util::fmtPct(adaptive_energy.wait[c] /
                                   std::max(a, 1e-9)),
                      util::fmtPct(1.0 - a / std::max(f, 1e-9))});
    }
    table.print(std::cout, "Figure 5: per-participant energy "
                           "(normalized to H with fixed parameters)");
    table.writeCsv("fig05_adaptive_energy.csv");
    std::cout << "\ntotal participant energy saved by adaptive "
                 "parameters: "
              << util::fmtPct(1.0 - total_adaptive /
                                        std::max(total_fixed, 1e-9))
              << " (paper: 57.5% of the redundant energy)\n";
    return 0;
}
