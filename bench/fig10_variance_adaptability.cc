/**
 * @file
 * Figure 10: adaptability to stochastic runtime variance (CNN-MNIST) —
 * PPW, convergence, and accuracy of Fixed (Best) / Adaptive (BO) /
 * Adaptive (GA) / FedGPO (a) without variance, (b) with on-device
 * interference, and (c) with network variance.
 *
 * Paper shape: under variance FedGPO's advantage grows — 5.0x / 4.2x /
 * 3.0x average PPW over Fixed/BO/GA and 3.2x / 2.9x / 2.5x convergence
 * time, while baseline accuracy degrades (their stragglers get dropped).
 */

#include <iostream>

#include "bench_util.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    benchutil::banner(
        "Figure 10: adaptability to runtime variance (CNN-MNIST)",
        "under variance FedGPO reaches 5.0x/4.2x/3.0x PPW vs "
        "Fixed/BO/GA; baselines lose accuracy to dropped stragglers");

    const std::vector<benchutil::Policy> policies = {
        benchutil::Policy::FixedBest, benchutil::Policy::Bo,
        benchutil::Policy::Ga, benchutil::Policy::FedGpo};

    util::Table table({"variance", "policy", "norm PPW", "conv speedup",
                       "final acc", "dropped/round"});
    // In quick mode the no-variance panel duplicates Figure 9's CNN rows
    // and is skipped to fit the single-core budget.
    std::vector<exp::Variance> panels = {exp::Variance::Interference,
                                         exp::Variance::Network};
    if (exp::fullScale())
        panels.insert(panels.begin(), exp::Variance::None);
    for (auto variance : panels) {
        auto scenario =
            benchutil::scenarioFor(models::Workload::CnnMnist, variance,
                                   data::Distribution::IidIdeal);
        auto runs = benchutil::runComparison(scenario, policies);
        const auto &fixed = runs[0].second;
        const double target = benchutil::accuracyTarget(fixed);
        for (const auto &[name, result] : runs) {
            double drops = 0.0;
            for (auto d : result.dropped)
                drops += static_cast<double>(d);
            drops /= static_cast<double>(
                std::max<std::size_t>(result.dropped.size(), 1));
            table.addRow(
                {exp::varianceName(variance), name,
                 util::fmtX(result.ppwAt(target) / fixed.ppwAt(target)),
                 util::fmtX(fixed.timeToAccuracy(target) /
                            result.timeToAccuracy(target)),
                 util::fmt(result.final_accuracy, 3),
                 util::fmt(drops, 1)});
        }
        std::cout << exp::varianceName(variance) << " done\n";
    }
    std::cout << "\n";
    table.print(std::cout,
                "Figure 10 (normalized to Fixed (Best) per scenario)");
    table.writeCsv("fig10_variance_adaptability.csv");
    return 0;
}
