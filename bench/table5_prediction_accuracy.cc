/**
 * @file
 * Table 5: FedGPO's prediction accuracy — how close its per-round,
 * per-device parameter selections come to the oracle parameters that
 * minimize the performance gap across devices, over five scenarios.
 *
 * Paper values: 94.7% (no variance), 94.2% (interference), 94.5%
 * (unstable network), 87.7% (data heterogeneity), 90.1% (variance +
 * heterogeneity). Heterogeneity scores lower because gap minimization
 * alone does not guarantee convergence there, and FedGPO deliberately
 * trades some gap for model quality.
 */

#include <iostream>

#include "bench_util.h"
#include "core/fedgpo.h"
#include "optim/oracle.h"
#include "util/stats.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

double
measureScenario(exp::Variance variance, data::Distribution dist)
{
    auto scenario = benchutil::scenarioFor(models::Workload::CnnMnist,
                                           variance, dist);
    core::FedGpoConfig config;
    config.seed = scenario.seed;
    core::FedGpo policy(config);

    // Warm up the Q-tables on a different seed, then measure prediction
    // accuracy over a fresh campaign (the paper measures after the
    // learning phase).
    {
        exp::Scenario warm = scenario;
        warm.seed = scenario.seed ^ 0xc0ffee;
        fl::FlSimulator sim(warm.toFlConfig());
        for (int r = 0; r < 40; ++r)
            sim.runRound(policy);
    }
    fl::FlSimulator sim(scenario.toFlConfig());
    const fl::PerDeviceParams baseline{8, 10};
    util::RunningStat accuracy;
    for (int r = 0; r < 15; ++r) {
        auto result = sim.runRound(policy);
        accuracy.add(optim::predictionAccuracy(sim, result, baseline));
    }
    return accuracy.mean();
}

} // namespace

int
main()
{
    benchutil::banner(
        "Table 5: accuracy of FedGPO's global parameter selection vs the "
        "gap-minimizing oracle",
        "94.7 / 94.2 / 94.5 / 87.7 / 90.1 percent across the five "
        "scenarios; heterogeneity scores lower by design");

    struct Row
    {
        const char *variance_label;
        const char *het_label;
        exp::Variance variance;
        data::Distribution dist;
        const char *paper;
    };
    const Row rows[] = {
        {"No", "No", exp::Variance::None, data::Distribution::IidIdeal,
         "94.7%"},
        {"Yes (On-device Interference)", "No", exp::Variance::Interference,
         data::Distribution::IidIdeal, "94.2%"},
        {"Yes (Unstable Network)", "No", exp::Variance::Network,
         data::Distribution::IidIdeal, "94.5%"},
        {"No", "Yes", exp::Variance::None, data::Distribution::NonIid,
         "87.7%"},
        {"Yes", "Yes", exp::Variance::Both, data::Distribution::NonIid,
         "90.1%"},
    };

    util::Table table({"Runtime Variance", "Data Heterogeneity",
                       "Prediction Accuracy", "paper"});
    std::vector<double> all;
    for (const auto &row : rows) {
        const double acc = measureScenario(row.variance, row.dist);
        all.push_back(acc);
        table.addRow({row.variance_label, row.het_label, util::fmtPct(acc),
                      row.paper});
        std::cout << row.variance_label << "/" << row.het_label
                  << " done\n";
    }
    std::cout << "\n";
    table.print(std::cout, "Table 5: Accuracy for Global Parameter "
                           "Selection");
    table.writeCsv("table5_prediction_accuracy.csv");
    std::cout << "\naverage prediction accuracy: "
              << util::fmtPct(util::mean(all)) << " (paper: 94.7% overall, "
              << "94.4% under variance, 88.9% under heterogeneity)\n";
    return 0;
}
