/**
 * @file
 * Figure 4: runtime variance exacerbates the straggler problem — the
 * per-round time of each tier (a) without variance, (b) with on-device
 * interference, and (c) with an unstable network, normalized to H in the
 * absence of variance.
 *
 * Paper shape: interference widens the compute-time gaps (more on weaker
 * tiers); network instability inflates communication time for everyone
 * and adds a heavy tail.
 */

#include <iostream>

#include "bench_util.h"
#include "device/cost_model.h"
#include "util/stats.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

/** Mean round time of a tier over many stochastic draws. */
double
meanRoundTime(device::Category cat, bool interference, bool bad_network,
              std::uint64_t seed)
{
    auto model = models::buildModel(models::Workload::CnnMnist, 7);
    device::LocalWorkSpec work;
    work.train_flops_per_sample = model->trainFlopsPerSample();
    work.samples = 25;
    work.batch = 8;
    work.epochs = 10;
    work.param_bytes = model->paramBytes();

    util::Rng rng(seed);
    device::InterferenceProcess interf(interference, /*prob_active=*/0.7);
    device::NetworkModel net(bad_network);
    util::RunningStat stat;
    for (int i = 0; i < 400; ++i) {
        auto istate = interf.step(rng);
        auto nstate = net.sample(rng);
        stat.add(device::clientRoundCost(
                     device::profileFor(cat),
                     device::costFor(models::Workload::CnnMnist), work,
                     istate, nstate)
                     .t_round);
    }
    return stat.mean();
}

} // namespace

int
main()
{
    benchutil::banner(
        "Figure 4: runtime variance exacerbates the straggler problem",
        "interference widens tier gaps; unstable network inflates "
        "communication time; normalized to H without variance");

    const double ref = meanRoundTime(device::Category::High, false, false,
                                     1);
    util::Table table({"scenario", "H", "M", "L", "L/H gap"});
    struct Row
    {
        const char *name;
        bool interference;
        bool network;
    };
    const Row rows[] = {
        {"(a) no variance", false, false},
        {"(b) on-device interference", true, false},
        {"(c) unstable network", false, true},
    };
    for (const auto &row : rows) {
        const double h = meanRoundTime(device::Category::High,
                                       row.interference, row.network, 2);
        const double m = meanRoundTime(device::Category::Mid,
                                       row.interference, row.network, 3);
        const double l = meanRoundTime(device::Category::Low,
                                       row.interference, row.network, 4);
        table.addRow({row.name, util::fmt(h / ref, 2),
                      util::fmt(m / ref, 2), util::fmt(l / ref, 2),
                      util::fmtX(l / h, 2)});
    }
    table.print(std::cout, "Figure 4: mean round time per tier "
                           "(normalized to H, no variance)");
    table.writeCsv("fig04_runtime_variance.csv");
    return 0;
}
