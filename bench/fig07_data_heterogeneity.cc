/**
 * @file
 * Figure 7: the optimal global parameters shift under data heterogeneity.
 *
 * Paper shape: under IID data the most energy-efficient combination is
 * (8, 10, 20); under non-IID (Dirichlet 0.1) every combination's PPW
 * degrades and the optimum shifts to (8, 5, 10) — smaller E and K reduce
 * the amount of non-IID data folded into the aggregate.
 */

#include <iostream>

#include "bench_util.h"
#include "util/table.h"

using namespace fedgpo;

int
main()
{
    benchutil::banner(
        "Figure 7: data heterogeneity shifts the optimal (B, E, K)",
        "IID optimum (8, 10, 20); non-IID degrades all PPW and shifts "
        "the optimum toward smaller E and K (paper: (8, 5, 10))");

    const int rounds = benchutil::sweepRounds() + 4;  // non-IID is slower
    const std::vector<fl::GlobalParams> grid = {
        {8, 5, 10}, {8, 5, 20}, {8, 10, 10}, {8, 10, 20},
        {8, 20, 20}, {16, 10, 20},
    };

    util::Table table({"distribution", "(B, E, K)", "norm PPW",
                       "best acc"});
    double iid_ref_ppw = 0.0;
    for (auto dist : {data::Distribution::IidIdeal,
                      data::Distribution::NonIid}) {
        const bool iid = dist == data::Distribution::IidIdeal;
        auto scenario = benchutil::scenarioFor(models::Workload::CnnMnist,
                                               exp::Variance::None, dist);
        std::vector<exp::CampaignResult> results;
        for (const auto &params : grid)
            results.push_back(exp::runCampaignFixed(scenario, params,
                                                    rounds));
        double plateau = 0.0;
        for (const auto &r : results)
            plateau = std::max(plateau, r.best_accuracy);
        const double target = std::max(0.3, plateau - 0.03);

        // Both panels share the IID (8,10,20) reference so the overall
        // non-IID degradation is visible, as in the paper.
        if (iid)
            iid_ref_ppw = results[3].ppwAt(target);

        double best = -1.0;
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const double ppw = results[i].ppwAt(target) / iid_ref_ppw;
            if (ppw > best) {
                best = ppw;
                best_idx = i;
            }
            table.addRow({iid ? "IID" : "non-IID", grid[i].toString(),
                          util::fmtX(ppw, 2),
                          util::fmt(results[i].best_accuracy, 3)});
        }
        std::cout << (iid ? "IID" : "non-IID")
                  << " most energy-efficient: " << grid[best_idx].toString()
                  << "\n";
    }
    std::cout << "\n";
    table.print(std::cout, "Figure 7 (PPW normalized to IID (8, 10, 20))");
    table.writeCsv("fig07_data_heterogeneity.csv");
    return 0;
}
