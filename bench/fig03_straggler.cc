/**
 * @file
 * Figure 3: per-round training time of the H/M/L device categories as a
 * function of (a) the local batch size B and (b) the local epoch count E
 * — the straggler problem.
 *
 * Paper shape: large inter-tier gaps at every setting; time normalized
 * to H at B = 1 (panel a) and to H at E = 10 (panel b); E has a linear
 * impact; B's impact depends on the tier's compute/memory capability.
 */

#include <iostream>

#include "bench_util.h"
#include "core/action_space.h"
#include "device/cost_model.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

double
roundTime(device::Category cat, int batch, int epochs)
{
    device::LocalWorkSpec work;
    auto model = models::buildModel(models::Workload::CnnMnist, 7);
    work.train_flops_per_sample = model->trainFlopsPerSample();
    work.samples = 25;
    work.batch = batch;
    work.epochs = epochs;
    work.param_bytes = model->paramBytes();
    device::InterferenceState calm;
    device::NetworkState net;
    return device::clientRoundCost(
               device::profileFor(cat),
               device::costFor(models::Workload::CnnMnist), work, calm,
               net)
        .t_round;
}

} // namespace

int
main()
{
    benchutil::banner(
        "Figure 3: per-round training time vs B and E per device tier",
        "tier gaps of ~2-4x at every setting; E linear; small B "
        "underutilizes, large B pressures memory on low tiers");

    // Panel (a): sweep B at E = 10, normalized to H at B = 1.
    util::Table ta({"B", "H", "M", "L"});
    const double ref_a = roundTime(device::Category::High, 1, 10);
    for (int b : core::kBatchSet) {
        ta.addRow({std::to_string(b),
                   util::fmt(roundTime(device::Category::High, b, 10) /
                                 ref_a, 2),
                   util::fmt(roundTime(device::Category::Mid, b, 10) /
                                 ref_a, 2),
                   util::fmt(roundTime(device::Category::Low, b, 10) /
                                 ref_a, 2)});
    }
    ta.print(std::cout,
             "Figure 3(a): round time vs B (normalized to H at B=1)");
    ta.writeCsv("fig03a_straggler_batch.csv");

    // Panel (b): sweep E at B = 8, normalized to H at E = 10.
    util::Table tb({"E", "H", "M", "L"});
    const double ref_b = roundTime(device::Category::High, 8, 10);
    for (int e : core::kEpochSet) {
        tb.addRow({std::to_string(e),
                   util::fmt(roundTime(device::Category::High, 8, e) /
                                 ref_b, 2),
                   util::fmt(roundTime(device::Category::Mid, 8, e) /
                                 ref_b, 2),
                   util::fmt(roundTime(device::Category::Low, 8, e) /
                                 ref_b, 2)});
    }
    std::cout << "\n";
    tb.print(std::cout,
             "Figure 3(b): round time vs E (normalized to H at E=10)");
    tb.writeCsv("fig03b_straggler_epochs.csv");
    return 0;
}
