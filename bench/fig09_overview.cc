/**
 * @file
 * Figure 9: FedGPO vs Fixed (Best) / Adaptive (BO) / Adaptive (GA) on
 * all three FL workloads — normalized PPW, convergence-time speedup,
 * and training accuracy (all normalized to Fixed (Best)).
 *
 * Paper shape: FedGPO improves PPW by 4.1x / 3.2x / 3.5x over Fixed
 * (Best) for CNN-MNIST / LSTM-Shakespeare / MobileNet-ImageNet (3.6x
 * average), is 3.1x over Adaptive (BO) and 1.7x over Adaptive (GA) on
 * average, with ~2.4x (BO) and ~1.6x (GA) convergence-time advantages,
 * while maintaining accuracy.
 */

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "core/fedgpo.h"
#include "optim/bayesian.h"
#include "optim/fixed.h"
#include "optim/genetic.h"
#include "util/table.h"

using namespace fedgpo;

namespace {

struct PolicyRun
{
    std::string name;
    exp::CampaignResult result;
};

std::vector<PolicyRun>
runWorkload(models::Workload w)
{
    auto scenario = benchutil::scenarioFor(w, exp::Variance::None,
                                           data::Distribution::IidIdeal);
    const int rounds = benchutil::comparisonRounds();
    const auto fixed_params = benchutil::bestFixed(scenario);

    const int warmup = benchutil::warmupRounds();
    std::vector<PolicyRun> runs;
    {
        optim::FixedOptimizer policy(fixed_params, "Fixed (Best)");
        runs.push_back({policy.name(),
                        exp::runCampaign(scenario, policy, rounds)});
    }
    {
        optim::BayesianOptimizer policy(scenario.seed);
        runs.push_back({policy.name(),
                        exp::runCampaignWithWarmup(scenario, policy,
                                                   warmup, rounds)});
    }
    {
        optim::GeneticOptimizer policy(scenario.seed);
        runs.push_back({policy.name(),
                        exp::runCampaignWithWarmup(scenario, policy,
                                                   warmup, rounds)});
    }
    {
        core::FedGpoConfig config;
        config.seed = scenario.seed;
        core::FedGpo policy(config);
        runs.push_back({policy.name(),
                        exp::runCampaignWithWarmup(scenario, policy,
                                                   warmup, rounds)});
    }
    return runs;
}

} // namespace

int
main()
{
    benchutil::banner(
        "Figure 9: result overview (3 workloads x 4 policies)",
        "FedGPO PPW 4.1x/3.2x/3.5x vs Fixed (Best); avg 3.6x vs Fixed, "
        "3.1x vs BO, 1.7x vs GA; accuracy maintained");

    util::Table table({"workload", "policy", "norm PPW", "conv speedup",
                       "final acc", "conv round"});
    std::vector<double> fedgpo_vs_fixed, fedgpo_vs_bo, fedgpo_vs_ga;
    std::vector<double> speedup_vs_fixed;

    for (auto w : models::kAllWorkloads) {
        auto runs = runWorkload(w);
        const auto &fixed = runs[0].result;
        const auto &fedgpo = runs[3].result;
        // Matched-quality comparison: energy/time to reach (just below)
        // the baseline's plateau accuracy.
        const double target = benchutil::accuracyTarget(fixed);
        for (const auto &run : runs) {
            const double norm_ppw =
                run.result.ppwAt(target) / fixed.ppwAt(target);
            const double speedup = fixed.timeToAccuracy(target) /
                                   run.result.timeToAccuracy(target);
            table.addRow({models::workloadName(w), run.name,
                          util::fmtX(norm_ppw), util::fmtX(speedup),
                          util::fmt(run.result.final_accuracy, 3),
                          std::to_string(run.result.converged_round)});
        }
        fedgpo_vs_fixed.push_back(fedgpo.ppwAt(target) /
                                  fixed.ppwAt(target));
        fedgpo_vs_bo.push_back(fedgpo.ppwAt(target) /
                               runs[1].result.ppwAt(target));
        fedgpo_vs_ga.push_back(fedgpo.ppwAt(target) /
                               runs[2].result.ppwAt(target));
        speedup_vs_fixed.push_back(fixed.timeToAccuracy(target) /
                                   fedgpo.timeToAccuracy(target));
        std::cout << models::workloadName(w) << " done (target acc "
                  << util::fmt(target, 3) << ")\n";
    }

    std::cout << "\n";
    table.print(std::cout, "Figure 9 (all values normalized to Fixed "
                           "(Best) per workload)");
    table.writeCsv("fig09_overview.csv");

    std::cout << "\nFedGPO average PPW improvement: "
              << util::fmtX(util::geomean(fedgpo_vs_fixed))
              << " vs Fixed (Best) (paper: 3.6x), "
              << util::fmtX(util::geomean(fedgpo_vs_bo))
              << " vs Adaptive (BO) (paper: 3.1x), "
              << util::fmtX(util::geomean(fedgpo_vs_ga))
              << " vs Adaptive (GA) (paper: 1.7x)\n";
    std::cout << "FedGPO average convergence speedup vs Fixed (Best): "
              << util::fmtX(util::geomean(speedup_vs_fixed)) << "\n";
    return 0;
}
