# Empty dependencies file for fleet_comparison.
# This may be replaced when dependencies are built.
