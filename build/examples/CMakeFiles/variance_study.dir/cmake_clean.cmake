file(REMOVE_RECURSE
  "CMakeFiles/variance_study.dir/variance_study.cpp.o"
  "CMakeFiles/variance_study.dir/variance_study.cpp.o.d"
  "variance_study"
  "variance_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
