# Empty dependencies file for fig04_runtime_variance.
# This may be replaced when dependencies are built.
