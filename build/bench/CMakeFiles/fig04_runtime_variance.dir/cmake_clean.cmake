file(REMOVE_RECURSE
  "CMakeFiles/fig04_runtime_variance.dir/fig04_runtime_variance.cc.o"
  "CMakeFiles/fig04_runtime_variance.dir/fig04_runtime_variance.cc.o.d"
  "fig04_runtime_variance"
  "fig04_runtime_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_runtime_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
