# Empty compiler generated dependencies file for fig05_adaptive_energy.
# This may be replaced when dependencies are built.
