file(REMOVE_RECURSE
  "CMakeFiles/fig05_adaptive_energy.dir/fig05_adaptive_energy.cc.o"
  "CMakeFiles/fig05_adaptive_energy.dir/fig05_adaptive_energy.cc.o.d"
  "fig05_adaptive_energy"
  "fig05_adaptive_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_adaptive_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
