file(REMOVE_RECURSE
  "CMakeFiles/fig02_nn_characteristics.dir/fig02_nn_characteristics.cc.o"
  "CMakeFiles/fig02_nn_characteristics.dir/fig02_nn_characteristics.cc.o.d"
  "fig02_nn_characteristics"
  "fig02_nn_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_nn_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
