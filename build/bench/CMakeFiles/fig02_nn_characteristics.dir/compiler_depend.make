# Empty compiler generated dependencies file for fig02_nn_characteristics.
# This may be replaced when dependencies are built.
