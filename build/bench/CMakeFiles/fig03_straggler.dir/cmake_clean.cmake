file(REMOVE_RECURSE
  "CMakeFiles/fig03_straggler.dir/fig03_straggler.cc.o"
  "CMakeFiles/fig03_straggler.dir/fig03_straggler.cc.o.d"
  "fig03_straggler"
  "fig03_straggler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
