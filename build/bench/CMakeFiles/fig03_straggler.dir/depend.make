# Empty dependencies file for fig03_straggler.
# This may be replaced when dependencies are built.
