file(REMOVE_RECURSE
  "CMakeFiles/sec54_overhead.dir/sec54_overhead.cc.o"
  "CMakeFiles/sec54_overhead.dir/sec54_overhead.cc.o.d"
  "sec54_overhead"
  "sec54_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
