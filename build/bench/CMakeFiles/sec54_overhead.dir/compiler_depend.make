# Empty compiler generated dependencies file for sec54_overhead.
# This may be replaced when dependencies are built.
