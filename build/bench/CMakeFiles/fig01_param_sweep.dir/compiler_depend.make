# Empty compiler generated dependencies file for fig01_param_sweep.
# This may be replaced when dependencies are built.
