file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/fedgpo_bench_util.dir/bench_util.cc.o.d"
  "libfedgpo_bench_util.a"
  "libfedgpo_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
