# Empty compiler generated dependencies file for fedgpo_bench_util.
# This may be replaced when dependencies are built.
