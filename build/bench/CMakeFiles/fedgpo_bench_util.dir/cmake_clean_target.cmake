file(REMOVE_RECURSE
  "libfedgpo_bench_util.a"
)
