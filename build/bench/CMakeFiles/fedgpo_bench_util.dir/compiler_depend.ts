# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fedgpo_bench_util.
