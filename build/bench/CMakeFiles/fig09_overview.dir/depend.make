# Empty dependencies file for fig09_overview.
# This may be replaced when dependencies are built.
