file(REMOVE_RECURSE
  "CMakeFiles/fig09_overview.dir/fig09_overview.cc.o"
  "CMakeFiles/fig09_overview.dir/fig09_overview.cc.o.d"
  "fig09_overview"
  "fig09_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
