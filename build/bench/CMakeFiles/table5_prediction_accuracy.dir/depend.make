# Empty dependencies file for table5_prediction_accuracy.
# This may be replaced when dependencies are built.
