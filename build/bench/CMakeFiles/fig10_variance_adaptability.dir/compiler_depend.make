# Empty compiler generated dependencies file for fig10_variance_adaptability.
# This may be replaced when dependencies are built.
