file(REMOVE_RECURSE
  "CMakeFiles/fig10_variance_adaptability.dir/fig10_variance_adaptability.cc.o"
  "CMakeFiles/fig10_variance_adaptability.dir/fig10_variance_adaptability.cc.o.d"
  "fig10_variance_adaptability"
  "fig10_variance_adaptability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_variance_adaptability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
