file(REMOVE_RECURSE
  "CMakeFiles/fig12_prior_work.dir/fig12_prior_work.cc.o"
  "CMakeFiles/fig12_prior_work.dir/fig12_prior_work.cc.o.d"
  "fig12_prior_work"
  "fig12_prior_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_prior_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
