# Empty dependencies file for fig12_prior_work.
# This may be replaced when dependencies are built.
