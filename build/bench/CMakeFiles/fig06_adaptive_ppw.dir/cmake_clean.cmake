file(REMOVE_RECURSE
  "CMakeFiles/fig06_adaptive_ppw.dir/fig06_adaptive_ppw.cc.o"
  "CMakeFiles/fig06_adaptive_ppw.dir/fig06_adaptive_ppw.cc.o.d"
  "fig06_adaptive_ppw"
  "fig06_adaptive_ppw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_adaptive_ppw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
