# Empty dependencies file for fig06_adaptive_ppw.
# This may be replaced when dependencies are built.
