file(REMOVE_RECURSE
  "CMakeFiles/fig11_heterogeneity_adaptability.dir/fig11_heterogeneity_adaptability.cc.o"
  "CMakeFiles/fig11_heterogeneity_adaptability.dir/fig11_heterogeneity_adaptability.cc.o.d"
  "fig11_heterogeneity_adaptability"
  "fig11_heterogeneity_adaptability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_heterogeneity_adaptability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
