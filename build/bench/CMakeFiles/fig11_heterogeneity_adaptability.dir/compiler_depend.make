# Empty compiler generated dependencies file for fig11_heterogeneity_adaptability.
# This may be replaced when dependencies are built.
