file(REMOVE_RECURSE
  "CMakeFiles/fig07_data_heterogeneity.dir/fig07_data_heterogeneity.cc.o"
  "CMakeFiles/fig07_data_heterogeneity.dir/fig07_data_heterogeneity.cc.o.d"
  "fig07_data_heterogeneity"
  "fig07_data_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_data_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
