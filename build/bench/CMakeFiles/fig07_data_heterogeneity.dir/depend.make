# Empty dependencies file for fig07_data_heterogeneity.
# This may be replaced when dependencies are built.
