# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/nn_gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/fl_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fedgpo_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
