
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_extensions_test.cc" "tests/CMakeFiles/core_extensions_test.dir/core_extensions_test.cc.o" "gcc" "tests/CMakeFiles/core_extensions_test.dir/core_extensions_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/fedgpo_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedgpo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/fedgpo_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedgpo_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedgpo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/fedgpo_device.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fedgpo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedgpo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedgpo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedgpo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
