# Empty compiler generated dependencies file for fedgpo_test.
# This may be replaced when dependencies are built.
