file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_test.dir/fedgpo_test.cc.o"
  "CMakeFiles/fedgpo_test.dir/fedgpo_test.cc.o.d"
  "fedgpo_test"
  "fedgpo_test.pdb"
  "fedgpo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
