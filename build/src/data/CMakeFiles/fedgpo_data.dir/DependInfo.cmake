
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/fedgpo_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/fedgpo_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/data/CMakeFiles/fedgpo_data.dir/partition.cc.o" "gcc" "src/data/CMakeFiles/fedgpo_data.dir/partition.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/fedgpo_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/fedgpo_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedgpo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fedgpo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedgpo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedgpo_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
