# Empty dependencies file for fedgpo_data.
# This may be replaced when dependencies are built.
