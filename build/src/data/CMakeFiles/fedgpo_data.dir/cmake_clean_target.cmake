file(REMOVE_RECURSE
  "libfedgpo_data.a"
)
