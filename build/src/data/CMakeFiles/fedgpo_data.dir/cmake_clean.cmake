file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_data.dir/dataset.cc.o"
  "CMakeFiles/fedgpo_data.dir/dataset.cc.o.d"
  "CMakeFiles/fedgpo_data.dir/partition.cc.o"
  "CMakeFiles/fedgpo_data.dir/partition.cc.o.d"
  "CMakeFiles/fedgpo_data.dir/synthetic.cc.o"
  "CMakeFiles/fedgpo_data.dir/synthetic.cc.o.d"
  "libfedgpo_data.a"
  "libfedgpo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
