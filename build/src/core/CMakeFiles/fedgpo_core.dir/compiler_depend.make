# Empty compiler generated dependencies file for fedgpo_core.
# This may be replaced when dependencies are built.
