file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_core.dir/action_space.cc.o"
  "CMakeFiles/fedgpo_core.dir/action_space.cc.o.d"
  "CMakeFiles/fedgpo_core.dir/clustering.cc.o"
  "CMakeFiles/fedgpo_core.dir/clustering.cc.o.d"
  "CMakeFiles/fedgpo_core.dir/fedgpo.cc.o"
  "CMakeFiles/fedgpo_core.dir/fedgpo.cc.o.d"
  "CMakeFiles/fedgpo_core.dir/qtable.cc.o"
  "CMakeFiles/fedgpo_core.dir/qtable.cc.o.d"
  "CMakeFiles/fedgpo_core.dir/reward.cc.o"
  "CMakeFiles/fedgpo_core.dir/reward.cc.o.d"
  "CMakeFiles/fedgpo_core.dir/state.cc.o"
  "CMakeFiles/fedgpo_core.dir/state.cc.o.d"
  "libfedgpo_core.a"
  "libfedgpo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
