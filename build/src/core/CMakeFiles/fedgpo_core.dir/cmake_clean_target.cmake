file(REMOVE_RECURSE
  "libfedgpo_core.a"
)
