file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_tensor.dir/ops.cc.o"
  "CMakeFiles/fedgpo_tensor.dir/ops.cc.o.d"
  "CMakeFiles/fedgpo_tensor.dir/tensor.cc.o"
  "CMakeFiles/fedgpo_tensor.dir/tensor.cc.o.d"
  "libfedgpo_tensor.a"
  "libfedgpo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
