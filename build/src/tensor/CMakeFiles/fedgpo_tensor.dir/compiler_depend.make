# Empty compiler generated dependencies file for fedgpo_tensor.
# This may be replaced when dependencies are built.
