file(REMOVE_RECURSE
  "libfedgpo_tensor.a"
)
