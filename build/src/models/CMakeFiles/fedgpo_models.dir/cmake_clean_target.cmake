file(REMOVE_RECURSE
  "libfedgpo_models.a"
)
