file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_models.dir/zoo.cc.o"
  "CMakeFiles/fedgpo_models.dir/zoo.cc.o.d"
  "libfedgpo_models.a"
  "libfedgpo_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
