# Empty dependencies file for fedgpo_models.
# This may be replaced when dependencies are built.
