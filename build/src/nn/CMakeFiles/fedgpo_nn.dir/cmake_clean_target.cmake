file(REMOVE_RECURSE
  "libfedgpo_nn.a"
)
