
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/conv2d.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/conv2d.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/dense.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/dense.cc.o.d"
  "/root/repo/src/nn/depthwise_conv2d.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/depthwise_conv2d.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/depthwise_conv2d.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/pool2d.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/pool2d.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/pool2d.cc.o.d"
  "/root/repo/src/nn/sgd.cc" "src/nn/CMakeFiles/fedgpo_nn.dir/sgd.cc.o" "gcc" "src/nn/CMakeFiles/fedgpo_nn.dir/sgd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedgpo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedgpo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
