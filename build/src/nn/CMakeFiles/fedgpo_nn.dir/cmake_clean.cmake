file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_nn.dir/activations.cc.o"
  "CMakeFiles/fedgpo_nn.dir/activations.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/conv2d.cc.o"
  "CMakeFiles/fedgpo_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/dense.cc.o"
  "CMakeFiles/fedgpo_nn.dir/dense.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/depthwise_conv2d.cc.o"
  "CMakeFiles/fedgpo_nn.dir/depthwise_conv2d.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/init.cc.o"
  "CMakeFiles/fedgpo_nn.dir/init.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/layer.cc.o"
  "CMakeFiles/fedgpo_nn.dir/layer.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/loss.cc.o"
  "CMakeFiles/fedgpo_nn.dir/loss.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/lstm.cc.o"
  "CMakeFiles/fedgpo_nn.dir/lstm.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/model.cc.o"
  "CMakeFiles/fedgpo_nn.dir/model.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/pool2d.cc.o"
  "CMakeFiles/fedgpo_nn.dir/pool2d.cc.o.d"
  "CMakeFiles/fedgpo_nn.dir/sgd.cc.o"
  "CMakeFiles/fedgpo_nn.dir/sgd.cc.o.d"
  "libfedgpo_nn.a"
  "libfedgpo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
