# Empty compiler generated dependencies file for fedgpo_nn.
# This may be replaced when dependencies are built.
