# Empty compiler generated dependencies file for fedgpo_fl.
# This may be replaced when dependencies are built.
