file(REMOVE_RECURSE
  "libfedgpo_fl.a"
)
