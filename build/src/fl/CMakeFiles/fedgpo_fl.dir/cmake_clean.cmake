file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_fl.dir/client.cc.o"
  "CMakeFiles/fedgpo_fl.dir/client.cc.o.d"
  "CMakeFiles/fedgpo_fl.dir/convergence.cc.o"
  "CMakeFiles/fedgpo_fl.dir/convergence.cc.o.d"
  "CMakeFiles/fedgpo_fl.dir/simulator.cc.o"
  "CMakeFiles/fedgpo_fl.dir/simulator.cc.o.d"
  "CMakeFiles/fedgpo_fl.dir/types.cc.o"
  "CMakeFiles/fedgpo_fl.dir/types.cc.o.d"
  "libfedgpo_fl.a"
  "libfedgpo_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
