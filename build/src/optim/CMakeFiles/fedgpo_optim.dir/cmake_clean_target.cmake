file(REMOVE_RECURSE
  "libfedgpo_optim.a"
)
