# Empty dependencies file for fedgpo_optim.
# This may be replaced when dependencies are built.
