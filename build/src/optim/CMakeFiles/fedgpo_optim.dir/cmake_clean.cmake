file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_optim.dir/abs_drl.cc.o"
  "CMakeFiles/fedgpo_optim.dir/abs_drl.cc.o.d"
  "CMakeFiles/fedgpo_optim.dir/bayesian.cc.o"
  "CMakeFiles/fedgpo_optim.dir/bayesian.cc.o.d"
  "CMakeFiles/fedgpo_optim.dir/fedex.cc.o"
  "CMakeFiles/fedgpo_optim.dir/fedex.cc.o.d"
  "CMakeFiles/fedgpo_optim.dir/fixed.cc.o"
  "CMakeFiles/fedgpo_optim.dir/fixed.cc.o.d"
  "CMakeFiles/fedgpo_optim.dir/genetic.cc.o"
  "CMakeFiles/fedgpo_optim.dir/genetic.cc.o.d"
  "CMakeFiles/fedgpo_optim.dir/global_policy.cc.o"
  "CMakeFiles/fedgpo_optim.dir/global_policy.cc.o.d"
  "CMakeFiles/fedgpo_optim.dir/oracle.cc.o"
  "CMakeFiles/fedgpo_optim.dir/oracle.cc.o.d"
  "libfedgpo_optim.a"
  "libfedgpo_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
