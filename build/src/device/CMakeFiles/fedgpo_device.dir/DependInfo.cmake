
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/cost_model.cc" "src/device/CMakeFiles/fedgpo_device.dir/cost_model.cc.o" "gcc" "src/device/CMakeFiles/fedgpo_device.dir/cost_model.cc.o.d"
  "/root/repo/src/device/device_profile.cc" "src/device/CMakeFiles/fedgpo_device.dir/device_profile.cc.o" "gcc" "src/device/CMakeFiles/fedgpo_device.dir/device_profile.cc.o.d"
  "/root/repo/src/device/interference.cc" "src/device/CMakeFiles/fedgpo_device.dir/interference.cc.o" "gcc" "src/device/CMakeFiles/fedgpo_device.dir/interference.cc.o.d"
  "/root/repo/src/device/network_model.cc" "src/device/CMakeFiles/fedgpo_device.dir/network_model.cc.o" "gcc" "src/device/CMakeFiles/fedgpo_device.dir/network_model.cc.o.d"
  "/root/repo/src/device/power_model.cc" "src/device/CMakeFiles/fedgpo_device.dir/power_model.cc.o" "gcc" "src/device/CMakeFiles/fedgpo_device.dir/power_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fedgpo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fedgpo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedgpo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedgpo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
