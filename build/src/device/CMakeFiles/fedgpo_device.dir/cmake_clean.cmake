file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_device.dir/cost_model.cc.o"
  "CMakeFiles/fedgpo_device.dir/cost_model.cc.o.d"
  "CMakeFiles/fedgpo_device.dir/device_profile.cc.o"
  "CMakeFiles/fedgpo_device.dir/device_profile.cc.o.d"
  "CMakeFiles/fedgpo_device.dir/interference.cc.o"
  "CMakeFiles/fedgpo_device.dir/interference.cc.o.d"
  "CMakeFiles/fedgpo_device.dir/network_model.cc.o"
  "CMakeFiles/fedgpo_device.dir/network_model.cc.o.d"
  "CMakeFiles/fedgpo_device.dir/power_model.cc.o"
  "CMakeFiles/fedgpo_device.dir/power_model.cc.o.d"
  "libfedgpo_device.a"
  "libfedgpo_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
