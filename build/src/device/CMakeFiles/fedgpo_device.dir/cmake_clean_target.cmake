file(REMOVE_RECURSE
  "libfedgpo_device.a"
)
