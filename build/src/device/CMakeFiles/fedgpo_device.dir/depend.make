# Empty dependencies file for fedgpo_device.
# This may be replaced when dependencies are built.
