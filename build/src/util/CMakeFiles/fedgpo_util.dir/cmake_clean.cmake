file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_util.dir/logging.cc.o"
  "CMakeFiles/fedgpo_util.dir/logging.cc.o.d"
  "CMakeFiles/fedgpo_util.dir/rng.cc.o"
  "CMakeFiles/fedgpo_util.dir/rng.cc.o.d"
  "CMakeFiles/fedgpo_util.dir/stats.cc.o"
  "CMakeFiles/fedgpo_util.dir/stats.cc.o.d"
  "CMakeFiles/fedgpo_util.dir/table.cc.o"
  "CMakeFiles/fedgpo_util.dir/table.cc.o.d"
  "libfedgpo_util.a"
  "libfedgpo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
