file(REMOVE_RECURSE
  "libfedgpo_util.a"
)
