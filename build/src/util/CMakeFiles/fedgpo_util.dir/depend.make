# Empty dependencies file for fedgpo_util.
# This may be replaced when dependencies are built.
