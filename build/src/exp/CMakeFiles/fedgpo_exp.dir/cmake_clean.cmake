file(REMOVE_RECURSE
  "CMakeFiles/fedgpo_exp.dir/campaign.cc.o"
  "CMakeFiles/fedgpo_exp.dir/campaign.cc.o.d"
  "CMakeFiles/fedgpo_exp.dir/scenario.cc.o"
  "CMakeFiles/fedgpo_exp.dir/scenario.cc.o.d"
  "libfedgpo_exp.a"
  "libfedgpo_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgpo_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
