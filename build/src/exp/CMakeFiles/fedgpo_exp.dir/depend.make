# Empty dependencies file for fedgpo_exp.
# This may be replaced when dependencies are built.
