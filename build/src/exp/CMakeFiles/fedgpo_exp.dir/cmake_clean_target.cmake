file(REMOVE_RECURSE
  "libfedgpo_exp.a"
)
